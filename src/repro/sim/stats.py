"""Measurement: per-class delay statistics, throughput series, audits.

The experiments report three kinds of numbers:

* **delay statistics** per class (mean / max / percentiles of the
  arrival-to-departure delay) -- :class:`ClassStats`;
* **throughput over time** (bytes per measurement window, the link-sharing
  plots) -- :class:`ThroughputMeter`;
* **deadline audit** -- Theorem 2 says no H-FSC deadline is missed by more
  than one maximum-size packet time; :class:`StatsCollector` tracks the
  worst observed miss so tests and experiments can check the bound.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.link import Link
from repro.sim.packet import Packet
from repro.util.quantile import P2Quantile

#: Quantiles estimated online when delay samples are not kept.
_P2_QUANTILES = (50.0, 90.0, 99.0, 99.9)


class ClassStats:
    """Online delay and volume statistics for one class.

    ``min_delay`` / ``worst_deadline_miss`` use ``inf`` / ``-inf``
    sentinels internally so ``record`` stays branch-light; use
    :meth:`summary` for a report-ready view with those normalized
    (``None`` / ``0.0``).

    With ``keep_samples=False`` no per-packet list is kept;
    :meth:`percentile` then falls back to streaming P² estimators
    (:class:`repro.util.quantile.P2Quantile`) for the quantiles in
    ``_P2_QUANTILES``, so p99/p999 still work in unbounded soak runs.
    """

    __slots__ = (
        "class_id",
        "packets",
        "bytes",
        "delay_sum",
        "delay_sq_sum",
        "max_delay",
        "min_delay",
        "delays",
        "keep_samples",
        "worst_deadline_miss",
        "first_departure",
        "last_departure",
        "_p2",
    )

    def __init__(self, class_id: Any, keep_samples: bool = True):
        self.class_id = class_id
        self.packets = 0
        self.bytes = 0.0
        self.delay_sum = 0.0
        self.delay_sq_sum = 0.0
        self.max_delay = 0.0
        self.min_delay = math.inf
        self.delays: List[float] = []
        self.keep_samples = keep_samples
        self.worst_deadline_miss = -math.inf
        self.first_departure: Optional[float] = None
        self.last_departure: Optional[float] = None
        self._p2: Optional[Dict[float, P2Quantile]] = (
            None
            if keep_samples
            else {q: P2Quantile(q / 100.0) for q in _P2_QUANTILES}
        )

    def record(self, packet: Packet, now: float) -> None:
        delay = packet.delay
        self.packets += 1
        self.bytes += packet.size
        self.delay_sum += delay
        self.delay_sq_sum += delay * delay
        self.max_delay = max(self.max_delay, delay)
        self.min_delay = min(self.min_delay, delay)
        if self.keep_samples:
            self.delays.append(delay)
        else:
            for estimator in self._p2.values():
                estimator.observe(delay)
        if packet.deadline is not None:
            self.worst_deadline_miss = max(
                self.worst_deadline_miss, now - packet.deadline
            )
        if self.first_departure is None:
            self.first_departure = now
        self.last_departure = now

    @property
    def mean_delay(self) -> float:
        return self.delay_sum / self.packets if self.packets else 0.0

    @property
    def stddev_delay(self) -> float:
        if self.packets < 2:
            return 0.0
        mean = self.mean_delay
        var = self.delay_sq_sum / self.packets - mean * mean
        return math.sqrt(max(var, 0.0))

    def percentile(self, q: float) -> float:
        """q-th percentile of delay; 0.0 when no packets were recorded.

        Exact over the kept samples, or a streaming P² estimate with
        ``keep_samples=False`` (only for the tracked quantiles -- 50,
        90, 99 and 99.9; anything else raises).
        """
        if self.delays:
            ordered = sorted(self.delays)
            index = min(len(ordered) - 1, max(0, int(math.ceil(q / 100.0 * len(ordered))) - 1))
            return ordered[index]
        if self._p2 is not None and self.packets:
            estimator = self._p2.get(float(q))
            if estimator is None:
                raise ValueError(
                    f"percentile({q!r}) untracked with keep_samples=False; "
                    f"tracked quantiles: {_P2_QUANTILES}"
                )
            return estimator.value()
        return 0.0

    def summary(self) -> Dict[str, Any]:
        """Report-ready view: empty-class sentinels normalized.

        ``min_delay`` becomes ``None`` when no packet was recorded
        (internally ``inf``) and ``worst_deadline_miss`` becomes ``0.0``
        when no audited packet departed (internally ``-inf``) --
        the raw sentinels leak into JSON as ``Infinity`` otherwise.
        """
        return {
            "class_id": self.class_id,
            "packets": self.packets,
            "bytes": self.bytes,
            "mean_delay": self.mean_delay,
            "stddev_delay": self.stddev_delay,
            "max_delay": self.max_delay if self.packets else None,
            "min_delay": None if self.min_delay == math.inf else self.min_delay,
            "p99_delay": self.percentile(99.0) if self.packets else 0.0,
            "worst_deadline_miss": (
                0.0
                if self.worst_deadline_miss == -math.inf
                else self.worst_deadline_miss
            ),
            "throughput": self.throughput(),
        }

    def throughput(self) -> float:
        """Average rate (bytes/s) between first and last departure."""
        if (
            self.first_departure is None
            or self.last_departure is None
            or self.last_departure <= self.first_departure
        ):
            return 0.0
        return self.bytes / (self.last_departure - self.first_departure)

    def state_doc(self) -> Dict[str, Any]:
        """Bit-exact JSON-able state (for :mod:`repro.persist`).

        The ``inf``/``-inf`` sentinels ride along as JSON ``Infinity``
        literals (Python's JSON dialect); P² estimator state is embedded
        when sample retention is off.
        """
        return {
            "class_id": self.class_id,
            "packets": self.packets,
            "bytes": self.bytes,
            "delay_sum": self.delay_sum,
            "delay_sq_sum": self.delay_sq_sum,
            "max_delay": self.max_delay,
            "min_delay": self.min_delay,
            "keep_samples": self.keep_samples,
            "delays": list(self.delays),
            "worst_deadline_miss": self.worst_deadline_miss,
            "first_departure": self.first_departure,
            "last_departure": self.last_departure,
            "p2": (
                None
                if self._p2 is None
                else {repr(q): est.state_doc() for q, est in self._p2.items()}
            ),
        }

    @classmethod
    def from_state(cls, doc: Dict[str, Any]) -> "ClassStats":
        stats = cls(doc["class_id"], keep_samples=doc["keep_samples"])
        stats.packets = doc["packets"]
        stats.bytes = doc["bytes"]
        stats.delay_sum = doc["delay_sum"]
        stats.delay_sq_sum = doc["delay_sq_sum"]
        stats.max_delay = doc["max_delay"]
        stats.min_delay = doc["min_delay"]
        stats.delays = list(doc["delays"])
        stats.worst_deadline_miss = doc["worst_deadline_miss"]
        stats.first_departure = doc["first_departure"]
        stats.last_departure = doc["last_departure"]
        if doc["p2"] is not None:
            stats._p2 = {
                float(key): P2Quantile.from_state(sub)
                for key, sub in doc["p2"].items()
            }
        return stats


class StatsCollector:
    """Link observer that aggregates :class:`ClassStats` per class."""

    def __init__(self, link: Optional[Link] = None, keep_samples: bool = True):
        self.per_class: Dict[Any, ClassStats] = {}
        self.keep_samples = keep_samples
        self.total_packets = 0
        self.total_bytes = 0.0
        if link is not None:
            link.add_listener(self.on_departure)

    def on_departure(self, packet: Packet, now: float) -> None:
        stats = self.per_class.get(packet.class_id)
        if stats is None:
            stats = ClassStats(packet.class_id, self.keep_samples)
            self.per_class[packet.class_id] = stats
        stats.record(packet, now)
        self.total_packets += 1
        self.total_bytes += packet.size

    def __getitem__(self, class_id: Any) -> ClassStats:
        return self.per_class[class_id]

    def __contains__(self, class_id: Any) -> bool:
        return class_id in self.per_class

    def worst_deadline_miss(self) -> float:
        """Largest (departure - deadline) over all audited packets."""
        misses = [
            s.worst_deadline_miss
            for s in self.per_class.values()
            if s.worst_deadline_miss != -math.inf
        ]
        return max(misses) if misses else -math.inf

    def summary(self) -> Dict[str, Any]:
        """Report-ready roll-up: per-class summaries, sentinels normalized."""
        worst = self.worst_deadline_miss()
        return {
            "total_packets": self.total_packets,
            "total_bytes": self.total_bytes,
            "worst_deadline_miss": 0.0 if worst == -math.inf else worst,
            "classes": {
                str(class_id): stats.summary()
                for class_id, stats in sorted(
                    self.per_class.items(), key=lambda kv: str(kv[0])
                )
            },
        }


class BacklogMeter:
    """Samples a scheduler's backlog (packets and bytes) over time.

    Attach to an event loop with a sampling period; afterwards ``samples``
    holds (time, packets, bytes) triples.  Useful for buffer-sizing plots
    and for verifying stability (bounded backlog) in long runs.
    """

    def __init__(self, loop, scheduler, period: float, stop: Optional[float] = None):
        if period <= 0:
            raise ValueError("period must be positive")
        self.loop = loop
        self.scheduler = scheduler
        self.period = period
        self.stop = stop
        self.samples: List[Tuple[float, int, float]] = []
        loop.schedule(0.0, self._tick)

    def _tick(self) -> None:
        if self.stop is not None and self.loop.now > self.stop:
            return
        self.samples.append(
            (
                self.loop.now,
                self.scheduler.backlog_packets,
                self.scheduler.backlog_bytes,
            )
        )
        self.loop.schedule_after(self.period, self._tick)

    def max_backlog_bytes(self) -> float:
        return max((s[2] for s in self.samples), default=0.0)

    def mean_backlog_packets(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s[1] for s in self.samples) / len(self.samples)


class ThroughputMeter:
    """Windowed per-class throughput series (the link-sharing plots).

    Attach to a link; afterwards :meth:`series` returns, per class, a list
    of (window_start, bytes_per_second) samples.
    """

    def __init__(self, link: Optional[Link], window: float):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._bytes: Dict[Any, Dict[int, float]] = {}
        if link is not None:
            link.add_listener(self.on_departure)

    def on_departure(self, packet: Packet, now: float) -> None:
        bucket = int(now / self.window)
        per_bucket = self._bytes.setdefault(packet.class_id, {})
        per_bucket[bucket] = per_bucket.get(bucket, 0.0) + packet.size

    def series(self, class_id: Any) -> List[Tuple[float, float]]:
        per_bucket = self._bytes.get(class_id, {})
        return [
            (bucket * self.window, count / self.window)
            for bucket, count in sorted(per_bucket.items())
        ]

    def rate_between(self, class_id: Any, start: float, stop: float) -> float:
        """Average rate of a class over [start, stop) (bytes/second)."""
        if stop <= start:
            return 0.0
        per_bucket = self._bytes.get(class_id, {})
        first = int(start / self.window)
        last = int(math.ceil(stop / self.window))
        total = sum(
            count for bucket, count in per_bucket.items() if first <= bucket < last
        )
        return total / (stop - start)

    def classes(self) -> Sequence[Any]:
        return list(self._bytes)
