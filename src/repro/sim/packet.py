"""The packet record shared by schedulers, links and sources."""

from __future__ import annotations

import itertools
from typing import Any, Optional

_packet_ids = itertools.count()


class Packet:
    """A packet travelling through the simulation.

    ``class_id`` names the leaf class (or flat session) the packet belongs
    to; schedulers queue on it.  The timing fields are filled in as the
    packet progresses and are what the measurement layer reads:

    * ``created`` -- when the source generated it,
    * ``enqueued`` -- when it reached the scheduler,
    * ``dequeued`` -- when the scheduler selected it for transmission,
    * ``departed`` -- when its last bit left the link (the paper's
      departure-time convention in Section VI),
    * ``deadline`` -- the H-FSC/SCED deadline it carried when selected
      (``None`` for schedulers without deadlines),
    * ``via_realtime`` -- True when the H-FSC real-time criterion selected
      it, False for link-sharing (``None`` for other schedulers).
    """

    __slots__ = (
        "uid",
        "class_id",
        "size",
        "created",
        "enqueued",
        "dequeued",
        "departed",
        "deadline",
        "via_realtime",
        "payload",
    )

    def __init__(self, class_id: Any, size: float, created: float = 0.0,
                 payload: Any = None):
        if size <= 0:
            raise ValueError("packet size must be positive")
        self.uid = next(_packet_ids)
        self.class_id = class_id
        self.size = float(size)
        self.created = created
        self.enqueued: Optional[float] = None
        self.dequeued: Optional[float] = None
        self.departed: Optional[float] = None
        self.deadline: Optional[float] = None
        self.via_realtime: Optional[bool] = None
        self.payload = payload

    @property
    def delay(self) -> float:
        """Queueing + transmission delay: departure minus scheduler arrival."""
        if self.departed is None or self.enqueued is None:
            raise ValueError("packet has not departed yet")
        return self.departed - self.enqueued

    def __repr__(self) -> str:
        return (
            f"Packet(uid={self.uid}, class_id={self.class_id!r}, "
            f"size={self.size:g}, created={self.created:g})"
        )
