"""Token-bucket regulators (the arrival-envelope side of the calculus).

The delay bounds of :mod:`repro.analysis.delay` hold for sessions whose
arrivals obey a (sigma, rho, peak) token-bucket envelope.  This module
provides the enforcement devices:

* :class:`TokenBucketShaper` -- delays packets until tokens are available
  (lossless; output conforms to the envelope);
* :class:`TokenBucketPolicer` -- drops non-conformant packets (lossy).

Both sit between a source and a link: ``source -> shaper.offer -> link``.
With a shaper in front, a leaf class's measured delay must stay within
``hfsc_delay_bound(...)`` -- a property the integration tests check, tying
the analysis module to the scheduler end to end.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Protocol

from repro.core.errors import ConfigurationError
from repro.sim.engine import EventLoop
from repro.sim.packet import Packet


class _Target(Protocol):
    def offer(self, packet: Packet) -> None: ...


class TokenBucketShaper:
    """Delay packets so the output conforms to (sigma, rho, peak).

    ``sigma`` is the bucket depth in bytes, ``rho`` the token rate in
    bytes/second, ``peak`` an optional peak rate enforced as a minimum
    spacing between packet releases.  FIFO order is preserved.
    """

    def __init__(
        self,
        loop: EventLoop,
        target: _Target,
        sigma: float,
        rho: float,
        peak: Optional[float] = None,
    ):
        if sigma <= 0 or rho <= 0:
            raise ConfigurationError("sigma and rho must be positive")
        if peak is not None and peak <= 0:
            raise ConfigurationError("peak must be positive when given")
        self.loop = loop
        self.target = target
        self.sigma = sigma
        self.rho = rho
        self.peak = peak
        self._tokens = sigma
        self._stamp = 0.0  # time the token count was computed
        self._queue: Deque[Packet] = deque()
        self._release_armed = False
        self._last_release = -float("inf")
        self.released = 0
        self.delayed = 0

    def offer(self, packet: Packet) -> None:
        if packet.size > self.sigma:
            raise ConfigurationError(
                f"packet of {packet.size:g} B can never conform to a "
                f"bucket of {self.sigma:g} B"
            )
        self._queue.append(packet)
        self._pump()

    @property
    def backlog(self) -> int:
        return len(self._queue)

    # -- internals --------------------------------------------------------

    def _refill(self) -> None:
        now = self.loop.now
        self._tokens = min(self.sigma, self._tokens + self.rho * (now - self._stamp))
        self._stamp = now

    def _ready_time(self, size: float) -> float:
        """Earliest time this packet may be released."""
        self._refill()
        wait_tokens = 0.0
        if self._tokens < size:
            wait_tokens = (size - self._tokens) / self.rho
        wait_peak = 0.0
        if self.peak is not None:
            wait_peak = max(0.0, self._last_release + size / self.peak - self.loop.now)
        return self.loop.now + max(wait_tokens, wait_peak)

    def _pump(self) -> None:
        if self._release_armed or not self._queue:
            return
        head = self._queue[0]
        ready = self._ready_time(head.size)
        if ready <= self.loop.now:
            self._release()
            return
        self._release_armed = True
        self.delayed += 1
        self.loop.schedule(ready, self._release_event)

    def _release_event(self) -> None:
        self._release_armed = False
        self._release()

    def _release(self) -> None:
        self._refill()
        packet = self._queue.popleft()
        self._tokens -= packet.size
        self._last_release = self.loop.now
        self.released += 1
        self.target.offer(packet)
        self._pump()


class TokenBucketPolicer:
    """Drop packets that do not conform to (sigma, rho)."""

    def __init__(self, loop: EventLoop, target: _Target, sigma: float, rho: float):
        if sigma <= 0 or rho <= 0:
            raise ConfigurationError("sigma and rho must be positive")
        self.loop = loop
        self.target = target
        self.sigma = sigma
        self.rho = rho
        self._tokens = sigma
        self._stamp = 0.0
        self.passed = 0
        self.dropped = 0

    def offer(self, packet: Packet) -> None:
        now = self.loop.now
        self._tokens = min(self.sigma, self._tokens + self.rho * (now - self._stamp))
        self._stamp = now
        if packet.size <= self._tokens:
            self._tokens -= packet.size
            self.passed += 1
            self.target.offer(packet)
        else:
            self.dropped += 1
