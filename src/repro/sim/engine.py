"""A minimal, exact discrete-event loop.

Events are (time, sequence) ordered; same-time events fire in scheduling
order, which makes simulations deterministic.  Components hold an
:class:`EventLoop` reference and schedule callbacks; the loop itself knows
nothing about networking.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.core.errors import SimulationError


class Event:
    """Handle to a scheduled callback; ``cancel()`` prevents it firing."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventLoop:
    """Priority-queue driven simulation clock."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self.now = 0.0
        self._processed = 0

    @property
    def events_processed(self) -> int:
        return self._processed

    def schedule(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Run ``fn(*args)`` at simulated ``time`` (>= now)."""
        if time < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {time:g}, clock is at {self.now:g}"
            )
        event = Event(max(time, self.now), next(self._seq), fn, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        return self.schedule(self.now + delay, fn, *args)

    def peek_time(self) -> Optional[float]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self.now - 1e-12:
                raise SimulationError("event queue returned a past event")
            self.now = max(self.now, event.time)
            self._processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Drain events, stopping after ``until`` (inclusive) if given."""
        remaining = max_events
        while remaining:
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                return
            self.step()
            remaining -= 1
        if remaining == 0:
            raise SimulationError(f"run() exceeded max_events={max_events}")
        if until is not None:
            self.now = until
