"""A minimal, exact discrete-event loop.

Events are (time, sequence) ordered; same-time events fire in scheduling
order, which makes simulations deterministic.  Components hold an
:class:`EventLoop` reference and schedule callbacks; the loop itself knows
nothing about networking.

Hot-path design: heap entries are flat ``[time, seq, fn, args]`` records
(:class:`Event` is a thin ``list`` subclass so ``heapq`` compares them as
tuples -- ``seq`` is unique, so comparison never reaches the callback).
Cancellation is lazy: ``cancel()`` just clears the callback slot and the
entry is discarded when it surfaces, so no heap surgery happens off the
fast path.  ``run()`` is a single fused loop -- the seed implementation's
``peek_time()`` + ``step()`` pairing walked cancelled prefixes twice per
iteration and advanced the clock to ``until`` even on abnormal exits.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.core.errors import SimulationError
from repro.obs.core import TELEMETRY as _TELEM

_INF = float("inf")


class Event(list):
    """Heap entry ``[time, seq, fn, args]``; ``cancel()`` prevents firing.

    A ``list`` subclass keeps scheduling allocation-light: the entry the
    heap orders *is* the handle handed back to callers, and lazy
    cancellation is a single slot write.
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        return self[0]

    @property
    def seq(self) -> int:
        return self[1]

    @property
    def cancelled(self) -> bool:
        return self[2] is None

    def cancel(self) -> None:
        self[2] = None
        self[3] = ()


class PeriodicTask:
    """Handle for :meth:`EventLoop.every`; ``cancel()`` stops the ticking."""

    __slots__ = ("_loop", "_fn", "_args", "period", "until", "_event", "fired")

    def __init__(self, loop: "EventLoop", period: float, fn, args, until):
        self._loop = loop
        self._fn = fn
        self._args = args
        self.period = period
        self.until = _INF if until is None else until
        self._event: Optional[Event] = None
        self.fired = 0

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._fn = None

    def _arm(self, time: float) -> None:
        if self._fn is None or time > self.until:
            self._event = None
            return
        self._event = self._loop.schedule(time, self._tick)

    def _tick(self) -> None:
        fn = self._fn
        if fn is None:
            return
        self.fired += 1
        fn(*self._args)
        # Re-arm after the callback so a cancel() from inside it sticks,
        # and from the *scheduled* tick time (now may have been equal).
        self._arm(self._loop.now + self.period)

    @property
    def next_time(self) -> Optional[float]:
        """Scheduled time of the next tick, or None when not armed."""
        return None if self._event is None else self._event[0]

    def adopt_tick(self, event: Optional[Event], fired: int,
                   period: float, until: Optional[float]) -> None:
        """Restore semantics for :mod:`repro.persist`.

        A freshly-built scenario arms its periodic tasks from t=0; a
        resumed run must instead continue the *saved* cadence -- the next
        tick fires exactly where the crashed run had scheduled it (no
        burst of missed ticks, no silently dropped task).  ``event`` is
        the restored pending tick event (already re-queued in the loop)
        or ``None`` when the task had run off its ``until`` bound.
        """
        if self._event is not None and self._event is not event:
            self._event.cancel()
        self._event = event
        self.fired = fired
        self.period = period
        self.until = _INF if until is None else until


class EventLoop:
    """Priority-queue driven simulation clock."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = 0
        self.now = 0.0
        self._processed = 0
        # Inline-advance bookkeeping for the link's busy-serve fast path:
        # the horizon is the active run(until=...) bound, the budget the
        # remaining max_events allowance (inline serves count as events so
        # the runaway guard still trips).
        self._horizon = _INF
        self._budget = _INF
        #: How many clock advances ran inline (:meth:`try_advance`) rather
        #: than through the heap.  Purely observational -- the burst-serve
        #: tests use it to prove the batched path actually engaged while
        #: the golden digests stayed byte-identical.
        self.inline_advances = 0

    @property
    def events_processed(self) -> int:
        return self._processed

    def schedule(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Run ``fn(*args)`` at simulated ``time`` (>= now)."""
        now = self.now
        if time < now:
            if time < now - 1e-12:
                raise SimulationError(
                    f"cannot schedule event at {time:g}, clock is at {now:g}"
                )
            time = now
        seq = self._seq
        self._seq = seq + 1
        event = Event((time, seq, fn, args))
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        return self.schedule(self.now + delay, fn, *args)

    def every(
        self,
        period: float,
        fn: Callable[..., None],
        *args: Any,
        start: Optional[float] = None,
        until: Optional[float] = None,
    ) -> PeriodicTask:
        """Run ``fn(*args)`` every ``period`` seconds; returns a cancellable handle.

        The first firing is at ``start`` (default ``now + period``); ticks
        past ``until`` are not armed.  Watchdogs and fault schedules ride
        on this -- a pending tick also fences the link's inline
        busy-serve drain (``try_advance``), so periodic work observes a
        consistent clock.
        """
        if period <= 0:
            raise SimulationError("period must be positive")
        task = PeriodicTask(self, period, fn, args, until)
        task._arm(self.now + period if start is None else start)
        return task

    def peek_time(self) -> Optional[float]:
        queue = self._queue
        while queue and queue[0][2] is None:
            heapq.heappop(queue)
        return queue[0][0] if queue else None

    def try_advance(self, time: float) -> bool:
        """Jump the clock to ``time`` iff nothing is pending before it.

        The link's busy-serve fast path uses this to drain back-to-back
        transmissions without a heap round-trip per packet: when the next
        pending event is at or after the completion time (and the active
        ``run(until=...)`` horizon allows it), the completion can run
        inline.  Counts against the run budget like a normal event.
        """
        if time > self._horizon or self._budget <= 0:
            return False
        queue = self._queue
        while queue and queue[0][2] is None:
            heapq.heappop(queue)
        if queue and queue[0][0] < time:
            return False
        self.now = time
        self._processed += 1
        self._budget -= 1
        self.inline_advances += 1
        return True

    def is_next(self, event: Event) -> bool:
        """True iff ``event`` is the next live entry the loop would fire.

        The link's :meth:`~repro.sim.link.Link.drain_batch` uses this to
        run an already-scheduled completion inline: popping an event out
        of turn is only order-preserving when it is literally the head of
        the queue (a same-time event with a smaller sequence number must
        fire first, and this check respects that).
        """
        queue = self._queue
        while queue and queue[0][2] is None:
            heapq.heappop(queue)
        return bool(queue) and queue[0] is event

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        queue = self._queue
        while queue:
            event = heapq.heappop(queue)
            fn = event[2]
            if fn is None:
                continue
            time = event[0]
            if time < self.now - 1e-12:
                raise SimulationError("event queue returned a past event")
            if time > self.now:
                self.now = time
            self._processed += 1
            fn(*event[3])
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 50_000_000,
        stop_on_budget: bool = False,
    ) -> bool:
        """Drain events, stopping after ``until`` (inclusive) if given.

        Returns True on a clean exit (queue drained or next event beyond
        the bound) -- only then does the clock advance to ``until``.
        Exhausting ``max_events`` raises without touching the clock, or,
        with ``stop_on_budget=True``, returns False with the clock parked
        at the last processed event so the caller can checkpoint and call
        ``run`` again (the crash/resume chunk loop).  The flag costs
        nothing per event: it is only consulted on exhaustion.
        """
        queue = self._queue
        pop = heapq.heappop
        horizon = _INF if until is None else until
        self._horizon = horizon
        self._budget = max_events
        # Telemetry tap: run() boundaries only -- the per-event loop below
        # stays untouched so a disabled (or enabled) run pays nothing here.
        if _TELEM.enabled:
            _TELEM.on_run_boundary(self.now, "start", self._processed)
        try:
            while queue:
                event = queue[0]
                fn = event[2]
                if fn is None:
                    pop(queue)
                    continue
                time = event[0]
                if time > horizon:
                    break
                if self._budget <= 0:
                    if stop_on_budget:
                        return False
                    raise SimulationError(
                        f"run() exceeded max_events={max_events}"
                    )
                pop(queue)
                self._budget -= 1
                if time > self.now:
                    self.now = time
                self._processed += 1
                fn(*event[3])
            if until is not None and until > self.now:
                self.now = until
            return True
        finally:
            self._horizon = _INF
            self._budget = _INF
            if _TELEM.enabled:
                _TELEM.on_run_boundary(self.now, "end", self._processed)

    # -- snapshot/restore support (used by repro.persist) ----------------

    def pending_events(self) -> List[Event]:
        """Live (non-cancelled) events, in no particular order."""
        return [event for event in self._queue if event[2] is not None]

    def snapshot_clock(self) -> dict:
        return {"now": self.now, "seq": self._seq, "processed": self._processed}

    def restore_clock(self, doc: dict) -> None:
        self.now = doc["now"]
        self._seq = doc["seq"]
        self._processed = doc["processed"]

    def adopt_events(self, events: List[Event]) -> None:
        """Replace the queue wholesale with restored events.

        The events keep their original (time, seq) keys so same-time
        ordering on resume matches the crashed run exactly; callers must
        also restore the clock so ``_seq`` stays ahead of every adopted
        sequence number.
        """
        self._queue = list(events)
        heapq.heapify(self._queue)
