"""Loop-free scheduler driver for trace-style workloads.

For experiments whose arrivals are known up front, driving a scheduler by
hand is simpler and faster than the full event loop: this mirrors exactly
what :class:`repro.sim.link.Link` does (non-preemptive transmission at the
link rate, re-polling non-work-conserving schedulers at their ready time).
The tests use it too, so the scheduler-facing behaviour is covered.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.schedulers.base import Scheduler
from repro.sim.packet import Packet

Arrival = Tuple[float, Any, float]  # (time, class_id, size)


def drive(
    scheduler: Scheduler,
    arrivals: Iterable[Arrival],
    until: float,
    rate: Optional[float] = None,
) -> List[Packet]:
    """Run ``arrivals`` through ``scheduler`` behind a link until ``until``.

    Returns the packets in transmission order, with ``enqueued``,
    ``dequeued`` and ``departed`` stamped.
    """
    link_rate = rate if rate is not None else scheduler.link_rate
    pending = sorted(arrivals, key=lambda a: a[0])
    index = 0
    now = 0.0
    served: List[Packet] = []
    while now < until:
        # Deliver arrivals due by `now` with their TRUE arrival times (an
        # arrival that lands mid-transmission must be tagged at its own
        # time, exactly as the event-driven Link does; timestamps stay
        # monotone relative to scheduler calls because the last dequeue
        # happened at the start of the just-finished transmission).
        # Strictly `<= now`, matching the event loop's exact time ordering:
        # an absolute epsilon would pull genuinely-later arrivals into an
        # earlier dequeue at small timestamps while silently degenerating
        # to exact comparison at large ones.
        while index < len(pending) and pending[index][0] <= now:
            time, class_id, size = pending[index]
            # Deliver a run of same-time arrivals through the amortized
            # batch call (digest-identical by the enqueue_batch contract:
            # one call, same packets, same timestamp, same order).
            run_end = index + 1
            while run_end < len(pending) and pending[run_end][0] == time:
                run_end += 1
            if run_end - index > 1:
                scheduler.enqueue_batch(
                    [Packet(cid, sz, created=t)
                     for t, cid, sz in pending[index:run_end]],
                    time,
                )
            else:
                scheduler.enqueue(Packet(class_id, size, created=time), time)
            index = run_end
        packet = scheduler.dequeue(now) if len(scheduler) else None
        if packet is not None:
            packet.departed = now + packet.size / link_rate
            served.append(packet)
            now = packet.departed
            continue
        candidates = []
        if index < len(pending):
            candidates.append(pending[index][0])
        ready = scheduler.next_ready_time(now)
        if ready is not None:
            candidates.append(ready)
        if not candidates:
            break
        now = max(now, min(candidates))
    return served


def service_by(served: Sequence[Packet], class_id: Any, time: float) -> float:
    """Total bytes of ``class_id`` fully transmitted by ``time``."""
    return sum(
        p.size for p in served
        if p.class_id == class_id and p.departed is not None
        and p.departed <= time + 1e-9
    )


def rate_between(
    served: Sequence[Packet], class_id: Any, start: float, stop: float
) -> float:
    """Average departure rate (bytes/s) of a class over [start, stop)."""
    if stop <= start:
        return 0.0
    total = sum(
        p.size for p in served
        if p.class_id == class_id and p.departed is not None
        and start < p.departed <= stop
    )
    return total / (stop - start)
