"""Discrete-event network simulation substrate.

The paper evaluates H-FSC in simulation and in a NetBSD kernel; this package
is the simulation substrate for the reproduction: an event loop
(:mod:`~repro.sim.engine`), an output link that drives any scheduler
(:mod:`~repro.sim.link`), traffic sources (:mod:`~repro.sim.sources`),
token-bucket regulators (:mod:`~repro.sim.shaper`), a simplified TCP
(:mod:`~repro.sim.tcp`), multi-hop topologies (:mod:`~repro.sim.network`),
measurement (:mod:`~repro.sim.stats`) and trace recording/replay
(:mod:`~repro.sim.trace`).
"""

from repro.sim.engine import Event, EventLoop, PeriodicTask
from repro.sim.faults import (
    ArrivalFaultGate,
    ChaosInjector,
    ChaosResult,
    ChaosScenario,
    Fault,
    FaultSchedule,
    ViolationReport,
    Watchdog,
    prepare_chaos,
    run_chaos,
)
from repro.sim.link import Link
from repro.sim.network import Hop, Network
from repro.sim.packet import Packet
from repro.sim.red import REDBuffer
from repro.sim.shaper import TokenBucketPolicer, TokenBucketShaper
from repro.sim.stats import BacklogMeter, ClassStats, StatsCollector, ThroughputMeter
from repro.sim.tcp import DropTailBuffer, TCPConnection
from repro.sim.trace import TraceRecorder, arrivals_from_trace, load_trace, save_trace

__all__ = [
    "Event",
    "EventLoop",
    "PeriodicTask",
    "Link",
    "Fault",
    "FaultSchedule",
    "ChaosInjector",
    "ChaosResult",
    "ChaosScenario",
    "ArrivalFaultGate",
    "ViolationReport",
    "Watchdog",
    "prepare_chaos",
    "run_chaos",
    "Packet",
    "Network",
    "Hop",
    "TokenBucketShaper",
    "TokenBucketPolicer",
    "TCPConnection",
    "DropTailBuffer",
    "REDBuffer",
    "BacklogMeter",
    "ClassStats",
    "StatsCollector",
    "ThroughputMeter",
    "TraceRecorder",
    "save_trace",
    "load_trace",
    "arrivals_from_trace",
]
