"""Multi-hop topologies: nodes, wires, and flow routing.

The paper analyzes a single output link (where all of scheduling lives),
but real deployments chain H-FSC links along a path.  This module provides
the minimal topology substrate to study that: a :class:`Network` of named
nodes connected by (link + wire) hops, with per-flow static routes.  A
packet offered to the network traverses each hop's scheduler and wire in
turn; end-to-end delay is the sum of per-hop delays, so per-hop service
curves compose additively -- the multi-hop example and tests demonstrate
exactly that.

Per-hop class mapping: each hop schedules on ``packet.class_id`` (flows
keep one class id along the path), so every hop's hierarchy must define
the class ids of the flows routed through it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError, SimulationError
from repro.sim.engine import EventLoop
from repro.sim.link import Link
from repro.sim.packet import Packet

if TYPE_CHECKING:  # avoid a circular import; Scheduler is only a type hint
    from repro.schedulers.base import Scheduler

DeliveryListener = Callable[[Packet, float], None]


class Hop:
    """One directed hop: a scheduled link plus a propagation wire.

    The wire can be *impaired* (:meth:`impair`) for fault injection:
    per-packet loss, duplication and reordering are applied on the egress
    side, after the scheduler and the link have done their work -- the
    scheduling guarantees of this hop are unaffected, only what the next
    hop sees changes.  All randomness flows through the injected rng so
    fault runs replay exactly from a seed.
    """

    def __init__(self, loop: EventLoop, scheduler: "Scheduler", delay: float = 0.0):
        if delay < 0:
            raise ConfigurationError("propagation delay must be non-negative")
        self.loop = loop
        self.link = Link(loop, scheduler)
        self.delay = delay
        self._forward: Optional[Callable[[Packet], None]] = None
        self.link.add_listener(self._on_departure)
        # Egress impairment state (chaos injection); counters are public
        # so conservation audits can balance the books.
        self.lost_packets = 0
        self.duplicated_packets = 0
        self.reordered_packets = 0
        self._loss = 0.0
        self._dup = 0.0
        self._reorder = 0.0
        self._reorder_delay = 0.0
        self._impair_rng = None

    def connect(self, forward: Callable[[Packet], None]) -> None:
        self._forward = forward

    def offer(self, packet: Packet) -> None:
        self.link.offer(packet)

    def impair(
        self,
        loss: float = 0.0,
        dup: float = 0.0,
        reorder: float = 0.0,
        reorder_delay: float = 0.0,
        rng=None,
    ) -> None:
        """Configure egress fault injection (pass all zeros to clear).

        ``loss``/``dup``/``reorder`` are per-packet probabilities;
        reordered packets are held back a uniform extra delay in
        ``[0, reorder_delay]`` so later packets can overtake them.
        """
        for name, p in (("loss", loss), ("dup", dup), ("reorder", reorder)):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} probability must be in [0, 1]")
        if reorder_delay < 0:
            raise ConfigurationError("reorder_delay must be non-negative")
        if (loss or dup or reorder) and rng is None:
            raise ConfigurationError("impairment requires an rng (seeded replay)")
        self._loss = loss
        self._dup = dup
        self._reorder = reorder
        self._reorder_delay = reorder_delay
        self._impair_rng = rng

    def _on_departure(self, packet: Packet, now: float) -> None:
        if self._forward is None:
            return
        # Always forward through the event loop (even with zero delay) so
        # that other departure listeners on this hop -- statistics
        # collectors in particular -- observe the packet's timing fields
        # before the next hop reuses them.
        rng = self._impair_rng
        if rng is not None:
            if self._loss and rng.random() < self._loss:
                self.lost_packets += 1
                return
            if self._dup and rng.random() < self._dup:
                # The duplicate is a fresh Packet: per-hop bookkeeping
                # mutates timing fields in place, so forwarding the same
                # object twice would corrupt both copies.
                self.duplicated_packets += 1
                copy = Packet(packet.class_id, packet.size, created=now)
                self.loop.schedule_after(self.delay, self._forward, copy)
            if self._reorder and rng.random() < self._reorder:
                self.reordered_packets += 1
                extra = self._reorder_delay * rng.random()
                self.loop.schedule_after(self.delay + extra, self._forward, packet)
                return
        self.loop.schedule_after(self.delay, self._forward, packet)


class Network:
    """Named nodes, directed hops, static per-flow routes.

    Usage::

        net = Network(loop)
        net.add_hop("a", "b", scheduler_ab, delay=0.01)
        net.add_hop("b", "c", scheduler_bc, delay=0.01)
        net.add_route(flow_id="f1", path=["a", "b", "c"])
        net.ingress("f1").offer(packet)        # packet.class_id == "f1"
        net.add_delivery_listener("f1", on_arrival)
    """

    def __init__(self, loop: EventLoop):
        self.loop = loop
        self._hops: Dict[Tuple[Any, Any], Hop] = {}
        self._routes: Dict[Any, List[Any]] = {}
        self._listeners: Dict[Any, List[DeliveryListener]] = {}

    def add_hop(
        self, src: Any, dst: Any, scheduler: "Scheduler", delay: float = 0.0
    ) -> Hop:
        key = (src, dst)
        if key in self._hops:
            raise ConfigurationError(f"duplicate hop {src!r} -> {dst!r}")
        hop = Hop(self.loop, scheduler, delay)
        self._hops[key] = hop
        return hop

    def hop(self, src: Any, dst: Any) -> Hop:
        return self._hops[(src, dst)]

    def add_route(self, flow_id: Any, path: List[Any]) -> None:
        if len(path) < 2:
            raise ConfigurationError("a route needs at least two nodes")
        for src, dst in zip(path, path[1:]):
            if (src, dst) not in self._hops:
                raise ConfigurationError(f"no hop {src!r} -> {dst!r}")
        if flow_id in self._routes:
            raise ConfigurationError(f"duplicate route for flow {flow_id!r}")
        self._routes[flow_id] = path
        # Wire the per-hop forwarding for this flow lazily through a
        # shared dispatcher on each hop (hops carry many flows).
        for src, dst in zip(path, path[1:]):
            hop = self._hops[(src, dst)]
            if hop._forward is None:
                hop.connect(self._make_dispatcher(dst))

    def add_delivery_listener(self, flow_id: Any, listener: DeliveryListener) -> None:
        self._listeners.setdefault(flow_id, []).append(listener)

    def ingress(self, flow_id: Any):
        """The object sources should ``offer`` packets of this flow to."""
        path = self._route_for(flow_id)
        return self._hops[(path[0], path[1])]

    # -- internals --------------------------------------------------------

    def _route_for(self, flow_id: Any) -> List[Any]:
        try:
            return self._routes[flow_id]
        except KeyError:
            raise ConfigurationError(f"no route for flow {flow_id!r}") from None

    def _make_dispatcher(self, node: Any) -> Callable[[Packet], None]:
        def dispatch(packet: Packet) -> None:
            if packet.class_id not in self._routes:
                # Hop-local traffic (e.g. per-hop cross load) terminates at
                # the hop's egress.
                return
            path = self._route_for(packet.class_id)
            try:
                index = path.index(node)
            except ValueError:
                raise SimulationError(
                    f"flow {packet.class_id!r} arrived at off-route node {node!r}"
                ) from None
            if index == len(path) - 1:
                now = self.loop.now
                for listener in self._listeners.get(packet.class_id, ()):
                    listener(packet, now)
                return
            next_hop = self._hops[(node, path[index + 1])]
            # Re-enter the next hop's scheduler as a fresh arrival.
            packet.enqueued = None
            packet.dequeued = None
            packet.departed = None
            next_hop.offer(packet)

        return dispatch
