"""Multi-hop topologies: nodes, wires, and flow routing.

The paper analyzes a single output link (where all of scheduling lives),
but real deployments chain H-FSC links along a path.  This module provides
the minimal topology substrate to study that: a :class:`Network` of named
nodes connected by (link + wire) hops, with per-flow static routes.  A
packet offered to the network traverses each hop's scheduler and wire in
turn; end-to-end delay is the sum of per-hop delays, so per-hop service
curves compose additively -- the multi-hop example and tests demonstrate
exactly that.

Per-hop class mapping: each hop schedules on ``packet.class_id``.  By
default a flow keeps its flow id as the class id along the whole path, so
every hop's hierarchy must define that id.  Real paths are not that
uniform -- a flow that is ``cmu.video`` inside the campus tree may be
plain ``transit`` on the backbone hop -- so :meth:`Network.add_route`
accepts an optional ``class_map`` assigning the flow a different class id
per hop (keyed by the hop's source node).  The network rewrites the
packet's ``class_id`` at each hop boundary and restores the flow id on
delivery; two flows may not map to the same class id on the same hop
(their egress would be indistinguishable).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError, SimulationError
from repro.sim.engine import EventLoop
from repro.sim.link import Link
from repro.sim.packet import Packet

if TYPE_CHECKING:  # avoid a circular import; Scheduler is only a type hint
    from repro.schedulers.base import Scheduler

DeliveryListener = Callable[[Packet, float], None]


class Hop:
    """One directed hop: a scheduled link plus a propagation wire.

    The wire can be *impaired* (:meth:`impair`) for fault injection:
    per-packet loss, duplication and reordering are applied on the egress
    side, after the scheduler and the link have done their work -- the
    scheduling guarantees of this hop are unaffected, only what the next
    hop sees changes.  All randomness flows through the injected rng so
    fault runs replay exactly from a seed.
    """

    def __init__(self, loop: EventLoop, scheduler: "Scheduler", delay: float = 0.0):
        if delay < 0:
            raise ConfigurationError("propagation delay must be non-negative")
        self.loop = loop
        self.link = Link(loop, scheduler)
        self.delay = delay
        self._forward: Optional[Callable[[Packet], None]] = None
        self.link.add_listener(self._on_departure)
        # Egress impairment state (chaos injection); counters are public
        # so conservation audits can balance the books.
        self.lost_packets = 0
        self.duplicated_packets = 0
        self.reordered_packets = 0
        self._loss = 0.0
        self._dup = 0.0
        self._reorder = 0.0
        self._reorder_delay = 0.0
        self._impair_rng = None

    def connect(self, forward: Callable[[Packet], None]) -> None:
        self._forward = forward

    def offer(self, packet: Packet) -> None:
        self.link.offer(packet)

    def impair(
        self,
        loss: float = 0.0,
        dup: float = 0.0,
        reorder: float = 0.0,
        reorder_delay: float = 0.0,
        rng=None,
    ) -> None:
        """Configure egress fault injection (pass all zeros to clear).

        ``loss``/``dup``/``reorder`` are per-packet probabilities;
        reordered packets are held back a uniform extra delay in
        ``[0, reorder_delay]`` so later packets can overtake them.
        """
        for name, p in (("loss", loss), ("dup", dup), ("reorder", reorder)):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} probability must be in [0, 1]")
        if reorder_delay < 0:
            raise ConfigurationError("reorder_delay must be non-negative")
        if (loss or dup or reorder) and rng is None:
            raise ConfigurationError("impairment requires an rng (seeded replay)")
        self._loss = loss
        self._dup = dup
        self._reorder = reorder
        self._reorder_delay = reorder_delay
        self._impair_rng = rng

    def _on_departure(self, packet: Packet, now: float) -> None:
        if self._forward is None:
            return
        # Always forward through the event loop (even with zero delay) so
        # that other departure listeners on this hop -- statistics
        # collectors in particular -- observe the packet's timing fields
        # before the next hop reuses them.
        rng = self._impair_rng
        if rng is not None:
            if self._loss and rng.random() < self._loss:
                self.lost_packets += 1
                return
            if self._dup and rng.random() < self._dup:
                # The duplicate is a fresh Packet: per-hop bookkeeping
                # mutates timing fields in place, so forwarding the same
                # object twice would corrupt both copies.
                self.duplicated_packets += 1
                copy = Packet(packet.class_id, packet.size, created=now)
                self.loop.schedule_after(self.delay, self._forward, copy)
            if self._reorder and rng.random() < self._reorder:
                self.reordered_packets += 1
                extra = self._reorder_delay * rng.random()
                self.loop.schedule_after(self.delay + extra, self._forward, packet)
                return
        self.loop.schedule_after(self.delay, self._forward, packet)


class Network:
    """Named nodes, directed hops, static per-flow routes.

    Usage::

        net = Network(loop)
        net.add_hop("a", "b", scheduler_ab, delay=0.01)
        net.add_hop("b", "c", scheduler_bc, delay=0.01)
        net.add_route(flow_id="f1", path=["a", "b", "c"])
        net.ingress("f1").offer(packet)        # packet.class_id == "f1"
        net.add_delivery_listener("f1", on_arrival)
    """

    def __init__(self, loop: EventLoop):
        self.loop = loop
        self._hops: Dict[Tuple[Any, Any], Hop] = {}
        self._routes: Dict[Any, List[Any]] = {}
        self._listeners: Dict[Any, List[DeliveryListener]] = {}
        # (src, dst, class id on that hop) -> flow id; the egress-side
        # reverse of each route's per-hop class mapping.
        self._flow_at_egress: Dict[Tuple[Any, Any, Any], Any] = {}
        # flow id -> {src node: class id on the hop leaving src}.
        self._class_maps: Dict[Any, Dict[Any, Any]] = {}

    def add_hop(
        self, src: Any, dst: Any, scheduler: "Scheduler", delay: float = 0.0
    ) -> Hop:
        key = (src, dst)
        if key in self._hops:
            raise ConfigurationError(f"duplicate hop {src!r} -> {dst!r}")
        hop = Hop(self.loop, scheduler, delay)
        self._hops[key] = hop
        return hop

    def hop(self, src: Any, dst: Any) -> Hop:
        return self._hops[(src, dst)]

    def add_route(
        self,
        flow_id: Any,
        path: List[Any],
        class_map: Optional[Dict[Any, Any]] = None,
    ) -> None:
        """Route ``flow_id`` along ``path``.

        ``class_map`` optionally maps a hop's *source node* to the class
        id the flow uses on the hop leaving that node; unmapped hops use
        ``flow_id`` itself.  The mapping must be unambiguous per hop: two
        flows sharing one class id on the same hop are rejected.
        """
        if len(path) < 2:
            raise ConfigurationError("a route needs at least two nodes")
        for src, dst in zip(path, path[1:]):
            if (src, dst) not in self._hops:
                raise ConfigurationError(f"no hop {src!r} -> {dst!r}")
        if flow_id in self._routes:
            raise ConfigurationError(f"duplicate route for flow {flow_id!r}")
        mapping = dict(class_map or {})
        unknown = set(mapping) - set(path[:-1])
        if unknown:
            raise ConfigurationError(
                f"class_map keys {sorted(map(repr, unknown))} are not "
                f"source nodes on the path of flow {flow_id!r}"
            )
        registered: List[Tuple[Any, Any, Any]] = []
        for src, dst in zip(path, path[1:]):
            key = (src, dst, mapping.get(src, flow_id))
            owner = self._flow_at_egress.get(key)
            if owner is not None and owner != flow_id:
                for done in registered:
                    del self._flow_at_egress[done]
                raise ConfigurationError(
                    f"class id {key[2]!r} on hop {src!r} -> {dst!r} is "
                    f"already carrying flow {owner!r}"
                )
            self._flow_at_egress[key] = flow_id
            registered.append(key)
        self._routes[flow_id] = path
        self._class_maps[flow_id] = mapping
        # Wire the per-hop forwarding for this flow lazily through a
        # shared dispatcher on each hop (hops carry many flows).
        for src, dst in zip(path, path[1:]):
            hop = self._hops[(src, dst)]
            if hop._forward is None:
                hop.connect(self._make_dispatcher(src, dst))

    def add_delivery_listener(self, flow_id: Any, listener: DeliveryListener) -> None:
        self._listeners.setdefault(flow_id, []).append(listener)

    def ingress(self, flow_id: Any):
        """The object sources should ``offer`` packets of this flow to.

        When the flow's first hop remaps its class id, the returned
        object rewrites ``packet.class_id`` before offering, so sources
        keep creating packets tagged with the flow id.
        """
        path = self._route_for(flow_id)
        hop = self._hops[(path[0], path[1])]
        first_class = self._class_maps.get(flow_id, {}).get(path[0], flow_id)
        if first_class == flow_id:
            return hop
        return _RemappingIngress(hop, first_class)

    # -- internals --------------------------------------------------------

    def _route_for(self, flow_id: Any) -> List[Any]:
        try:
            return self._routes[flow_id]
        except KeyError:
            raise ConfigurationError(f"no route for flow {flow_id!r}") from None

    def _make_dispatcher(self, src: Any, node: Any) -> Callable[[Packet], None]:
        def dispatch(packet: Packet) -> None:
            flow_id = self._flow_at_egress.get((src, node, packet.class_id))
            if flow_id is None:
                # Hop-local traffic (e.g. per-hop cross load) terminates at
                # the hop's egress.
                return
            path = self._route_for(flow_id)
            try:
                index = path.index(node)
            except ValueError:
                raise SimulationError(
                    f"flow {flow_id!r} arrived at off-route node {node!r}"
                ) from None
            if index == len(path) - 1:
                # Deliver under the flow's own identity, whatever class id
                # the last hop scheduled it on.
                packet.class_id = flow_id
                now = self.loop.now
                for listener in self._listeners.get(flow_id, ()):
                    listener(packet, now)
                return
            next_hop = self._hops[(node, path[index + 1])]
            # Re-enter the next hop's scheduler as a fresh arrival, under
            # the class id this flow uses on that hop.
            packet.class_id = self._class_maps[flow_id].get(node, flow_id)
            packet.enqueued = None
            packet.dequeued = None
            packet.departed = None
            next_hop.offer(packet)

        return dispatch


class _RemappingIngress:
    """Offer-adapter: rewrite the class id for a flow's first hop."""

    __slots__ = ("hop", "class_id")

    def __init__(self, hop: Hop, class_id: Any):
        self.hop = hop
        self.class_id = class_id

    def offer(self, packet: Packet) -> None:
        packet.class_id = self.class_id
        self.hop.offer(packet)
