"""Traffic sources.

Every source self-schedules on the event loop and feeds packets to a link
(or any object with an ``offer(packet)`` method).  The set covers the
workloads the paper's evaluation needs:

* :class:`CBRSource` -- constant bit rate, e.g. the 64 kbit/s packet audio
  with 160-byte packets from the paper's motivating examples;
* :class:`PoissonSource` -- Poisson arrivals;
* :class:`OnOffSource` -- exponential or Pareto on/off bursts;
* :class:`GreedySource` -- always-backlogged (the "FTP" of the
  experiments): it tops the queue back up on every departure;
* :class:`VideoFrameSource` -- frames at a fixed rate with random sizes,
  fragmented into MTU-sized packets that arrive back-to-back; exercises
  the per-frame delay guarantees of Section V;
* :class:`TraceSource` -- replay of an explicit (time, size) list.

All randomness flows through an injected ``random.Random`` so experiments
are reproducible from a seed (see :func:`repro.util.rng.make_rng`).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.sim.engine import EventLoop
from repro.sim.link import Link
from repro.sim.packet import Packet


class _Target(Protocol):
    def offer(self, packet: Packet) -> None: ...


class Source:
    """Common machinery: lifetime window and packet emission counters."""

    def __init__(
        self,
        loop: EventLoop,
        target: _Target,
        class_id: Any,
        start: float = 0.0,
        stop: Optional[float] = None,
    ):
        self.loop = loop
        self.target = target
        self.class_id = class_id
        self.start = start
        self.stop = stop
        self.packets_sent = 0
        self.bytes_sent = 0.0

    def _alive(self) -> bool:
        return self.stop is None or self.loop.now < self.stop

    def _emit(self, size: float) -> Packet:
        packet = Packet(self.class_id, size, created=self.loop.now)
        self.packets_sent += 1
        self.bytes_sent += size
        self.target.offer(packet)
        return packet


class CBRSource(Source):
    """Constant bit rate: one ``packet_size`` packet every interval."""

    def __init__(
        self,
        loop: EventLoop,
        target: _Target,
        class_id: Any,
        rate: float,
        packet_size: float,
        start: float = 0.0,
        stop: Optional[float] = None,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(loop, target, class_id, start, stop)
        if rate <= 0 or packet_size <= 0:
            raise ConfigurationError("rate and packet_size must be positive")
        if jitter and rng is None:
            raise ConfigurationError("jitter requires an rng")
        self.interval = packet_size / rate
        self.packet_size = packet_size
        self.jitter = jitter
        self.rng = rng
        loop.schedule(start, self._tick)

    def _tick(self) -> None:
        if not self._alive():
            return
        self._emit(self.packet_size)
        delay = self.interval
        if self.jitter:
            assert self.rng is not None
            delay *= 1.0 + self.jitter * (2.0 * self.rng.random() - 1.0)
        self.loop.schedule_after(max(delay, 1e-9), self._tick)


class PoissonSource(Source):
    """Poisson packet arrivals at ``rate`` bytes/second average."""

    def __init__(
        self,
        loop: EventLoop,
        target: _Target,
        class_id: Any,
        rate: float,
        packet_size: float,
        rng: random.Random,
        start: float = 0.0,
        stop: Optional[float] = None,
    ):
        super().__init__(loop, target, class_id, start, stop)
        if rate <= 0 or packet_size <= 0:
            raise ConfigurationError("rate and packet_size must be positive")
        self.mean_interval = packet_size / rate
        self.packet_size = packet_size
        self.rng = rng
        loop.schedule(start + rng.expovariate(1.0 / self.mean_interval), self._tick)

    def _tick(self) -> None:
        if not self._alive():
            return
        self._emit(self.packet_size)
        self.loop.schedule_after(
            self.rng.expovariate(1.0 / self.mean_interval), self._tick
        )


class OnOffSource(Source):
    """Bursty on/off traffic.

    During ON periods packets of ``packet_size`` are sent back-to-back at
    ``peak_rate``; OFF periods are silent.  Period lengths are exponential
    by default or Pareto (``shape`` given) for heavy-tailed bursts.
    """

    def __init__(
        self,
        loop: EventLoop,
        target: _Target,
        class_id: Any,
        peak_rate: float,
        packet_size: float,
        mean_on: float,
        mean_off: float,
        rng: random.Random,
        pareto_shape: Optional[float] = None,
        start: float = 0.0,
        stop: Optional[float] = None,
    ):
        super().__init__(loop, target, class_id, start, stop)
        if min(peak_rate, packet_size, mean_on, mean_off) <= 0:
            raise ConfigurationError("OnOffSource parameters must be positive")
        if pareto_shape is not None and pareto_shape <= 1.0:
            raise ConfigurationError("pareto_shape must be > 1 for a finite mean")
        self.peak_interval = packet_size / peak_rate
        self.packet_size = packet_size
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.rng = rng
        self.pareto_shape = pareto_shape
        self._on_until = 0.0
        loop.schedule(start, self._start_on)

    @property
    def mean_rate(self) -> float:
        """Long-run average rate implied by the on/off parameters."""
        duty = self.mean_on / (self.mean_on + self.mean_off)
        return duty * self.packet_size / self.peak_interval

    def _duration(self, mean: float) -> float:
        if self.pareto_shape is None:
            return self.rng.expovariate(1.0 / mean)
        shape = self.pareto_shape
        scale = mean * (shape - 1.0) / shape
        return scale * (1.0 - self.rng.random()) ** (-1.0 / shape)

    def _start_on(self) -> None:
        if not self._alive():
            return
        self._on_until = self.loop.now + self._duration(self.mean_on)
        self._burst_tick()

    def _burst_tick(self) -> None:
        if not self._alive():
            return
        if self.loop.now >= self._on_until:
            self.loop.schedule_after(self._duration(self.mean_off), self._start_on)
            return
        self._emit(self.packet_size)
        self.loop.schedule_after(self.peak_interval, self._burst_tick)


class GreedySource(Source):
    """An always-backlogged source (the experiments' FTP stand-in).

    Keeps ``window`` packets of ``packet_size`` in the scheduler at all
    times by replenishing on every departure of its class.  Requires the
    target to be a :class:`~repro.sim.link.Link` (it must observe
    departures).
    """

    def __init__(
        self,
        loop: EventLoop,
        link: Link,
        class_id: Any,
        packet_size: float,
        window: int = 4,
        start: float = 0.0,
        stop: Optional[float] = None,
    ):
        super().__init__(loop, link, class_id, start, stop)
        if packet_size <= 0 or window < 1:
            raise ConfigurationError("packet_size must be positive, window >= 1")
        self.packet_size = packet_size
        self.window = window
        link.add_class_listener(class_id, self._on_departure)
        loop.schedule(start, self._prime)

    def _prime(self) -> None:
        for _ in range(self.window):
            if not self._alive():
                return
            self._emit(self.packet_size)

    def _on_departure(self, packet: Packet, now: float) -> None:
        if self._alive():
            self._emit(self.packet_size)


class VideoFrameSource(Source):
    """Frame-structured traffic (synthetic stand-in for MPEG traces).

    Every ``1 / fps`` seconds a frame is generated whose size is lognormal
    with the given mean and coefficient of variation, clipped to
    ``[min_frame, max_frame]``; the frame is fragmented into packets of at
    most ``mtu`` bytes which arrive back-to-back.  This is the per-frame
    burst structure for which Section V suggests setting the service
    curve's ``umax`` to the maximum frame size.
    """

    def __init__(
        self,
        loop: EventLoop,
        target: _Target,
        class_id: Any,
        fps: float,
        mean_frame: float,
        rng: random.Random,
        cv: float = 0.5,
        min_frame: float = 200.0,
        max_frame: Optional[float] = None,
        mtu: float = 1500.0,
        start: float = 0.0,
        stop: Optional[float] = None,
    ):
        super().__init__(loop, target, class_id, start, stop)
        if fps <= 0 or mean_frame <= 0 or mtu <= 0:
            raise ConfigurationError("fps, mean_frame and mtu must be positive")
        import math

        self.interval = 1.0 / fps
        self.mtu = mtu
        self.min_frame = min_frame
        self.max_frame = max_frame if max_frame is not None else 4.0 * mean_frame
        # Lognormal parameterized by mean and coefficient of variation.
        sigma2 = math.log(1.0 + cv * cv)
        self._mu = math.log(mean_frame) - sigma2 / 2.0
        self._sigma = math.sqrt(sigma2)
        self.rng = rng
        self.frames_sent = 0
        loop.schedule(start, self._frame)

    def _frame(self) -> None:
        if not self._alive():
            return
        size = self.rng.lognormvariate(self._mu, self._sigma)
        size = min(max(size, self.min_frame), self.max_frame)
        remaining = size
        while remaining > 0:
            fragment = min(remaining, self.mtu)
            self._emit(fragment)
            remaining -= fragment
        self.frames_sent += 1
        self.loop.schedule_after(self.interval, self._frame)


class TraceSource(Source):
    """Replay an explicit list of (time, size) arrivals."""

    def __init__(
        self,
        loop: EventLoop,
        target: _Target,
        class_id: Any,
        trace: Iterable[Tuple[float, float]],
    ):
        entries: List[Tuple[float, float]] = sorted(trace)
        super().__init__(loop, target, class_id,
                         start=entries[0][0] if entries else 0.0)
        for time, size in entries:
            loop.schedule(time, self._emit_sized, size)

    def _emit_sized(self, size: float) -> None:
        self._emit(size)
