"""Chaos injection: deterministic fault schedules for the H-FSC stack.

The paper's admission-control story assumes a well-behaved link and a
static class hierarchy; production links flap, operators reconfigure
hierarchies mid-run, and clocks jitter.  This module stress-tests the
reproduction under exactly those conditions while keeping every run
replayable from a seed:

* :class:`FaultSchedule` / :class:`ChaosInjector` -- a timed list of
  faults (link-rate flaps and outages, class churn, live curve updates,
  state rebuilds) applied to a (link, scheduler) pair through the event
  loop.  Reconfigurations the scheduler legitimately refuses
  (:class:`~repro.core.errors.ReconfigurationError`, admission failures)
  are recorded, never raised.
* :class:`ArrivalFaultGate` -- wraps any ``offer`` target with arrival
  loss and arrival-clock jitter, and converts
  :class:`~repro.core.errors.OverloadError` from the scheduler's
  admission check into counted rejections (the "raise" policy then
  sheds load instead of crashing the run).
* :class:`Watchdog` -- periodically runs the scheduler's
  ``check_invariants`` and the eq. (1) guarantee audit
  (:func:`repro.analysis.audit.audit_guarantees`), emitting structured
  :class:`ViolationReport` records; optionally triggers
  ``scheduler.rebuild`` on an invariant failure.
* :func:`run_chaos` -- a canned, fully seeded chaos scenario returning a
  :class:`ChaosResult` with conservation accounting, guarantee audits
  and a departure-schedule digest (identical digests with faults
  disabled prove the fault machinery is pay-for-what-you-use).

Conservation is the load-bearing invariant: every packet offered to the
gate is either dropped by the gate, rejected by admission, or enqueued;
every enqueued packet is served, returned by a forced removal, or still
queued.  :meth:`ChaosResult.conservation` balances those books.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.audit import audit_guarantees
from repro.core.curves import ServiceCurve
from repro.core.errors import (
    AdmissionError,
    ConfigurationError,
    OverloadError,
    SimulationError,
)
from repro.obs.core import TELEMETRY as _TELEM
from repro.sim.engine import EventLoop, PeriodicTask
from repro.sim.link import Link
from repro.sim.packet import Packet
from repro.sim.sources import CBRSource, PoissonSource
from repro.util.rng import make_rng

if TYPE_CHECKING:  # repro.core.hfsc imports the sim package; keep it lazy
    from repro.core.hfsc import HFSC

FAULT_KINDS = (
    "set-rate",      # params: rate (0 = outage start)
    "add-class",     # params: name, parent, rt_sc?, ls_sc?, ul_sc?, sc?
    "remove-class",  # params: name, force?
    "update-class",  # params: name + curve kwargs for HFSC.update_class
    "rebuild",       # params: none
)


@dataclass(frozen=True)
class Fault:
    """One timed fault; ``params`` are kind-specific (see FAULT_KINDS)."""

    time: float
    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(f"unknown fault kind: {self.kind!r}")
        if self.time < 0:
            raise ConfigurationError("fault time must be non-negative")


class FaultSchedule:
    """An ordered, replayable list of faults.

    Build one explicitly with the convenience methods, or draw a seeded
    random schedule with :meth:`random`.  The schedule itself never
    touches a scheduler -- :class:`ChaosInjector` applies it.
    """

    def __init__(self, faults: Optional[List[Fault]] = None):
        self.faults: List[Fault] = sorted(faults or [], key=lambda f: f.time)

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def add(self, fault: Fault) -> "FaultSchedule":
        self.faults.append(fault)
        self.faults.sort(key=lambda f: f.time)
        return self

    # -- convenience constructors ------------------------------------------

    def set_rate(self, time: float, rate: float) -> "FaultSchedule":
        return self.add(Fault(time, "set-rate", {"rate": float(rate)}))

    def outage(self, start: float, duration: float, restore: float) -> "FaultSchedule":
        """A full outage: rate 0 at ``start``, ``restore`` after ``duration``."""
        if duration <= 0:
            raise ConfigurationError("outage duration must be positive")
        self.set_rate(start, 0.0)
        return self.set_rate(start + duration, restore)

    def add_class(self, time: float, name: Any, parent: Any, **curves: Any) -> "FaultSchedule":
        return self.add(Fault(time, "add-class", {"name": name, "parent": parent, **curves}))

    def remove_class(self, time: float, name: Any, force: bool = False) -> "FaultSchedule":
        return self.add(Fault(time, "remove-class", {"name": name, "force": force}))

    def update_class(self, time: float, name: Any, **curves: Any) -> "FaultSchedule":
        return self.add(Fault(time, "update-class", {"name": name, **curves}))

    def rebuild(self, time: float) -> "FaultSchedule":
        return self.add(Fault(time, "rebuild", {}))

    @classmethod
    def random(
        cls,
        seed: int,
        duration: float,
        link_rate: float,
        flaps: int = 4,
        flap_floor: float = 0.5,
        outages: int = 1,
        outage_duration: float = 0.05,
        churn: int = 2,
        churn_parent: Any = None,
        churn_rate: float = 0.0,
        rebuilds: int = 1,
    ) -> "FaultSchedule":
        """Draw a seeded schedule: rate flaps, outages, churn, rebuilds.

        Flapped rates stay in ``[flap_floor, 1] * link_rate`` and the rate
        is always restored to ``link_rate`` before ``duration`` ends, so a
        caller keeping real-time demand below ``flap_floor * link_rate``
        can still assert guarantees for unfaulted classes.  Churn adds a
        link-sharing-only class under ``churn_parent`` and later removes
        it (force-drained), which cannot perturb admitted rt guarantees.
        """
        rng = make_rng(seed, "fault-schedule")
        schedule = cls()
        for _ in range(flaps):
            at = rng.uniform(0.05, 0.8) * duration
            factor = flap_floor + (1.0 - flap_floor) * rng.random()
            schedule.set_rate(at, factor * link_rate)
            schedule.set_rate(at + rng.uniform(0.02, 0.1) * duration, link_rate)
        for _ in range(outages):
            at = rng.uniform(0.1, 0.7) * duration
            schedule.outage(at, outage_duration, link_rate)
        if churn and churn_parent is not None and churn_rate > 0:
            for i in range(churn):
                born = rng.uniform(0.05, 0.6) * duration
                gone = born + rng.uniform(0.1, 0.3) * duration
                name = f"churn-{i}"
                schedule.add_class(
                    born, name, churn_parent, ls_sc=ServiceCurve.linear(churn_rate)
                )
                schedule.remove_class(gone, name, force=True)
        for _ in range(rebuilds):
            schedule.rebuild(rng.uniform(0.2, 0.9) * duration)
        return schedule


class ChaosInjector:
    """Applies a :class:`FaultSchedule` to a link + H-FSC scheduler pair.

    Rate faults hit both layers: the physical transmitter
    (:meth:`Link.set_rate`, including outages at rate 0) and -- for
    positive rates -- the scheduler's capacity model
    (:meth:`HFSC.set_link_rate`), so admission control and the root
    link-sharing curve track the degraded link.  Outages leave the
    scheduler's model alone: guarantees are re-audited, not silently
    rewritten, when capacity vanishes entirely.

    Reconfiguration faults the scheduler refuses are appended to
    :attr:`rejected` with the error's message; everything applied cleanly
    lands in :attr:`applied`.  Both lists are ``(time, fault, detail)``
    tuples so reports stay structured.
    """

    def __init__(self, loop: EventLoop, link: Link, scheduler: HFSC):
        self.loop = loop
        self.link = link
        self.scheduler = scheduler
        self.applied: List[Tuple[float, Fault, str]] = []
        self.rejected: List[Tuple[float, Fault, str]] = []
        self.drained_packets: List[Packet] = []
        self._events: List[Any] = []

    def arm(self, schedule: FaultSchedule) -> None:
        for fault in schedule:
            self._events.append(self.loop.schedule(fault.time, self._fire, fault))

    def cancel(self) -> None:
        for event in self._events:
            event.cancel()
        self._events.clear()

    # -- fault application --------------------------------------------------

    def _fire(self, fault: Fault) -> None:
        now = self.loop.now
        try:
            detail = self._apply(fault, now)
        except (ConfigurationError, AdmissionError) as exc:
            # The scheduler legitimately refused (unknown class, queued
            # packets without force, inadmissible curve...): record it --
            # chaos probes robustness, a refusal is a correct answer.
            self.rejected.append((now, fault, str(exc)))
            return
        self.applied.append((now, fault, detail))

    def _apply(self, fault: Fault, now: float) -> str:
        kind, params = fault.kind, fault.params
        if kind == "set-rate":
            rate = params["rate"]
            self.link.set_rate(rate)
            if rate > 0:
                self.scheduler.set_link_rate(rate)
            return f"rate={rate:g}"
        if kind == "add-class":
            curves = {k: v for k, v in params.items() if k not in ("name", "parent")}
            self.scheduler.add_class(params["name"], params["parent"], **curves)
            return f"added {params['name']!r}"
        if kind == "remove-class":
            drained = self.scheduler.remove_class(
                params["name"], force=params.get("force", False)
            )
            self.drained_packets.extend(drained)
            return f"removed {params['name']!r} (drained {len(drained)})"
        if kind == "update-class":
            curves = {k: v for k, v in params.items() if k != "name"}
            self.scheduler.update_class(params["name"], now, **curves)
            return f"updated {params['name']!r}"
        if kind == "rebuild":
            self.scheduler.rebuild(now)
            return "rebuilt"
        raise SimulationError(f"unhandled fault kind {kind!r}")  # pragma: no cover


class ArrivalFaultGate:
    """Arrival-path fault injection in front of any ``offer`` target.

    Drops arrivals with probability ``loss``, delays the rest by a
    uniform jitter in ``[0, jitter]`` seconds (arrival-clock skew), and
    absorbs :class:`OverloadError` from the target's admission check as
    counted rejections -- under the "raise" overload policy the gate is
    what turns a hard failure into load shedding.  With both knobs at
    zero and no rng the gate is transparent: no random draws, no
    deferral, byte-identical schedules.
    """

    def __init__(
        self,
        loop: EventLoop,
        target: Any,
        loss: float = 0.0,
        jitter: float = 0.0,
        rng=None,
    ):
        if not 0.0 <= loss <= 1.0:
            raise ConfigurationError("loss probability must be in [0, 1]")
        if jitter < 0:
            raise ConfigurationError("jitter must be non-negative")
        if (loss or jitter) and rng is None:
            raise ConfigurationError("arrival faults require an rng (seeded replay)")
        self.loop = loop
        self.target = target
        self.loss = loss
        self.jitter = jitter
        self.rng = rng
        self.offered = 0
        self.dropped = 0
        self.delayed = 0
        self.delivered = 0
        self.rejections: List[Tuple[float, Any]] = []

    def offer(self, packet: Packet) -> None:
        self.offered += 1
        rng = self.rng
        if rng is not None:
            if self.loss and rng.random() < self.loss:
                self.dropped += 1
                if _TELEM.enabled:
                    _TELEM.on_drop(packet.class_id, self.loop.now, "loss")
                return
            if self.jitter:
                delay = self.jitter * rng.random()
                if delay > 0.0:
                    self.delayed += 1
                    self.loop.schedule_after(delay, self._deliver, packet)
                    return
        self._deliver(packet)

    def _deliver(self, packet: Packet) -> None:
        # Deferred deliveries hit admission too: a reconfiguration may
        # have landed between the original arrival and now.
        try:
            self.target.offer(packet)
        except OverloadError:
            self.rejections.append((self.loop.now, packet.class_id))
            if _TELEM.enabled:
                _TELEM.on_drop(packet.class_id, self.loop.now, "overload")
            return
        self.delivered += 1


@dataclass
class ViolationReport:
    """One watchdog finding, structured for JSON reports and CI artifacts."""

    time: float
    kind: str  # "invariant" | "guarantee" | "conservation"
    detail: str
    class_id: Any = None
    excess: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "kind": self.kind,
            "detail": self.detail,
            "class_id": None if self.class_id is None else str(self.class_id),
            "excess": self.excess,
        }


class Watchdog:
    """Periodic structural + contractual self-checks during a run.

    Every ``period`` seconds it runs ``scheduler.check_invariants()``
    (heap/bookkeeping structure) and, when given ``guarantees``, the
    eq. (1) audit over the run's arrival/departure records with
    ``slack`` bytes of Theorem-2 tolerance.  Findings become
    :class:`ViolationReport` entries in :attr:`reports`; with
    ``auto_rebuild`` the watchdog additionally invokes
    ``scheduler.rebuild`` after an invariant failure (graceful
    degradation: restore a serviceable state and keep going).
    """

    def __init__(
        self,
        loop: EventLoop,
        scheduler: HFSC,
        period: float,
        arrivals: Optional[List[Tuple[float, Any, float]]] = None,
        served: Optional[List[Packet]] = None,
        guarantees: Optional[Dict[Any, ServiceCurve]] = None,
        slack: float = 0.0,
        auto_rebuild: bool = False,
        until: Optional[float] = None,
    ):
        self.loop = loop
        self.scheduler = scheduler
        self.arrivals = arrivals
        self.served = served
        self.guarantees = guarantees
        self.slack = slack
        self.auto_rebuild = auto_rebuild
        self.reports: List[ViolationReport] = []
        self.checks_run = 0
        self.rebuilds = 0
        self._task: PeriodicTask = loop.every(period, self._check, until=until)

    def stop(self) -> None:
        self._task.cancel()

    def check_now(self) -> List[ViolationReport]:
        """Run one check immediately; returns the new reports."""
        before = len(self.reports)
        self._check()
        return self.reports[before:]

    def _check(self) -> None:
        self.checks_run += 1
        now = self.loop.now
        before = len(self.reports)
        try:
            self.scheduler.check_invariants()
        except (AssertionError, RuntimeError) as exc:
            self.reports.append(ViolationReport(now, "invariant", str(exc)))
            if self.auto_rebuild:
                self.scheduler.rebuild(now)
                self.rebuilds += 1
        if self.guarantees and self.arrivals is not None and self.served is not None:
            violations = audit_guarantees(
                self.arrivals, self.served, self.guarantees, self.slack
            )
            for class_id, excess in sorted(violations.items(), key=lambda kv: str(kv[0])):
                self.reports.append(
                    ViolationReport(
                        now,
                        "guarantee",
                        f"eq.(1) shortfall {excess:g} beyond slack {self.slack:g}",
                        class_id=class_id,
                        excess=excess,
                    )
                )
        if _TELEM.enabled:
            for report in self.reports[before:]:
                _TELEM.on_violation(
                    report.time, report.kind, report.detail,
                    report.class_id, report.excess,
                )


@dataclass(frozen=True)
class CrashPoint:
    """Where the crash-injection harness kills a run.

    Exactly one of the two coordinates is set: ``at_event`` kills after
    the loop has processed that many events (a *structural* crash point
    -- it lands between two scheduler operations regardless of their
    timestamps), ``at_time`` kills once the clock reaches that simulated
    time.  :func:`repro.persist.harness.run_checkpointed` consumes these:
    the run stops at the crash point with a snapshot on disk, and the
    resume must continue to a byte-identical departure schedule.
    """

    at_event: Optional[int] = None
    at_time: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.at_event is None) == (self.at_time is None):
            raise ConfigurationError(
                "CrashPoint needs exactly one of at_event / at_time"
            )
        if self.at_event is not None and self.at_event < 0:
            raise ConfigurationError("at_event must be non-negative")
        if self.at_time is not None and self.at_time < 0:
            raise ConfigurationError("at_time must be non-negative")

    @classmethod
    def parse(cls, spec: str) -> "CrashPoint":
        """Parse a CLI spec: ``event:K`` / ``packet:K`` or ``time:T``."""
        kind, _, value = spec.partition(":")
        if not value:
            raise ConfigurationError(
                f"crash point {spec!r} is not of the form kind:value"
            )
        if kind in ("event", "packet"):
            return cls(at_event=int(value))
        if kind == "time":
            return cls(at_time=float(value))
        raise ConfigurationError(
            f"unknown crash point kind {kind!r} (expected event, packet or time)"
        )


class DriftGuard:
    """Long-run virtual-time drift audit riding :meth:`EventLoop.every`.

    Virtual times and curve anchors grow monotonically; after enough
    service (~1e7 events and beyond) their float spacing coarsens and
    tie-free orderings can start to collapse.  The guard periodically:

    * asserts the paper's bounded-lag property -- within one parent the
      spread between the smallest and largest active virtual time stays
      below ``lag_bound`` (eq. 12 keeps siblings clustered; unbounded
      spread means a bookkeeping leak, not workload variance);
    * watches the absolute virtual-time magnitude and, past
      ``renorm_threshold``, calls :meth:`repro.core.hfsc.HFSC.renormalize_vt`
      to pull every per-parent virtual-time domain back toward zero.

    Renormalization subtracts a power of two common to a whole domain,
    so *within* the domain every comparison is exact-shift invariant
    (Sterbenz: the subtraction is exact for every shifted value); it is
    still not digest-transparent in general -- future curve updates
    compute from smaller magnitudes and may round differently (that is
    the point) -- so the guard belongs in soaks and long-lived
    deployments, not in golden-schedule replays.
    """

    def __init__(
        self,
        loop: EventLoop,
        scheduler: "HFSC",
        period: float,
        lag_bound: float = 1e9,
        renorm_threshold: float = 2.0 ** 40,
        until: Optional[float] = None,
    ):
        if lag_bound <= 0 or renorm_threshold <= 0:
            raise ConfigurationError(
                "lag_bound and renorm_threshold must be positive"
            )
        self.loop = loop
        self.scheduler = scheduler
        self.lag_bound = lag_bound
        self.renorm_threshold = renorm_threshold
        self.checks_run = 0
        self.renormalizations = 0
        self.domains_shifted = 0
        self.max_lag_seen = 0.0
        self.max_magnitude_seen = 0.0
        self.reports: List[ViolationReport] = []
        self._task: PeriodicTask = loop.every(period, self._check, until=until)

    def stop(self) -> None:
        self._task.cancel()

    def check_now(self) -> List[ViolationReport]:
        before = len(self.reports)
        self._check()
        return self.reports[before:]

    def _check(self) -> None:
        self.checks_run += 1
        now = self.loop.now
        lag = self.scheduler.max_vt_lag()
        magnitude = self.scheduler.max_vt_magnitude()
        if lag > self.max_lag_seen:
            self.max_lag_seen = lag
        if magnitude > self.max_magnitude_seen:
            self.max_magnitude_seen = magnitude
        if lag > self.lag_bound:
            self.reports.append(
                ViolationReport(
                    now,
                    "invariant",
                    f"virtual-time lag {lag:g} exceeds bound {self.lag_bound:g}",
                    excess=lag - self.lag_bound,
                )
            )
        if magnitude > self.renorm_threshold:
            shifted = self.scheduler.renormalize_vt()
            if shifted:
                self.renormalizations += 1
                self.domains_shifted += shifted


# -- canned scenario ---------------------------------------------------------


@dataclass
class ChaosResult:
    """Everything a chaos run produced, ready for assertions and reports."""

    seed: int
    policy: str
    duration: float
    scheduler: HFSC
    link: Link
    gates: Dict[Any, ArrivalFaultGate]
    injector: ChaosInjector
    watchdog: Watchdog
    arrivals: List[Tuple[float, Any, float]]
    served: List[Packet]
    guarantees: Dict[Any, ServiceCurve]
    slack: float

    def conservation(self) -> Dict[str, float]:
        """Balance the packet books; ``ok`` is the invariant."""
        offered = sum(g.offered for g in self.gates.values())
        gate_dropped = sum(g.dropped for g in self.gates.values())
        rejected = sum(len(g.rejections) for g in self.gates.values())
        in_flight = sum(
            g.offered - g.dropped - g.delivered - len(g.rejections)
            for g in self.gates.values()
        )
        sched = self.scheduler
        backlog = len(sched)
        books = {
            "offered": offered,
            "gate_dropped": gate_dropped,
            "rejected": rejected,
            "in_flight": in_flight,
            "enqueued": sched.total_enqueued,
            "dequeued": sched.total_dequeued,
            "returned": sched.total_returned,
            "backlog": backlog,
        }
        books["ok"] = (
            offered == gate_dropped + rejected + in_flight + sched.total_enqueued
            and sched.total_enqueued
            == sched.total_dequeued + sched.total_returned + backlog
        )
        return books

    def guarantee_violations(self) -> Dict[Any, float]:
        """Eq. (1) excesses beyond Theorem-2 slack for the protected classes."""
        return audit_guarantees(self.arrivals, self.served, self.guarantees, self.slack)

    def schedule_digest(self) -> str:
        """sha256 over the departure schedule (class, size, time) records."""
        h = hashlib.sha256()
        for p in self.served:
            h.update(repr((p.class_id, p.size, p.departed)).encode())
        return h.hexdigest()

    def violations(self) -> List[ViolationReport]:
        found = list(self.watchdog.reports)
        books = self.conservation()
        if not books["ok"]:
            found.append(
                ViolationReport(
                    self.duration, "conservation", f"packet books do not balance: {books}"
                )
            )
        for class_id, excess in sorted(
            self.guarantee_violations().items(), key=lambda kv: str(kv[0])
        ):
            found.append(
                ViolationReport(
                    self.duration,
                    "guarantee",
                    f"final eq.(1) shortfall {excess:g} beyond slack {self.slack:g}",
                    class_id=class_id,
                    excess=excess,
                )
            )
        return found

    def to_report(self) -> Dict[str, Any]:
        books = self.conservation()
        report: Dict[str, Any] = {
            "seed": self.seed,
            "policy": self.policy,
            "duration": self.duration,
            "conservation": books,
            "violations": [v.to_dict() for v in self.violations()],
            "faults_applied": [
                {"time": t, "kind": f.kind, "detail": d}
                for t, f, d in self.injector.applied
            ],
            "faults_rejected": [
                {"time": t, "kind": f.kind, "detail": d}
                for t, f, d in self.injector.rejected
            ],
            "overload_events": list(self.scheduler.overload_events),
            "schedule_digest": self.schedule_digest(),
            "bytes_sent": self.link.bytes_sent,
            "utilization": self.link.utilization(self.duration),
        }
        if _TELEM.enabled:
            # Chaos findings land in the flight recorder (violation /
            # overload / reconfig events); surface the telemetry view in
            # the same report so CI artifacts carry both.
            report["telemetry"] = {
                "counters": {
                    name: counter.value
                    for name, counter in sorted(_TELEM.counters.items())
                },
                "flight_recorder": _TELEM.recorder.to_dicts(256),
                "events_dropped": _TELEM.recorder.dropped,
            }
        return report


@dataclass
class ChaosScenario:
    """A fully wired chaos run that has not been executed yet.

    :func:`prepare_chaos` builds one; callers either :meth:`run` it to
    completion (what :func:`run_chaos` does) or step ``loop`` themselves
    -- ``repro top`` advances the clock frame by frame -- and then call
    :meth:`finish` for the :class:`ChaosResult`.
    """

    seed: int
    policy: str
    duration: float
    loop: EventLoop
    scheduler: HFSC
    link: Link
    gates: Dict[Any, ArrivalFaultGate]
    injector: ChaosInjector
    watchdog: Watchdog
    arrivals: List[Tuple[float, Any, float]]
    served: List[Packet]
    guarantees: Dict[Any, ServiceCurve]
    slack: float

    def run(self) -> None:
        self.loop.run(until=self.duration)

    def finish(self) -> ChaosResult:
        """Stop the periodic machinery and package the result."""
        self.watchdog.stop()
        self.injector.cancel()
        return ChaosResult(
            seed=self.seed,
            policy=self.policy,
            duration=self.duration,
            scheduler=self.scheduler,
            link=self.link,
            gates=self.gates,
            injector=self.injector,
            watchdog=self.watchdog,
            arrivals=self.arrivals,
            served=self.served,
            guarantees=self.guarantees,
            slack=self.slack,
        )


def prepare_chaos(
    seed: int,
    duration: float = 2.0,
    policy: str = "raise",
    link_rate: float = 400_000.0,
    faults: bool = True,
    overload_episode: bool = True,
    arrival_faults: bool = True,
    watchdog_period: float = 0.5,
    auto_rebuild: bool = False,
) -> ChaosScenario:
    """Wire up the canned chaos scenario without running it.

    Same parameters and topology as :func:`run_chaos` (see there for the
    full story); returned unexecuted so observers -- the ``repro top``
    live view, samplers -- can attach to ``loop`` before time advances.
    """
    from repro.core.hfsc import HFSC  # deferred: core imports the sim package

    loop = EventLoop()
    sched = HFSC(link_rate, overload_policy=policy)
    sched.add_class("A", ls_sc=ServiceCurve.linear(0.60 * link_rate))
    sched.add_class("B", ls_sc=ServiceCurve.linear(0.40 * link_rate))
    sched.add_class("rt1", "A", sc=ServiceCurve.linear(0.25 * link_rate))
    sched.add_class("ls1", "A", ls_sc=ServiceCurve.linear(0.35 * link_rate))
    sched.add_class("rt2", "B", sc=ServiceCurve.linear(0.15 * link_rate))
    sched.add_class(
        "ls2",
        "B",
        ls_sc=ServiceCurve.linear(0.25 * link_rate),
        ul_sc=ServiceCurve.linear(0.60 * link_rate),
    )
    link = Link(loop, sched)

    arrivals: List[Tuple[float, Any, float]] = []
    served: List[Packet] = []
    link.add_listener(lambda p, t: served.append(p))

    class _Recorder:
        """Stamps the arrival record at actual enqueue time (post-gate)."""

        def __init__(self, target):
            self.target = target

        def offer(self, packet: Packet) -> None:
            self.target.offer(packet)
            # Record only arrivals that were actually admitted: an
            # OverloadError propagates to the gate before this line.
            arrivals.append((loop.now, packet.class_id, packet.size))

    recorder = _Recorder(link)
    packet_size = 1000.0
    gates: Dict[Any, ArrivalFaultGate] = {}
    for class_id in ("rt1", "ls1", "rt2", "ls2"):
        impaired = arrival_faults and class_id != "rt1"
        gates[class_id] = ArrivalFaultGate(
            loop,
            recorder,
            loss=0.02 if impaired else 0.0,
            jitter=0.002 if impaired else 0.0,
            rng=make_rng(seed, "gate", class_id) if impaired else None,
        )

    # Protected rt class at ~90% of its guarantee; the rest oversubscribe
    # their link-sharing service so the hierarchy is genuinely contended.
    CBRSource(loop, gates["rt1"], "rt1", 0.9 * 0.25 * link_rate, packet_size)
    PoissonSource(
        loop, gates["ls1"], "ls1", 0.5 * link_rate, packet_size, make_rng(seed, "src", "ls1")
    )
    CBRSource(loop, gates["rt2"], "rt2", 0.9 * 0.15 * link_rate, packet_size)
    PoissonSource(
        loop, gates["ls2"], "ls2", 0.4 * link_rate, packet_size, make_rng(seed, "src", "ls2")
    )

    injector = ChaosInjector(loop, link, sched)
    outage_duration = 0.02 * duration
    if faults:
        schedule = FaultSchedule.random(
            seed,
            duration,
            link_rate,
            outage_duration=outage_duration,
            churn_parent="B",
            churn_rate=0.05 * link_rate,
        )
        # A live curve update on an unprotected leaf (ls2 sheds half its
        # share, then gets it back).
        schedule.update_class(
            0.3 * duration, "ls2", ls_sc=ServiceCurve.linear(0.125 * link_rate)
        )
        schedule.update_class(
            0.6 * duration, "ls2", ls_sc=ServiceCurve.linear(0.25 * link_rate)
        )
        if overload_episode:
            # An rt hog that blows the admission budget; how the run
            # degrades is exactly what overload_policy decides.
            schedule.add_class(
                0.45 * duration, "hog", "B", sc=ServiceCurve.linear(0.70 * link_rate)
            )
            schedule.remove_class(0.55 * duration, "hog", force=True)
        injector.arm(schedule)
        if overload_episode:
            # A transparent gate (no impairment) still absorbs
            # OverloadError, so under the "raise" policy the hog's own
            # arrivals are shed as recorded rejections, not crashes.
            gates["hog"] = ArrivalFaultGate(loop, recorder)
            CBRSource(
                loop,
                gates["hog"],
                "hog",
                0.3 * link_rate,
                packet_size,
                start=0.46 * duration,
                stop=0.549 * duration,
            )

    # Guarantee audit.  During the overload episode rt1's guarantee is
    # legitimately degraded (that is the policy's job), so eq. (1) is only
    # asserted in scenarios without the hog.  The slack term is the
    # graceful-degradation contract: Theorem 2's packet slack (doubled for
    # arrival-record timing), plus -- when capacity faults run -- the
    # bytes the link physically could not send during outages.  A rate
    # flap never needs slack: the flap floor keeps capacity above the
    # admitted real-time demand, so deadlines stay feasible.
    slack = 2.0 * packet_size
    if faults:
        slack += outage_duration * link_rate
    guarantees: Dict[Any, ServiceCurve] = {}
    if not (faults and overload_episode):
        guarantees["rt1"] = ServiceCurve.linear(0.9 * 0.25 * link_rate)
    watchdog = Watchdog(
        loop,
        sched,
        watchdog_period,
        arrivals=arrivals,
        served=served,
        guarantees=guarantees,
        slack=slack,
        auto_rebuild=auto_rebuild,
        until=duration,
    )

    return ChaosScenario(
        seed=seed,
        policy=policy,
        duration=duration,
        loop=loop,
        scheduler=sched,
        link=link,
        gates=gates,
        injector=injector,
        watchdog=watchdog,
        arrivals=arrivals,
        served=served,
        guarantees=guarantees,
        slack=slack,
    )


def run_chaos(
    seed: int,
    duration: float = 2.0,
    policy: str = "raise",
    link_rate: float = 400_000.0,
    faults: bool = True,
    overload_episode: bool = True,
    arrival_faults: bool = True,
    watchdog_period: float = 0.5,
    auto_rebuild: bool = False,
) -> ChaosResult:
    """One seeded chaos scenario against a two-agency H-FSC hierarchy.

    Topology (fractions of ``link_rate``): agencies A (ls 60%) and B
    (ls 40%); leaves A/rt1 (rt+ls 25%, the *protected* class -- its
    arrival gate is never impaired), A/ls1 (ls 35%), B/rt2 (rt+ls 15%),
    B/ls2 (ls 25%, upper-limited at 60%).  Total rt demand is 40% of
    nominal, below the 50% flap floor, so rt guarantees stay feasible
    through every rate fault and eq. (1) must hold for rt1 to Theorem-2
    slack in every policy -- except during the optional *overload
    episode*, which grafts an inadmissible rt hog under B mid-run and
    later force-removes it, exercising the configured ``policy``.

    With ``faults=False`` (and the other toggles off) the scenario runs
    the same sources on the same seeds with zero fault machinery in the
    way; its :meth:`ChaosResult.schedule_digest` must match the faultless
    baseline byte for byte.

    Offered load exceeds capacity, so the run ends with a backlog; the
    hog source stops before its class is removed so remove_class sees a
    quiesced arrival stream (its queue may still hold packets -- that
    is what force-draining is for).
    """
    scenario = prepare_chaos(
        seed,
        duration=duration,
        policy=policy,
        link_rate=link_rate,
        faults=faults,
        overload_episode=overload_episode,
        arrival_faults=arrival_faults,
        watchdog_period=watchdog_period,
        auto_rebuild=auto_rebuild,
    )
    scenario.run()
    return scenario.finish()
