"""Property library: what the verifier tries to break, and how to re-check.

Each property binds three faces of the same claim together so they can
never drift apart:

* a **model-side violation measure** over a fluid trace -- written once
  against the ops layer, so it both evaluates concrete traces (native
  search) and emits the z3 objective/assertion (SMT search);
* the **adversary's feasible set** -- arrival envelopes and any
  property-specific side conditions (e.g. "the victim stays
  backlogged"), again in both concrete and symbolic form;
* a **replay check** that re-measures the violation on the *real*
  packetized scheduler's output using the shared predicates of
  :mod:`repro.analysis.predicates`, with an explicit tolerance
  accounting for Theorem-2 packetization slack and the model's dt
  granularity.

Properties:

``eq1_admission_invariant``
    The paper's eq. (1): an admissible real-time curve set is never
    violated.  Expected UNSAT (no violation) -- a witness would mean
    either the admission predicate or the scheduling rules are wrong.
``theorem2_delay_bound``
    Theorem 2: a token-bucket-constrained session guaranteed curve S
    never waits longer than the horizontal deviation between envelope
    and curve (plus one max packet after packetization).  Expected
    UNSAT.
``linkshare_rt_gap``
    The Section III-C impossibility: real-time guarantees force the
    scheduler away from ideal link sharing.  Expected SAT -- the solver
    *constructs* the adversarial burst pattern and reports the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.delay import service_curve_delay_bound
from repro.analysis.predicates import (
    eq1_shortfall,
    linkshare_gap,
    max_packet_delay,
)
from repro.core.errors import ConfigurationError
from repro.verify.model import FluidState
from repro.verify.ops import BIG, ConcreteOps
from repro.verify.scenario import VerifyScenario

#: Float-noise tolerance for model-side comparisons (bytes / seconds).
EPS = 1e-6

Arrival = Tuple[float, Any, float]


def envelope_ok(scn: VerifyScenario, state: FluidState) -> bool:
    """Concrete check: the newest arrivals respect every leaf envelope."""
    t = state.t
    if t == 0:
        return True
    when = (t - 1) * scn.dt
    for i, leaf in enumerate(scn.leaves):
        if leaf.envelope is None:
            continue
        if state.cum_arrivals[t][i] > scn.envelope_value(i, when) + EPS:
            return False
    return True


def envelope_constraints(
    scn: VerifyScenario, state: FluidState, ops
) -> List[Any]:
    """Symbolic form of :func:`envelope_ok` over every boundary."""
    constraints: List[Any] = []
    for i, leaf in enumerate(scn.leaves):
        if leaf.envelope is None:
            continue
        for t in range(1, state.t + 1):
            bound = scn.envelope_value(i, (t - 1) * scn.dt)
            if bound < BIG:
                constraints.append(
                    state.cum_arrivals[t][i] <= ops.const(bound)
                )
    return constraints


@dataclass
class ReplayCheck:
    """Outcome of re-measuring a counterexample on the real scheduler."""

    reproduced: bool
    measured: float
    predicted: float
    tolerance: float
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "reproduced": self.reproduced,
            "measured": self.measured,
            "predicted": self.predicted,
            "tolerance": self.tolerance,
            "detail": self.detail,
        }


class Property:
    """Base class: subclasses fill in the hooks the engines call."""

    name: str = ""
    expected: str = "none"          # "none" (UNSAT) or "violation" (SAT)
    default_scenario: str = ""
    description: str = ""

    def __init__(self, scn: VerifyScenario):
        self.scn = scn

    # -- native (concrete) hooks -------------------------------------------

    def prefix_ok(self, state: FluidState) -> bool:
        """May this partial trace still satisfy the side conditions?"""
        return envelope_ok(self.scn, state)

    def value(self, state: FluidState) -> float:
        """Violation measure of a complete trace (> threshold = violated)."""
        raise NotImplementedError

    def partial_value(self, state: FluidState) -> float:
        """Beam-search score for a partial trace (default: final measure)."""
        return self.value(state)

    @property
    def threshold(self) -> float:
        return 0.0

    # -- symbolic hooks -----------------------------------------------------

    def constraints(self, state: FluidState, ops) -> List[Any]:
        return envelope_constraints(self.scn, state, ops)

    def violation_expr(self, state: FluidState, ops) -> Any:
        raise NotImplementedError

    # -- reporting / replay -------------------------------------------------

    def info(self) -> Dict[str, Any]:
        return {}

    def replay_tolerance(self) -> float:
        raise NotImplementedError

    def replay_check(
        self,
        predicted: float,
        arrivals: Sequence[Arrival],
        served: Sequence[Any],
        context: Optional[Dict[str, Any]] = None,
    ) -> ReplayCheck:
        raise NotImplementedError


class Eq1AdmissionInvariant(Property):
    """Eq. (1) holds for every admissible leaf set (expected UNSAT)."""

    name = "eq1_admission_invariant"
    expected = "none"
    default_scenario = "duo_rt"
    description = ("search for an arrival pattern under which an admitted "
                   "real-time curve set misses eq. (1)")

    def __init__(self, scn: VerifyScenario):
        super().__init__(scn)
        if not scn.rt_leaves():
            raise ConfigurationError(
                f"scenario {scn.name!r} has no real-time leaves to audit"
            )
        if not scn.admissible():
            raise ConfigurationError(
                f"scenario {scn.name!r} is not admissible; eq. (1) only "
                "claims guarantees for admitted sets"
            )

    def value(self, state: FluidState) -> float:
        worst = -BIG
        for t in range(1, state.t + 1):
            for i in self.scn.rt_leaves():
                worst = max(
                    worst,
                    state.requirement[t][i] - state.service[t][i],
                )
        return worst

    def violation_expr(self, state: FluidState, ops) -> Any:
        terms = [
            state.requirement[t][i] - state.service[t][i]
            for t in range(1, state.t + 1)
            for i in self.scn.rt_leaves()
        ]
        return ops.max_of(terms)

    @property
    def threshold(self) -> float:
        return 1e-3  # bytes of shortfall beyond float noise

    def info(self) -> Dict[str, Any]:
        return {"admissible": self.scn.admissible()}

    def replay_tolerance(self) -> float:
        # Theorem 2: one max packet of slack, doubled for arrival-record
        # timing (matching the chaos watchdog's convention).
        return 2.0 * self.scn.quantum

    def replay_check(self, predicted, arrivals, served,
                     context=None) -> ReplayCheck:
        worst = 0.0
        worst_leaf = None
        for i in self.scn.rt_leaves():
            leaf = self.scn.leaves[i]
            shortfall = eq1_shortfall(arrivals, served, leaf.name, leaf.rt)
            if shortfall >= worst:
                worst, worst_leaf = shortfall, leaf.name
        tolerance = self.replay_tolerance()
        # The model predicted `predicted` bytes of worst shortfall; the
        # packetized scheduler may add at most the Theorem-2 slack.
        reproduced = worst <= max(predicted, 0.0) + tolerance
        return ReplayCheck(
            reproduced=reproduced,
            measured=worst,
            predicted=predicted,
            tolerance=tolerance,
            detail=f"worst eq.(1) shortfall {worst:g} bytes at leaf "
                   f"{worst_leaf!r} (model predicted {predicted:g})",
        )


class Theorem2DelayBound(Property):
    """Delay of an envelope-constrained leaf stays under the Theorem-2
    bound (expected UNSAT; certification granularity is one step)."""

    name = "theorem2_delay_bound"
    expected = "none"
    default_scenario = "shared"
    description = ("search for a trace pushing a token-bucket session past "
                   "its service-curve delay bound")

    def __init__(self, scn: VerifyScenario, leaf: Optional[str] = None):
        super().__init__(scn)
        candidates = [
            l.name for l in scn.leaves
            if l.rt is not None and l.envelope is not None
        ]
        if leaf is None:
            if not candidates:
                raise ConfigurationError(
                    f"scenario {scn.name!r} has no leaf with both a "
                    "guarantee and an arrival envelope"
                )
            leaf = candidates[0]
        self.leaf = leaf
        self.index = scn.leaf_index(leaf)
        spec = scn.leaves[self.index]
        if spec.rt is None or spec.envelope is None:
            raise ConfigurationError(
                f"leaf {leaf!r} needs both a guarantee and an envelope"
            )
        sigma, rho, peak = spec.envelope
        self.bound = service_curve_delay_bound(spec.rt, sigma, rho, peak)

    def value(self, state: FluidState) -> float:
        i = self.index
        worst = -BIG
        for u in range(state.t):
            batch = state.cum_arrivals[u + 1][i]
            if batch <= state.cum_arrivals[u][i] + EPS:
                continue  # nothing arrived at boundary u
            for v in range(u + 1, state.t + 1):
                if batch > state.service[v][i] + EPS:
                    worst = max(worst, (v - u) * self.scn.dt - self.bound)
        return worst

    def violation_expr(self, state: FluidState, ops) -> Any:
        i = self.index
        terms = []
        for u in range(state.t):
            batch = state.cum_arrivals[u + 1][i]
            for v in range(u + 1, state.t + 1):
                terms.append(ops.ite(
                    batch - state.service[v][i] > ops.const(EPS),
                    ops.const((v - u) * self.scn.dt - self.bound),
                    ops.const(-BIG),
                ))
        return ops.max_of(terms)

    def info(self) -> Dict[str, Any]:
        return {"leaf": self.leaf, "fluid_delay_bound": self.bound,
                "dt_granularity": self.scn.dt}

    def replay_tolerance(self) -> float:
        # One step of model granularity plus the Theorem-2 packet time
        # and one packet of transmission quantization.
        return self.scn.dt + 2.0 * self.scn.quantum / self.scn.capacity

    def replay_check(self, predicted, arrivals, served,
                     context=None) -> ReplayCheck:
        measured = max_packet_delay(served, self.leaf)
        tolerance = self.replay_tolerance()
        packet_bound = self.bound + self.scn.quantum / self.scn.capacity
        predicted_delay = self.bound + max(predicted, 0.0)
        reproduced = (
            measured <= packet_bound + tolerance
            and measured <= predicted_delay + tolerance
        )
        return ReplayCheck(
            reproduced=reproduced,
            measured=measured,
            predicted=predicted_delay,
            tolerance=tolerance,
            detail=f"worst packet delay {measured:g}s vs Theorem-2 bound "
                   f"{packet_bound:g}s (model predicted {predicted_delay:g}s)",
        )


class LinkshareRtGap(Property):
    """Maximize the Section III-C fair-share shortfall (expected SAT)."""

    name = "linkshare_rt_gap"
    expected = "violation"
    default_scenario = "pair"
    description = ("construct a burst pattern under which real-time "
                   "guarantees push a backlogged leaf below its fair share")

    def __init__(self, scn: VerifyScenario, victim: Optional[str] = None):
        super().__init__(scn)
        candidates = [l.name for l in scn.leaves if l.rt is None]
        if victim is None:
            if not candidates:
                raise ConfigurationError(
                    f"scenario {scn.name!r} has no link-sharing-only leaf "
                    "to starve"
                )
            victim = candidates[0]
        self.victim = victim
        self.index = scn.leaf_index(victim)
        self.fair_rate = scn.fair_rate(victim)

    @property
    def threshold(self) -> float:
        # A gap under two packets is packetization noise, not the
        # impossibility result; demand a burst-scale shortfall.
        return 2.0 * self.scn.quantum

    def prefix_ok(self, state: FluidState) -> bool:
        if not envelope_ok(self.scn, state):
            return False
        # The fair-share baseline assumes the victim never goes idle.
        t = state.t
        if t == 0:
            return True
        return state.backlog(t, self.index) > EPS

    def value(self, state: FluidState) -> float:
        window = state.t * self.scn.dt
        return self.fair_rate * window - state.service[state.t][self.index]

    def partial_value(self, state: FluidState) -> float:
        return self.value(state)

    def constraints(self, state: FluidState, ops) -> List[Any]:
        out = envelope_constraints(self.scn, state, ops)
        for t in range(1, state.t + 1):
            out.append(
                state.cum_arrivals[t][self.index]
                - state.service[t][self.index] > ops.const(0.0)
            )
        return out

    def violation_expr(self, state: FluidState, ops) -> Any:
        window = state.t * self.scn.dt
        return (ops.const(self.fair_rate * window)
                - state.service[state.t][self.index])

    def info(self) -> Dict[str, Any]:
        return {"victim": self.victim, "fair_rate": self.fair_rate}

    def replay_tolerance(self) -> float:
        # Two packets of quantization plus one step of fluid-vs-packet
        # phase difference at the window edge.
        return 2.0 * self.scn.quantum + self.scn.capacity * self.scn.dt

    def replay_check(self, predicted, arrivals, served,
                     context=None) -> ReplayCheck:
        window = (context or {}).get("window")
        if window is None:
            window = max((a[0] for a in arrivals), default=0.0) + self.scn.dt
        measured = linkshare_gap(
            served, self.victim, self.fair_rate, 0.0, window
        )
        tolerance = self.replay_tolerance()
        reproduced = measured >= predicted - tolerance
        return ReplayCheck(
            reproduced=reproduced,
            measured=measured,
            predicted=predicted,
            tolerance=tolerance,
            detail=f"victim {self.victim!r} fell {measured:g} bytes below "
                   f"its fair share over {window:g}s "
                   f"(model predicted {predicted:g})",
        )


PROPERTIES: Dict[str, type] = {
    cls.name: cls
    for cls in (Eq1AdmissionInvariant, Theorem2DelayBound, LinkshareRtGap)
}


def make_property(name: str, scn: VerifyScenario) -> Property:
    try:
        cls = PROPERTIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown property {name!r} (expected one of {sorted(PROPERTIES)})"
        ) from None
    return cls(scn)
