"""Model-vs-implementation differential oracle.

A counterexample found in the fluid model is only interesting if the
*real* scheduler exhibits it too.  The bridge rebuilds the packetized
H-FSC hierarchy from the document's embedded scenario, replays the
decoded arrival trace through :func:`repro.sim.drive.drive`, and
re-measures the violation with the shared predicates of
:mod:`repro.analysis.predicates` -- the same code the chaos watchdog
audits with.  The verdict compares model prediction and measured value
under the property's stated tolerance (Theorem-2 packetization slack
plus the model's dt granularity).

Every replay also reports a sha256 digest over the departure schedule
in the exact format of ``ChaosResult.schedule_digest``, which is what
the compiled-vs-pure differential tests pin byte for byte.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Tuple

from repro.core.errors import ConfigurationError
from repro.sim.drive import drive
from repro.verify.decoder import SCHEMA
from repro.verify.properties import PROPERTIES, Property
from repro.verify.scenario import VerifyScenario, scenario_from_dict


def _bind_property(doc: Dict[str, Any], scn: VerifyScenario) -> Property:
    name = doc.get("property")
    try:
        cls = PROPERTIES[name]
    except KeyError:
        raise ConfigurationError(
            f"counterexample names unknown property {name!r}"
        ) from None
    target = doc.get("target")
    return cls(scn) if target is None else cls(scn, target)


def schedule_digest(served) -> str:
    """sha256 over departure records, format-identical to ChaosResult."""
    h = hashlib.sha256()
    for p in served:
        h.update(repr((p.class_id, p.size, p.departed)).encode())
    return h.hexdigest()


def replay_counterexample(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Replay one counterexample document against the real scheduler."""
    if doc.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"expected a {SCHEMA} document, got schema={doc.get('schema')!r}"
        )
    scn = scenario_from_dict(doc["scenario"])
    prop = _bind_property(doc, scn)
    arrivals: List[Tuple[float, Any, float]] = [
        (float(t), cls, float(size)) for t, cls, size in doc["arrivals"]
    ]
    replay = doc.get("replay", {})
    until = float(replay.get("until", 0.0))
    if until <= 0.0:
        total = sum(size for _, _, size in arrivals)
        until = (doc.get("horizon", 1) * scn.dt
                 + total / scn.capacity + 10 * scn.dt)
    sched = scn.build_hfsc()
    served = drive(sched, arrivals, until)
    context = {"window": replay.get("window")}
    check = prop.replay_check(
        float(doc.get("predicted", 0.0)), arrivals, served, context
    )
    return {
        "schema": "repro-verify-replay/v1",
        "property": prop.name,
        "scenario": scn.name,
        "status": doc.get("status"),
        "reproduced": check.reproduced,
        "measured": check.measured,
        "predicted": check.predicted,
        "tolerance": check.tolerance,
        "detail": check.detail,
        "packets_in": len(arrivals),
        "packets_out": len(served),
        "schedule_digest": schedule_digest(served),
    }
