"""z3 backend: the same fluid model, solved instead of searched.

Arrival amounts become Real variables; :func:`repro.verify.model.run_fluid`
executed with :class:`~repro.verify.ops.Z3Ops` unrolls the step rules
into a (linear, branch-via-If) term graph; the property contributes side
constraints and a violation expression.  For properties expected to
hold, the solver is asked for *any* violating trace -- UNSAT is the
proof.  For properties expected to fail (the Section III-C gap), an
Optimize instance maximizes the violation measure and the model yields
the worst adversarial trace.

Every SAT witness is immediately **confirmed** by re-running the
extracted arrivals through the identical model code with
:class:`~repro.verify.ops.ConcreteOps`.  A mismatch between the solver's
claim and the concrete re-evaluation would indicate an encoding bug and
is reported as ``status="unknown"`` rather than trusted.

z3 is an optional dependency (``pip install repro[verify]``); import
errors surface as :class:`VerifierUnavailable` so callers can fall back
to the native search backend.
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Any, List, Optional

from repro.verify.model import run_fluid
from repro.verify.native import SearchResult
from repro.verify.ops import Z3Ops
from repro.verify.properties import Property
from repro.verify.scenario import VerifyScenario


class VerifierUnavailable(RuntimeError):
    """Raised when the z3 backend is requested but z3 is not installed."""


Z3_HINT = ("z3-solver is not installed; install the optional extra with "
           "`pip install repro[verify]` or use `--solver native`")


def z3_available() -> bool:
    try:
        import z3  # noqa: F401
    except ImportError:
        return False
    return True


def _to_float(model, var) -> float:
    val = model.eval(var, model_completion=True)
    if hasattr(val, "as_fraction"):
        return float(Fraction(val.as_fraction()))
    return float(val.as_decimal(20).rstrip("?"))


def smt_search(
    scn: VerifyScenario,
    prop: Property,
    horizon: int,
    timeout: Optional[float] = None,
) -> SearchResult:
    """Solve for the property over ``horizon`` steps; confirm any witness."""
    try:
        import z3
    except ImportError as exc:
        raise VerifierUnavailable(Z3_HINT) from exc

    start = time.monotonic()
    ops = Z3Ops()
    n = len(scn.leaves)
    grid = [
        [z3.Real(f"a_{t}_{i}") for i in range(n)]
        for t in range(horizon)
    ]
    bounds = [
        c
        for row in grid
        for a in row
        for c in (a >= 0, a <= scn.peak_step)
    ]
    tables = [scn.curve_table(i, horizon) for i in range(n)]
    state = run_fluid(scn, grid, ops, tables)
    viol = prop.violation_expr(state, ops)
    side = prop.constraints(state, ops)

    maximize = prop.expected == "violation"
    solver = z3.Optimize() if maximize else z3.Solver()
    if timeout is not None:
        solver.set("timeout", int(timeout * 1000))
    solver.add(*bounds)
    solver.add(*side)
    solver.add(viol > prop.threshold)
    if maximize:
        solver.maximize(viol)

    verdict = solver.check()
    elapsed = time.monotonic() - start

    def result(status, proof, value, arrivals=None, note=None):
        detail = dict(prop.info())
        if note:
            detail["note"] = note
        return SearchResult(
            property=prop.name, scenario=scn.name, backend="z3",
            status=status, proof=proof, value=value,
            threshold=prop.threshold, arrivals=arrivals, horizon=horizon,
            explored=0, elapsed=elapsed, detail=detail,
        )

    if verdict == z3.unsat:
        return result("no-violation", "unsat", float("-inf"))
    if verdict != z3.sat:
        return result("unknown", "search", float("-inf"),
                      note=f"solver returned {verdict}")

    model = solver.model()
    arrivals: List[List[float]] = [
        [_to_float(model, grid[t][i]) for i in range(n)]
        for t in range(horizon)
    ]
    # Confirmation pass: replay the witness through the concrete executor.
    confirmed = run_fluid(scn, arrivals, tables=tables)
    value = float(prop.value(confirmed))
    if value > prop.threshold:
        return result("violation", "search", value, arrivals=arrivals)
    return result(
        "unknown", "search", value, arrivals=arrivals,
        note="solver witness failed concrete confirmation "
             "(possible encoding drift)",
    )
