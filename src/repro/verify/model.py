"""Bounded-horizon fluid model of H-FSC/SCED, written once for two backends.

Discrete time: boundaries ``tau_t = t * dt`` for ``t = 0..K``.  Arrivals
land at boundaries (one amount per leaf per step); during each step the
link serves ``capacity * dt`` bytes of fluid.  The step rules mirror the
scheduler's two criteria:

* **Real-time (SCED, eqs. 2-4).**  Each leaf with a guaranteed curve
  keeps deadline anchors: whenever a backlogged period starts at
  boundary ``t1`` with cumulative service ``w``, the requirement curve
  gains the branch ``w + S((t - t1) * dt)`` -- exactly the
  ``RuntimeCurve.min_with`` update of the packetized scheduler.  The
  requirement by any boundary is the minimum over anchor branches,
  capped by cumulative arrivals (a session cannot owe service for bytes
  that never arrived; this is also how backlogged periods end).  Each
  step first serves every leaf's *due* -- requirement minus service
  received -- before anything else.
* **Link-sharing (Section III).**  Leftover capacity is distributed
  through the <=3-level weight tree in a fixed number of proportional
  rounds: each round splits a node's pool among its children by static
  weight fractions, capped by remaining backlog, and ends by feeding
  the undistributed remainder into the next round.  With
  ``rounds >= leaves + 1`` the allocation is work-conserving in every
  scenario this package ships (asserted by the tests); the rule is
  deliberately branch-free so the identical code emits linear z3 terms.

Soundness caveats of the discretization are documented in
docs/VERIFICATION.md: the model checks step boundaries only, arrivals
are per-step aggregates, and a fixed horizon bounds the search.  Every
claim is therefore "no violation *within the discretized space*"; the
replay bridge closes the loop against the real scheduler.

The entire step function is written against :mod:`repro.verify.ops`:
called with :class:`~repro.verify.ops.ConcreteOps` it executes numbers
(the native search backend), with :class:`~repro.verify.ops.Z3Ops` it
emits the SMT encoding.  One set of rules, two engines, no drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.verify.ops import BIG, ConcreteOps
from repro.verify.scenario import VerifyScenario


@dataclass
class FluidState:
    """Immutable-by-convention snapshot after ``t`` steps.

    History rows are tuples indexed ``[boundary][leaf]``; DFS search
    branches clone cheaply because rows are shared structurally.
    """

    t: int
    arrived: Tuple[Tuple[Any, ...], ...]   # a[u][i], u < t
    cum_arrivals: Tuple[Tuple[Any, ...], ...]   # A[u][i] for u = 0..t
    service: Tuple[Tuple[Any, ...], ...]        # W[u][i] for u = 0..t
    requirement: Tuple[Tuple[Any, ...], ...]    # req[u][i] (0 for u=0 / no curve)
    anchors: Tuple[Tuple[Tuple[int, Any, Any], ...], ...]  # per leaf: (t1, w, flag)

    def backlog(self, boundary: int, leaf: int) -> Any:
        return (self.cum_arrivals[boundary][leaf]
                - self.service[boundary][leaf])


def initial_state(scn: VerifyScenario, ops=ConcreteOps) -> FluidState:
    zero = ops.const(0.0)
    n = len(scn.leaves)
    row = tuple(zero for _ in range(n))
    return FluidState(
        t=0,
        arrived=(),
        cum_arrivals=(row,),
        service=(row,),
        requirement=(row,),
        anchors=tuple(() for _ in range(n)),
    )


def _distribute(
    scn: VerifyScenario,
    pool: Any,
    remaining: List[Any],
    grants: List[Any],
    ops,
) -> Any:
    """One proportional round down the weight tree; returns the leftover.

    Fractions are constants (static weights), so with symbolic pools the
    emitted terms stay linear.
    """
    zero = ops.const(0.0)
    groups = scn.tree()
    total_top = sum(weight for _, weight, _ in groups)
    leftover = zero
    for _, weight, members in groups:
        share = pool * (weight / total_top)
        if len(members) == 1:
            i = members[0]
            give = ops.max2(zero, ops.min2(share, remaining[i]))
            grants[i] = grants[i] + give
            remaining[i] = remaining[i] - give
            leftover = leftover + (share - give)
        else:
            sibling_total = sum(scn.leaves[j].weight for j in members)
            for i in members:
                sub = share * (scn.leaves[i].weight / sibling_total)
                give = ops.max2(zero, ops.min2(sub, remaining[i]))
                grants[i] = grants[i] + give
                remaining[i] = remaining[i] - give
                leftover = leftover + (sub - give)
    return leftover


def fluid_step(
    scn: VerifyScenario,
    state: FluidState,
    arrivals: Sequence[Any],
    tables: Sequence[Sequence[float]],
    ops=ConcreteOps,
) -> FluidState:
    """Advance one step: arrivals at boundary ``t``, service to ``t+1``.

    ``tables[i][k]`` must hold ``S_i(k * dt)`` for ``k`` up to the
    horizon (see :meth:`VerifyScenario.curve_table`); leaves without a
    guarantee use all-zero tables and never owe dues.
    """
    n = len(scn.leaves)
    if len(arrivals) != n:
        raise ConfigurationError("one arrival amount per leaf required")
    t = state.t
    zero = ops.const(0.0)
    cap = ops.const(scn.cap_per_step)

    prev_a = state.cum_arrivals[t]
    prev_w = state.service[t]
    cum = tuple(prev_a[i] + arrivals[i] for i in range(n))

    # New backlogged-period anchors (eq. 3's min_with update).
    anchors: List[Tuple[Tuple[int, Any, Any], ...]] = []
    for i in range(n):
        rows = state.anchors[i]
        if scn.leaves[i].rt is None:
            anchors.append(rows)
            continue
        was_empty = prev_a[i] - prev_w[i] <= 0
        if ops.symbolic:
            flag = ops.and_(was_empty, arrivals[i] > 0)
            rows = rows + ((t, prev_w[i], flag),)
        elif was_empty and arrivals[i] > 0:
            rows = rows + ((t, prev_w[i], True),)
        anchors.append(rows)

    # Requirement by boundary t+1, then dues.
    requirement: List[Any] = []
    dues: List[Any] = []
    for i in range(n):
        if scn.leaves[i].rt is None:
            requirement.append(zero)
            dues.append(zero)
            continue
        branches = [
            ops.ite(flag, w + ops.const(tables[i][t + 1 - t1]), ops.const(BIG))
            for t1, w, flag in anchors[i]
        ]
        req = ops.min2(ops.min_of(branches), cum[i])
        requirement.append(req)
        dues.append(ops.max2(zero, req - prev_w[i]))

    # Real-time pass: serve dues, waterfall-capped by link capacity.  An
    # admissible curve set never hits the cap (that is the eq. 1 theorem
    # the verifier checks); if it does, later-indexed leaves shorten and
    # the shortfall surfaces as the property violation.
    rt_served: List[Any] = []
    used = zero
    for i in range(n):
        give = ops.max2(zero, ops.min2(dues[i], cap - used))
        used = used + give
        rt_served.append(give)

    # Link-sharing pass: proportional rounds over the weight tree.
    pool = cap - used
    remaining = [cum[i] - prev_w[i] - rt_served[i] for i in range(n)]
    grants: List[Any] = [zero for _ in range(n)]
    for _ in range(scn.rounds):
        pool = _distribute(scn, pool, remaining, grants, ops)
    # Waterfall tail: the rounds leave a geometric residue whenever a
    # saturated leaf's share keeps re-pooling; hand it to still-backlogged
    # leaves in index order so the step is exactly work-conserving.  When
    # two or more leaves stay backlogged the residue is zero (their
    # shares never return to the pool), so the order bias only acts on
    # the vanishing tail -- see docs/VERIFICATION.md.
    for i in range(n):
        give = ops.max2(zero, ops.min2(pool, remaining[i]))
        grants[i] = grants[i] + give
        remaining[i] = remaining[i] - give
        pool = pool - give

    service = tuple(
        prev_w[i] + rt_served[i] + grants[i] for i in range(n)
    )

    return FluidState(
        t=t + 1,
        arrived=state.arrived + (tuple(arrivals),),
        cum_arrivals=state.cum_arrivals + (cum,),
        service=state.service + (service,),
        requirement=state.requirement + (tuple(requirement),),
        anchors=tuple(anchors),
    )


def run_fluid(
    scn: VerifyScenario,
    arrivals: Sequence[Sequence[Any]],
    ops=ConcreteOps,
    tables: Optional[Sequence[Sequence[float]]] = None,
) -> FluidState:
    """Run a full arrival matrix ``arrivals[t][i]`` through the model."""
    horizon = len(arrivals)
    if tables is None:
        tables = [
            scn.curve_table(i, horizon) for i in range(len(scn.leaves))
        ]
    state = initial_state(scn, ops)
    for row in arrivals:
        state = fluid_step(scn, state, row, tables, ops)
    return state


def conservation_error(scn: VerifyScenario, state: FluidState) -> float:
    """Wasted capacity: served bytes vs what a work-conserving link could.

    Returns the largest over boundaries of
    ``min(capacity * tau, total arrivals by tau) - total service by tau``
    (concrete traces only).  Zero means the proportional rounds drained
    every pool; the tests pin this at zero for the shipped scenarios so
    the "fixed rounds" simplification provably costs nothing there.
    """
    worst = 0.0
    ideal = 0.0
    n = len(scn.leaves)
    for t in range(1, state.t + 1):
        total_arr = sum(state.cum_arrivals[t][i] for i in range(n))
        total_srv = sum(state.service[t][i] for i in range(n))
        # A work-conserving link serves min(capacity, backlog) each step;
        # late arrivals are not retroactively servable.
        ideal = ideal + min(scn.cap_per_step, total_arr - ideal)
        worst = max(worst, ideal - total_srv)
    return worst
