"""Bounded-horizon verification scenarios: small, concrete hierarchies.

A :class:`VerifyScenario` fixes everything about the system under
verification *except the arrivals*: link capacity, step size, a <=3
level / <=6 leaf hierarchy with per-leaf real-time curves, link-sharing
weights, and optional token-bucket arrival envelopes.  The solver (or
the native search) then owns the arrivals -- one non-negative amount
per leaf per step -- and hunts for a pattern that violates a property.

The same scenario object also knows how to build the *real* packetized
:class:`~repro.core.hfsc.HFSC` scheduler with the equivalent hierarchy,
which is how the replay bridge cross-validates counterexamples: the
model predicts, ``drive()`` confirms.

Scenario constants are chosen so one arrival quantum is one packet and
every rate is a round number: witnesses decode into clean packet traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.curves import ServiceCurve, is_admissible
from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class LeafSpec:
    """One leaf class of a verification scenario.

    ``weight`` is the link-sharing weight among its siblings;
    ``rt`` the guaranteed (real-time) service curve, if any;
    ``envelope`` an optional ``(sigma, rho, peak)`` token bucket
    constraining this leaf's arrivals (``peak`` may be ``inf``).
    """

    name: str
    weight: float = 1.0
    rt: Optional[ServiceCurve] = None
    envelope: Optional[Tuple[float, float, float]] = None
    parent: Optional[str] = None  # None = directly under the root


@dataclass(frozen=True)
class VerifyScenario:
    """A fully specified verification instance minus the arrivals."""

    name: str
    description: str
    capacity: float                 # link rate, bytes/second
    dt: float                       # step length, seconds
    quantum: float                  # arrival quantum == packet size, bytes
    peak_step: float                # max bytes one leaf may inject per step
    leaves: Tuple[LeafSpec, ...]
    agencies: Tuple[Tuple[str, float], ...] = ()   # (name, weight)
    default_horizon: int = 5
    rounds: int = 0                 # surplus redistribution rounds (0 = auto)

    def __post_init__(self) -> None:
        if not self.leaves:
            raise ConfigurationError("scenario needs at least one leaf")
        if len(self.leaves) > 6:
            raise ConfigurationError("verification scenarios cap at 6 leaves")
        names = [leaf.name for leaf in self.leaves]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate leaf names")
        agency_names = {name for name, _ in self.agencies}
        for leaf in self.leaves:
            if leaf.parent is not None and leaf.parent not in agency_names:
                raise ConfigurationError(
                    f"leaf {leaf.name!r} references unknown agency {leaf.parent!r}"
                )
        if self.rounds == 0:
            object.__setattr__(self, "rounds", len(self.leaves) + 1)

    # -- derived structure --------------------------------------------------

    @property
    def cap_per_step(self) -> float:
        return self.capacity * self.dt

    def leaf_index(self, name: str) -> int:
        for i, leaf in enumerate(self.leaves):
            if leaf.name == name:
                return i
        raise ConfigurationError(f"unknown leaf {name!r}")

    def rt_leaves(self) -> List[int]:
        return [i for i, leaf in enumerate(self.leaves) if leaf.rt is not None]

    def tree(self) -> List[Tuple[Optional[str], float, List[int]]]:
        """Link-sharing tree as ``(agency, weight, leaf_indices)`` groups.

        Direct root leaves come back as one-leaf groups with
        ``agency=None``; the surplus distributor walks this structure.
        """
        groups: List[Tuple[Optional[str], float, List[int]]] = []
        for name, weight in self.agencies:
            members = [
                i for i, leaf in enumerate(self.leaves) if leaf.parent == name
            ]
            if members:
                groups.append((name, weight, members))
        for i, leaf in enumerate(self.leaves):
            if leaf.parent is None:
                groups.append((None, leaf.weight, [i]))
        return groups

    def fair_fraction(self, name: str) -> float:
        """Leaf's ideal share of the link (product of weights down the tree)."""
        index = self.leaf_index(name)
        leaf = self.leaves[index]
        groups = self.tree()
        total_top = sum(weight for _, weight, _ in groups)
        for agency, weight, members in groups:
            if index in members:
                top = weight / total_top
                if agency is None:
                    return top
                sibling_total = sum(self.leaves[j].weight for j in members)
                return top * leaf.weight / sibling_total
        raise ConfigurationError(f"leaf {name!r} not reachable")  # pragma: no cover

    def fair_rate(self, name: str) -> float:
        return self.capacity * self.fair_fraction(name)

    def curve_table(self, index: int, horizon: int) -> List[float]:
        """``S_i(k * dt)`` for ``k = 0..horizon`` (zeros without a curve)."""
        leaf = self.leaves[index]
        if leaf.rt is None:
            return [0.0] * (horizon + 1)
        return [leaf.rt.value(k * self.dt) for k in range(horizon + 1)]

    def envelope_value(self, index: int, time: float) -> float:
        """Arrival-envelope bound at ``time`` (``inf`` when unconstrained)."""
        leaf = self.leaves[index]
        if leaf.envelope is None:
            return math.inf
        sigma, rho, peak = leaf.envelope
        bucket = sigma + rho * max(0.0, time)
        if peak == math.inf:
            return bucket
        return min(bucket, peak * max(0.0, time))

    def admissible(self) -> bool:
        curves = [leaf.rt for leaf in self.leaves if leaf.rt is not None]
        return is_admissible(curves, self.capacity)

    def arrival_levels(self, count: int = 3) -> List[float]:
        """Quantized arrival grid for the native search (0..peak_step)."""
        if count < 2:
            raise ConfigurationError("need at least 2 arrival levels")
        steps = int(round(self.peak_step / self.quantum))
        picks = sorted({
            int(round(k * steps / (count - 1))) for k in range(count)
        })
        return [p * self.quantum for p in picks]

    # -- real scheduler construction ---------------------------------------

    def build_hfsc(self, **kwargs: Any):
        """The equivalent packetized H-FSC hierarchy for replay."""
        from repro.core.hfsc import HFSC  # deferred: heavy import

        sched = HFSC(self.capacity, **kwargs)
        groups = self.tree()
        total_top = sum(weight for _, weight, _ in groups)
        for agency, weight, members in groups:
            if agency is None:
                continue
            sched.add_class(
                agency,
                ls_sc=ServiceCurve.linear(self.capacity * weight / total_top),
            )
        for leaf in self.leaves:
            curves: Dict[str, ServiceCurve] = {
                "ls_sc": ServiceCurve.linear(self.fair_rate(leaf.name)),
            }
            if leaf.rt is not None:
                curves["rt_sc"] = leaf.rt
            if leaf.parent is None:
                sched.add_class(leaf.name, **curves)
            else:
                sched.add_class(leaf.name, leaf.parent, **curves)
        return sched

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready description (embedded in counterexample files)."""
        return {
            "name": self.name,
            "capacity": self.capacity,
            "dt": self.dt,
            "quantum": self.quantum,
            "peak_step": self.peak_step,
            "agencies": [list(a) for a in self.agencies],
            "leaves": [
                {
                    "name": leaf.name,
                    "weight": leaf.weight,
                    "parent": leaf.parent,
                    "rt": None if leaf.rt is None else
                        [leaf.rt.m1, leaf.rt.d, leaf.rt.m2],
                    "envelope": None if leaf.envelope is None else
                        [v if v != math.inf else None for v in leaf.envelope],
                }
                for leaf in self.leaves
            ],
        }


# -- canned scenarios --------------------------------------------------------

_C = 100_000.0      # link rate (bytes/s)
_DT = 0.01          # 1 ms of service per 1000-byte step at _C
_Q = 500.0          # arrival quantum == packet size
_PEAK = 2000.0      # per-leaf bytes per step the adversary may inject


def _scenarios() -> Dict[str, VerifyScenario]:
    concave = ServiceCurve(80_000.0, 0.025, 20_000.0)   # knee at 2000 bytes
    convex = ServiceCurve(0.0, 0.01, 40_000.0)
    steep = ServiceCurve(100_000.0, 0.03, 10_000.0)     # full link for 30 ms
    bucket = (2000.0, 20_000.0, math.inf)               # sigma, rho, peak
    return {
        scn.name: scn
        for scn in (
            VerifyScenario(
                name="single",
                description="One guaranteed leaf alone on the link "
                            "(Theorem 2, uncontended).",
                capacity=_C, dt=_DT, quantum=_Q, peak_step=_PEAK,
                leaves=(
                    LeafSpec("rt", weight=1.0, rt=concave, envelope=bucket),
                ),
                default_horizon=6,
            ),
            VerifyScenario(
                name="shared",
                description="A guaranteed leaf vs an adversarial bulk leaf "
                            "holding most of the link share (Theorem 2, tight).",
                capacity=_C, dt=_DT, quantum=_Q, peak_step=_PEAK,
                leaves=(
                    LeafSpec("rt", weight=1.0, rt=concave, envelope=bucket),
                    LeafSpec("bulk", weight=3.0),
                ),
                default_horizon=6,
            ),
            VerifyScenario(
                name="duo_rt",
                description="Two guaranteed leaves (concave + convex curves) "
                            "filling the admission budget (eq. 1).",
                capacity=_C, dt=_DT, quantum=_Q, peak_step=_PEAK,
                leaves=(
                    LeafSpec("burst", weight=1.0,
                             rt=ServiceCurve(60_000.0, 0.02, 20_000.0)),
                    LeafSpec("steady", weight=1.0, rt=convex),
                ),
                default_horizon=5,
            ),
            VerifyScenario(
                name="pair",
                description="A steep-curve rt leaf vs an equal-share ls leaf "
                            "(the Section III-C link-sharing/real-time gap).",
                capacity=_C, dt=_DT, quantum=_Q, peak_step=_PEAK,
                leaves=(
                    LeafSpec("rt", weight=1.0, rt=steep),
                    LeafSpec("ls", weight=1.0),
                ),
                # The gap window ends at the rt burst: longer windows let
                # the real scheduler's virtual-time catch-up repay the
                # victim, which is exactly the fairness H-FSC adds.
                default_horizon=4,
            ),
            VerifyScenario(
                name="campus",
                description="Three-level hierarchy: agency A (rt + ls leaves) "
                            "vs agency B (ls leaf), gap measured at B's leaf.",
                capacity=_C, dt=_DT, quantum=_Q, peak_step=_PEAK,
                agencies=(("A", 3.0), ("B", 1.0)),
                leaves=(
                    LeafSpec("a_rt", weight=1.0, rt=steep, parent="A"),
                    LeafSpec("a_ls", weight=1.0, parent="A"),
                    LeafSpec("b_ls", weight=1.0, parent="B"),
                ),
                default_horizon=4,  # window ends at the burst (see "pair")
            ),
        )
    }


SCENARIOS: Dict[str, VerifyScenario] = _scenarios()


def get_scenario(name: str) -> VerifyScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown verification scenario {name!r} "
            f"(expected one of {sorted(SCENARIOS)})"
        ) from None


def scenario_from_dict(doc: Dict[str, Any]) -> VerifyScenario:
    """Rebuild a scenario from a counterexample file's embedded copy.

    Fixture files stay replayable even if the canned registry drifts:
    the file carries the exact hierarchy it was found against.
    """
    leaves = []
    for entry in doc["leaves"]:
        rt = entry.get("rt")
        envelope = entry.get("envelope")
        leaves.append(LeafSpec(
            name=entry["name"],
            weight=float(entry.get("weight", 1.0)),
            parent=entry.get("parent"),
            rt=None if rt is None else ServiceCurve(*[float(v) for v in rt]),
            envelope=None if envelope is None else tuple(
                math.inf if v is None else float(v) for v in envelope
            ),
        ))
    return VerifyScenario(
        name=doc.get("name", "embedded"),
        description="embedded in counterexample",
        capacity=float(doc["capacity"]),
        dt=float(doc["dt"]),
        quantum=float(doc["quantum"]),
        peak_step=float(doc["peak_step"]),
        agencies=tuple((a[0], float(a[1])) for a in doc.get("agencies", [])),
        leaves=tuple(leaves),
    )
