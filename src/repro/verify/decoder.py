"""Turn a solver/search witness into a concrete, replayable trace.

The model's witness is an arrival matrix ``arrivals[t][leaf]`` of byte
amounts; a replay needs packets with timestamps and class names.  The
decoder writes a self-contained JSON document (schema
``repro-verify-counterexample/v1``) carrying:

* the packetized arrival list ``[[time, class, bytes], ...]`` -- amounts
  are split into scheduler-quantum packets (plus one remainder packet
  for non-grid amounts a z3 model may produce);
* the **embedded scenario** (hierarchy, curves, envelopes), so fixture
  files stay replayable even if the canned scenario registry drifts;
* the model's prediction (violation value, threshold, proof strength)
  and the replay tolerance the bridge should hold it to.

These documents are what lands in ``tests/golden/adversarial/`` and
what ``repro chaos --replay`` accepts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.core.errors import ConfigurationError
from repro.verify.native import SearchResult
from repro.verify.properties import EPS, Property
from repro.verify.scenario import VerifyScenario

SCHEMA = "repro-verify-counterexample/v1"


def packetize(
    scn: VerifyScenario, arrivals: List[List[float]]
) -> List[List[Any]]:
    """Split the witness matrix into ``[time, class, bytes]`` packets."""
    out: List[List[Any]] = []
    for t, row in enumerate(arrivals):
        when = round(t * scn.dt, 9)
        for i, amount in enumerate(row):
            amount = float(amount)
            if amount <= EPS:
                continue
            name = scn.leaves[i].name
            whole, rest = divmod(amount, scn.quantum)
            for _ in range(int(whole)):
                out.append([when, name, scn.quantum])
            if rest > EPS:
                out.append([when, name, round(rest, 6)])
    return out


def replay_until(scn: VerifyScenario, horizon: int,
                 arrivals: List[List[Any]]) -> float:
    """Long enough to drain every witness byte plus a settling margin."""
    total = sum(a[2] for a in arrivals)
    return round(horizon * scn.dt + total / scn.capacity + 10 * scn.dt, 9)


def counterexample_to_doc(
    scn: VerifyScenario,
    prop: Property,
    result: SearchResult,
) -> Dict[str, Any]:
    """Build the v1 counterexample document from a search result."""
    if result.arrivals is None:
        raise ConfigurationError(
            f"search result for {result.property!r} carries no witness trace"
        )
    packets = packetize(scn, result.arrivals)
    info = prop.info()
    target = info.get("victim") or info.get("leaf")
    doc: Dict[str, Any] = {
        "schema": SCHEMA,
        "property": result.property,
        "expected": prop.expected,
        "status": result.status if result.status == "violation" else "near-miss",
        "backend": result.backend,
        "proof": result.proof,
        "horizon": result.horizon,
        "predicted": result.value,
        "threshold": result.threshold,
        "scenario": scn.to_dict(),
        "arrivals": packets,
        "replay": {
            "until": replay_until(scn, result.horizon, packets),
            "window": round(result.horizon * scn.dt, 9),
            "tolerance": prop.replay_tolerance(),
        },
        "detail": result.detail,
    }
    if target is not None:
        doc["target"] = target
    return doc


def write_counterexample(
    doc: Dict[str, Any], path: Union[str, Path]
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_counterexample(path: Union[str, Path]) -> Dict[str, Any]:
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"{path}: not a {SCHEMA} document "
            f"(schema={doc.get('schema')!r})"
        )
    return doc
