"""Pure-Python search backend: exhaustive DFS or beam over arrival grids.

This is the fallback (and confirmation engine) for machines without the
optional ``z3-solver`` wheel.  The adversary's arrivals are quantized to
a small per-step level grid (multiples of the scheduler quantum up to
the per-step peak); the engine then either

* **exhaustively** enumerates every arrival matrix up to the horizon --
  when it finishes under budget, the verdict is a *proof over the
  quantized space* (``proof == "exhaustive"``), the discrete analogue of
  an UNSAT answer; or
* runs a **beam search** guided by the property's partial value when the
  grid is too large -- the verdict is then only as strong as the best
  witness found (``proof == "search"``).

Either way the best trace found is returned so the decoder can turn it
into a replayable counterexample.  Pruning hooks come from the property
(envelope feasibility, side conditions such as "victim stays
backlogged"), so infeasible prefixes are cut before they branch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.verify.model import FluidState, fluid_step, initial_state
from repro.verify.ops import BIG, ConcreteOps
from repro.verify.properties import Property
from repro.verify.scenario import VerifyScenario

#: Default node budget under which DFS is attempted exhaustively.
DEFAULT_MAX_NODES = 400_000
#: Default beam width when falling back to beam search.
DEFAULT_BEAM_WIDTH = 256


@dataclass
class SearchResult:
    """Outcome of a property search, backend-agnostic."""

    property: str
    scenario: str
    backend: str                 # "native" or "z3"
    status: str                  # "violation" | "no-violation" | "unknown"
    proof: str                   # "exhaustive" | "unsat" | "search"
    value: float                 # best violation measure found
    threshold: float
    arrivals: Optional[List[List[float]]]  # witness matrix [t][leaf]
    horizon: int
    explored: int
    elapsed: float
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "property": self.property,
            "scenario": self.scenario,
            "backend": self.backend,
            "status": self.status,
            "proof": self.proof,
            "value": self.value,
            "threshold": self.threshold,
            "horizon": self.horizon,
            "explored": self.explored,
            "elapsed": round(self.elapsed, 6),
        }
        if self.arrivals is not None:
            out["arrivals"] = self.arrivals
        if self.detail:
            out["detail"] = self.detail
        return out


def _combos(levels: Sequence[float], n: int) -> List[Tuple[float, ...]]:
    """All per-step arrival rows: one level choice per leaf."""
    rows: List[Tuple[float, ...]] = [()]
    for _ in range(n):
        rows = [row + (lv,) for row in rows for lv in levels]
    return rows


def native_search(
    scn: VerifyScenario,
    prop: Property,
    horizon: int,
    levels: int = 3,
    max_nodes: int = DEFAULT_MAX_NODES,
    beam_width: Optional[int] = None,
    timeout: Optional[float] = None,
) -> SearchResult:
    """Search the quantized arrival space for the worst property value."""
    start = time.monotonic()
    deadline = None if timeout is None else start + timeout
    level_vals = scn.arrival_levels(levels)
    n = len(scn.leaves)
    rows = _combos(level_vals, n)
    tables = [scn.curve_table(i, horizon) for i in range(n)]

    best_value = -BIG
    best_state: Optional[FluidState] = None
    explored = 0
    proof = "search"

    if beam_width is None:
        # Attempt exhaustive DFS under a *dynamic* node budget: property
        # pruning (envelopes, side conditions) usually shrinks the tree
        # far below the raw branching**horizon, so try first and only
        # fall back to beam search when the budget actually runs out.
        complete = True
        stack: List[FluidState] = [initial_state(scn)]
        while stack:
            if explored > max_nodes or (
                deadline is not None and time.monotonic() > deadline
            ):
                complete = False
                break
            state = stack.pop()
            if state.t == horizon:
                value = prop.value(state)
                if value > best_value:
                    best_value, best_state = value, state
                continue
            for row in rows:
                explored += 1
                child = fluid_step(scn, state, row, tables)
                if not prop.prefix_ok(child):
                    continue
                stack.append(child)
        if complete:
            proof = "exhaustive"

    if proof != "exhaustive":
        # Beam search (requested width, or fallback after DFS overran
        # its budget); the DFS's best-so-far still competes at the end.
        width = beam_width or DEFAULT_BEAM_WIDTH
        frontier: List[Tuple[float, FluidState]] = [
            (0.0, initial_state(scn))
        ]
        for _ in range(horizon):
            if deadline is not None and time.monotonic() > deadline:
                break
            children: List[Tuple[float, FluidState]] = []
            for _, state in frontier:
                for row in rows:
                    explored += 1
                    child = fluid_step(scn, state, row, tables)
                    if not prop.prefix_ok(child):
                        continue
                    children.append((prop.partial_value(child), child))
            if not children:
                break
            children.sort(key=lambda pair: pair[0], reverse=True)
            frontier = children[:width]
        for _, state in frontier:
            if state.t != horizon:
                continue
            value = prop.value(state)
            if value > best_value:
                best_value, best_state = value, state

    elapsed = time.monotonic() - start
    if best_state is None:
        # Every prefix got pruned: the side conditions are unsatisfiable
        # in the quantized space (e.g. nothing keeps the victim backlogged).
        status = "no-violation" if proof == "exhaustive" else "unknown"
        return SearchResult(
            property=prop.name, scenario=scn.name, backend="native",
            status=status, proof=proof, value=-BIG,
            threshold=prop.threshold, arrivals=None, horizon=horizon,
            explored=explored, elapsed=elapsed,
            detail={"note": "no feasible trace", **prop.info()},
        )

    violated = best_value > prop.threshold
    if violated:
        status = "violation"
    elif proof == "exhaustive":
        status = "no-violation"
    else:
        status = "unknown"
    # Always return the worst trace found -- near-misses make useful
    # adversarial fixtures even when the property holds.
    arrivals = [[float(x) for x in row] for row in best_state.arrived]
    return SearchResult(
        property=prop.name, scenario=scn.name, backend="native",
        status=status, proof=proof, value=float(best_value),
        threshold=prop.threshold, arrivals=arrivals, horizon=horizon,
        explored=explored, elapsed=elapsed,
        detail={"levels": [float(v) for v in level_vals], **prop.info()},
    )
