"""Arithmetic abstraction: one model, concrete *and* symbolic execution.

The bounded-horizon scheduler model in :mod:`repro.verify.model` is
written once against this tiny operations layer.  With
:class:`ConcreteOps` the step rules evaluate Python numbers -- that is
the native search backend and the confirmation pass run on decoded
witnesses.  With :class:`Z3Ops` the *same code path* emits z3 terms --
that is the SMT encoding.  Because both backends execute literally the
same update rules, a witness the solver constructs re-evaluates to the
same trace in the concrete executor by construction; disagreement
would mean an encoding bug, which is exactly what the confirmation
pass exists to catch.

The contract is deliberately small and branch-free: the model may only
combine values with ``+ - *`` and the operations below.  Division is
*not* offered -- every fraction in the model must be a constant
(weights, curve slopes), keeping the z3 encoding linear (QF_LRA) and
the concrete arithmetic exact for dyadic scenario constants.
"""

from __future__ import annotations

from typing import Any, Iterable

#: Sentinel "plus infinity" for requirement folds; larger than any value
#: a bounded-horizon trace can produce (bytes served fit well below it).
BIG = 1e18


class ConcreteOps:
    """Evaluate the model over plain Python numbers."""

    symbolic = False

    @staticmethod
    def const(x: float) -> float:
        return x

    @staticmethod
    def ite(cond: bool, a: Any, b: Any) -> Any:
        return a if cond else b

    @staticmethod
    def and_(*conds: bool) -> bool:
        return all(conds)

    @staticmethod
    def or_(*conds: bool) -> bool:
        return any(conds)

    @staticmethod
    def not_(cond: bool) -> bool:
        return not cond

    @staticmethod
    def min2(a: Any, b: Any) -> Any:
        return a if a <= b else b

    @staticmethod
    def max2(a: Any, b: Any) -> Any:
        return a if a >= b else b

    @staticmethod
    def min_of(values: Iterable[Any]) -> Any:
        result = None
        for value in values:
            result = value if result is None or value < result else result
        return BIG if result is None else result

    @staticmethod
    def max_of(values: Iterable[Any]) -> Any:
        result = None
        for value in values:
            result = value if result is None or value > result else result
        return -BIG if result is None else result


class Z3Ops:
    """Emit z3 terms from the same model code (import-guarded)."""

    symbolic = True

    def __init__(self):
        import z3  # deferred: optional dependency (pip install repro[verify])

        self._z3 = z3

    def const(self, x: float):
        return self._z3.RealVal(x)

    def ite(self, cond, a, b):
        if isinstance(cond, bool):  # concrete guards still occur
            return a if cond else b
        return self._z3.If(cond, a, b)

    def and_(self, *conds):
        return self._z3.And(*conds)

    def or_(self, *conds):
        return self._z3.Or(*conds)

    def not_(self, cond):
        return self._z3.Not(cond)

    def min2(self, a, b):
        return self.ite(a <= b, a, b)

    def max2(self, a, b):
        return self.ite(a >= b, a, b)

    def min_of(self, values):
        result = None
        for value in values:
            result = value if result is None else self.min2(result, value)
        return self.const(BIG) if result is None else result

    def max_of(self, values):
        result = None
        for value in values:
            result = value if result is None else self.max2(result, value)
        return self.const(-BIG) if result is None else result
