"""Adversarial verification: bounded-horizon model checking of H-FSC.

The package encodes the scheduler's guarantee structure -- two-piece
service curves, SCED anchor updates, hierarchical link sharing, link
capacity -- as a discrete-time fluid model written once against an
arithmetic abstraction, then hunts for guarantee-violating arrival
traces two ways:

* with **z3** (optional; ``pip install repro[verify]``), solving the
  unrolled step relation directly; or
* with the **native search backend**, exhaustively enumerating (or
  beam-searching) a quantized arrival grid -- no dependencies, and an
  exhaustive finish is a proof over the quantized space.

Witnesses decode into self-contained counterexample JSON files that
``repro chaos --replay`` and the bridge replay through the *real*
packetized scheduler, closing the model-vs-implementation loop.  See
docs/VERIFICATION.md for the model, its soundness caveats, and how to
add a property.
"""

from repro.verify.bridge import replay_counterexample, schedule_digest
from repro.verify.decoder import (
    SCHEMA as COUNTEREXAMPLE_SCHEMA,
    counterexample_to_doc,
    load_counterexample,
    packetize,
    write_counterexample,
)
from repro.verify.model import (
    FluidState,
    conservation_error,
    fluid_step,
    initial_state,
    run_fluid,
)
from repro.verify.native import SearchResult, native_search
from repro.verify.ops import BIG, ConcreteOps, Z3Ops
from repro.verify.properties import (
    PROPERTIES,
    Property,
    ReplayCheck,
    make_property,
)
from repro.verify.scenario import (
    SCENARIOS,
    LeafSpec,
    VerifyScenario,
    get_scenario,
    scenario_from_dict,
)
from repro.verify.smt import (
    Z3_HINT,
    VerifierUnavailable,
    smt_search,
    z3_available,
)

#: True when the optional z3 backend can be imported in this environment.
HAVE_Z3 = z3_available()

__all__ = [
    "BIG",
    "COUNTEREXAMPLE_SCHEMA",
    "ConcreteOps",
    "FluidState",
    "HAVE_Z3",
    "LeafSpec",
    "PROPERTIES",
    "Property",
    "ReplayCheck",
    "SCENARIOS",
    "SearchResult",
    "VerifierUnavailable",
    "VerifyScenario",
    "Z3Ops",
    "Z3_HINT",
    "conservation_error",
    "counterexample_to_doc",
    "fluid_step",
    "get_scenario",
    "initial_state",
    "load_counterexample",
    "make_property",
    "native_search",
    "packetize",
    "replay_counterexample",
    "run_fluid",
    "scenario_from_dict",
    "schedule_digest",
    "smt_search",
    "write_counterexample",
    "z3_available",
]
