"""`repro verify`: run the bounded-horizon verifier and report in JSON.

One invocation runs one or more properties, each through the selected
backend (z3 when installed, the native quantized search otherwise),
decodes any witness into a replayable counterexample, cross-checks it
against the real scheduler through the bridge, and emits a JSON report::

    repro verify --property all
    repro verify --property linkshare_rt_gap --scenario campus --horizon 6
    repro verify --property eq1_admission_invariant --solver native \
                 --report verify.json --emit-fixture tests/golden/adversarial

Exit codes: 0 = every property behaved as expected (UNSAT where the
paper proves a guarantee, SAT where it proves an impossibility) and
every witness reproduced on the real scheduler; 1 = some expectation or
replay failed; 2 = usage error (including asking for z3 when it is not
installed).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.errors import ConfigurationError
from repro.verify.bridge import replay_counterexample
from repro.verify.decoder import counterexample_to_doc, write_counterexample
from repro.verify.native import native_search
from repro.verify.properties import PROPERTIES, make_property
from repro.verify.scenario import SCENARIOS, get_scenario
from repro.verify.smt import Z3_HINT, smt_search, z3_available

REPORT_SCHEMA = "repro-verify-report/v1"


def add_verify_arguments(parser) -> None:
    parser.add_argument(
        "--property", dest="prop", default="all",
        help="property to check: one of %s, a comma list, or 'all' "
             "(default)" % ", ".join(sorted(PROPERTIES)),
    )
    parser.add_argument(
        "--scenario", default=None, choices=sorted(SCENARIOS),
        help="verification scenario (default: each property's own)",
    )
    parser.add_argument(
        "--horizon", type=int, default=None, metavar="K",
        help="model steps to unroll (default: scenario-specific)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, metavar="SEC",
        help="per-property search/solve budget in seconds (default: 60)",
    )
    parser.add_argument(
        "--solver", choices=("auto", "z3", "native"), default="auto",
        help="backend: z3 if installed, else the native quantized "
             "search (default: auto)",
    )
    parser.add_argument(
        "--levels", type=int, default=3, metavar="N",
        help="arrival grid levels per leaf for the native search "
             "(default: 3)",
    )
    parser.add_argument(
        "--beam", type=int, default=None, metavar="W",
        help="force beam search with this width instead of exhaustive "
             "enumeration",
    )
    parser.add_argument(
        "--max-nodes", type=int, default=None, metavar="M",
        help="node budget under which the native search stays exhaustive",
    )
    parser.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the JSON report here",
    )
    parser.add_argument(
        "--emit-fixture", metavar="DIR", default=None,
        help="write each witness (violation or near-miss) as a "
             "counterexample JSON fixture into this directory",
    )
    parser.add_argument(
        "--no-replay", action="store_true",
        help="skip cross-checking witnesses against the real scheduler",
    )
    parser.add_argument(
        "--no-expect", action="store_true",
        help="report only; do not fail the exit code on expectation "
             "mismatches",
    )


def _run_one(args, name: str) -> Dict[str, Any]:
    scn = get_scenario(args.scenario) if args.scenario else \
        get_scenario(PROPERTIES[name].default_scenario)
    prop = make_property(name, scn)
    horizon = args.horizon or scn.default_horizon

    if args.solver == "z3" or (args.solver == "auto" and z3_available()):
        result = smt_search(scn, prop, horizon, timeout=args.timeout)
    else:
        kwargs: Dict[str, Any] = {
            "levels": args.levels,
            "beam_width": args.beam,
            "timeout": args.timeout,
        }
        if args.max_nodes is not None:
            kwargs["max_nodes"] = args.max_nodes
        result = native_search(scn, prop, horizon, **kwargs)

    record: Dict[str, Any] = result.to_dict()
    record["expected"] = prop.expected
    expected_status = ("violation" if prop.expected == "violation"
                       else "no-violation")
    record["as_expected"] = result.status == expected_status

    doc = None
    if result.arrivals:
        doc = counterexample_to_doc(scn, prop, result)
        if args.emit_fixture:
            stem = f"{name}__{scn.name}"
            path = write_counterexample(
                doc, Path(args.emit_fixture) / f"{stem}.json"
            )
            record["fixture"] = str(path)
    if doc is not None and not args.no_replay:
        replay = replay_counterexample(doc)
        record["replay"] = replay
        if result.status == "violation" and not replay["reproduced"]:
            record["as_expected"] = False
    return record


def verify_command(args) -> int:
    if args.solver == "z3" and not z3_available():
        print(Z3_HINT, file=sys.stderr)
        return 2

    if args.prop == "all":
        names = sorted(PROPERTIES)
    else:
        names = [p.strip() for p in args.prop.split(",") if p.strip()]
        unknown = [p for p in names if p not in PROPERTIES]
        if unknown:
            print(f"unknown property {unknown[0]!r}; expected one of "
                  f"{sorted(PROPERTIES)} or 'all'", file=sys.stderr)
            return 2

    results: List[Dict[str, Any]] = []
    start = time.monotonic()
    try:
        for name in names:
            results.append(_run_one(args, name))
    except ConfigurationError as exc:
        print(f"verify: {exc}", file=sys.stderr)
        return 2

    ok = all(r["as_expected"] for r in results)
    report = {
        "schema": REPORT_SCHEMA,
        "ok": ok,
        "elapsed": round(time.monotonic() - start, 6),
        "results": results,
    }
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.report:
        Path(args.report).write_text(text + "\n")
        print(f"report written to {args.report}", file=sys.stderr)
    if args.no_expect:
        return 0
    return 0 if ok else 1
