/* Compiled H-FSC hot-path kernels over FlatState's plain-list arrays.
 *
 * Drop-in replacements for the pure-Python kernels in
 * repro/core/flatstate.py: serve_commit, activate, activate_ls,
 * passivate_ls, ls_descend and the flat eligible-set operations.  Each
 * function takes the FlatState instance and operates on the *same*
 * Python list objects the pure kernels use, so the two paths are freely
 * interchangeable mid-run and state snapshots look identical.
 *
 * Every float expression is a literal transcription of the Python
 * kernel (same operands, same order); IEEE-754 double arithmetic in C
 * matches CPython float arithmetic bit-for-bit, so schedules are
 * byte-identical -- the golden-digest suite runs under both paths in CI.
 *
 * The per-state list objects are looked up once and cached in a capsule
 * stored on the FlatState's ``_ccache`` slot (the lists live as long as
 * the state and are only ever mutated in place, never rebound).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

/* ---- array table --------------------------------------------------------
 * One slot per FlatState list the kernels touch.  The dc/ec/vc/ul curve
 * blocks must stay contiguous and field-ordered (x0,y0,m1,dx,m2,kx,ky)
 * so a curve is addressed as base + field.
 */

#define ARRAY_NAMES(X) \
    /* curve blocks: order matters */ \
    X(dc_x0) X(dc_y0) X(dc_m1) X(dc_dx) X(dc_m2) X(dc_kx) X(dc_ky) \
    X(ec_x0) X(ec_y0) X(ec_m1) X(ec_dx) X(ec_m2) X(ec_kx) X(ec_ky) \
    X(vc_x0) X(vc_y0) X(vc_m1) X(vc_dx) X(vc_m2) X(vc_kx) X(vc_ky) \
    X(ul_x0) X(ul_y0) X(ul_m1) X(ul_dx) X(ul_m2) X(ul_kx) X(ul_ky) \
    X(dc_on) X(ec_on) X(vc_on) X(ul_on) \
    /* scalars */ \
    X(cumul_rt) X(total_work) X(vt) X(eligible) X(deadline) X(fit_time) \
    X(vt_watermark) X(bytes_rt) X(bytes_ls) \
    /* spec mirrors */ \
    X(rt_m1) X(rt_d) X(rt_m2) X(rt_on) \
    X(es_m1) X(es_d) X(es_m2) \
    X(ls_m1) X(ls_d) X(ls_m2) X(ls_on) \
    X(ulsp_m1) X(ulsp_d) X(ulsp_m2) X(ulsp_on) \
    /* structure */ \
    X(parent) X(nactive) X(ls_active) \
    /* sibling heaps */ \
    X(hmin_key) X(hmin_seq) X(hmin_slot) X(hmin_pos) X(hmin_ctr) \
    X(hmax_key) X(hmax_seq) X(hmax_slot) X(hmax_pos) X(hmax_ctr) \
    /* eligible set */ \
    X(req_e) X(req_d) \
    X(efut_key) X(efut_seq) X(efut_slot) X(efut_pos) \
    X(erdy_key) X(erdy_seq) X(erdy_slot) X(erdy_pos)

enum {
#define X(name) A_##name,
    ARRAY_NAMES(X)
#undef X
    A_COUNT
};

static const char *array_names[] = {
#define X(name) #name,
    ARRAY_NAMES(X)
#undef X
};

/* Curve kind bases (contiguous 7-field blocks). */
#define CURVE_DC A_dc_x0
#define CURVE_EC A_ec_x0
#define CURVE_VC A_vc_x0
#define CURVE_UL A_ul_x0
#define F_X0 0
#define F_Y0 1
#define F_M1 2
#define F_DX 3
#define F_M2 4
#define F_KX 5
#define F_KY 6

typedef struct {
    PyObject *a[A_COUNT]; /* strong references to the state's lists */
} StateCache;

static PyObject *str_ccache;   /* "_ccache" */
static PyObject *str_efut_ctr; /* "efut_ctr" */
static PyObject *str_erdy_ctr; /* "erdy_ctr" */

static void cache_destructor(PyObject *capsule)
{
    StateCache *st = (StateCache *)PyCapsule_GetPointer(capsule, "repro._fastpath.cache");
    if (st != NULL) {
        for (int i = 0; i < A_COUNT; i++)
            Py_XDECREF(st->a[i]);
        PyMem_Free(st);
    }
}

static StateCache *get_cache(PyObject *state)
{
    PyObject *capsule = PyObject_GetAttr(state, str_ccache);
    if (capsule == NULL)
        return NULL;
    if (capsule != Py_None) {
        StateCache *st = (StateCache *)PyCapsule_GetPointer(capsule, "repro._fastpath.cache");
        Py_DECREF(capsule);
        return st;
    }
    Py_DECREF(capsule);
    StateCache *st = (StateCache *)PyMem_Calloc(1, sizeof(StateCache));
    if (st == NULL) {
        PyErr_NoMemory();
        return NULL;
    }
    for (int i = 0; i < A_COUNT; i++) {
        PyObject *lst = PyObject_GetAttrString(state, array_names[i]);
        if (lst == NULL || !PyList_CheckExact(lst)) {
            Py_XDECREF(lst);
            for (int j = 0; j < i; j++)
                Py_XDECREF(st->a[j]);
            PyMem_Free(st);
            if (!PyErr_Occurred())
                PyErr_Format(PyExc_TypeError, "FlatState.%s is not a list", array_names[i]);
            return NULL;
        }
        st->a[i] = lst;
    }
    capsule = PyCapsule_New(st, "repro._fastpath.cache", cache_destructor);
    if (capsule == NULL) {
        for (int i = 0; i < A_COUNT; i++)
            Py_XDECREF(st->a[i]);
        PyMem_Free(st);
        return NULL;
    }
    if (PyObject_SetAttr(state, str_ccache, capsule) < 0) {
        Py_DECREF(capsule);
        return NULL;
    }
    Py_DECREF(capsule);
    return st;
}

/* ---- list cell helpers -------------------------------------------------- */

static inline double get_d(PyObject *lst, Py_ssize_t i)
{
    return PyFloat_AS_DOUBLE(PyList_GET_ITEM(lst, i));
}

static inline long get_l(PyObject *lst, Py_ssize_t i)
{
    return PyLong_AsLong(PyList_GET_ITEM(lst, i));
}

static inline int set_d(PyObject *lst, Py_ssize_t i, double v)
{
    PyObject *boxed = PyFloat_FromDouble(v);
    if (boxed == NULL)
        return -1;
    PyObject *old = PyList_GET_ITEM(lst, i);
    PyList_SET_ITEM(lst, i, boxed);
    Py_DECREF(old);
    return 0;
}

static inline int set_l(PyObject *lst, Py_ssize_t i, long v)
{
    PyObject *boxed = PyLong_FromLong(v);
    if (boxed == NULL)
        return -1;
    PyObject *old = PyList_GET_ITEM(lst, i);
    PyList_SET_ITEM(lst, i, boxed);
    Py_DECREF(old);
    return 0;
}

/* Remove the last element of a list, optionally stealing it (returns a
 * new reference when ``out`` is non-NULL). */
static inline int list_pop_last(PyObject *lst, PyObject **out)
{
    Py_ssize_t n = PyList_GET_SIZE(lst);
    if (out != NULL) {
        *out = PyList_GET_ITEM(lst, n - 1);
        Py_INCREF(*out);
    }
    return PyList_SetSlice(lst, n - 1, n, NULL);
}

/* ---- curve kernels ------------------------------------------------------ */

static double curve_value(StateCache *st, int base, Py_ssize_t slot, double x)
{
    double x0 = get_d(st->a[base + F_X0], slot);
    double y0 = get_d(st->a[base + F_Y0], slot);
    if (x <= x0)
        return y0;
    double dx = get_d(st->a[base + F_DX], slot);
    if (x <= x0 + dx)
        return y0 + get_d(st->a[base + F_M1], slot) * (x - x0);
    return y0 + get_d(st->a[base + F_M1], slot) * dx
              + get_d(st->a[base + F_M2], slot) * (x - x0 - dx);
}

static double curve_inverse(StateCache *st, int base, Py_ssize_t slot, double y)
{
    double y0 = get_d(st->a[base + F_Y0], slot);
    if (y <= y0)
        return get_d(st->a[base + F_X0], slot);
    double knee_y = get_d(st->a[base + F_KY], slot);
    double knee_x;
    if (knee_y != knee_y) { /* NaN: memo invalid */
        double dx = get_d(st->a[base + F_DX], slot);
        knee_x = get_d(st->a[base + F_X0], slot) + dx;
        set_d(st->a[base + F_KX], slot, knee_x);
        knee_y = y0 + get_d(st->a[base + F_M1], slot) * dx;
        set_d(st->a[base + F_KY], slot, knee_y);
    }
    else {
        knee_x = get_d(st->a[base + F_KX], slot);
    }
    if (y <= knee_y)
        return get_d(st->a[base + F_X0], slot)
             + (y - y0) / get_d(st->a[base + F_M1], slot);
    double m2 = get_d(st->a[base + F_M2], slot);
    if (m2 == 0)
        return Py_HUGE_VAL;
    return knee_x + (y - knee_y) / m2;
}

static void curve_min_with(StateCache *st, int base, Py_ssize_t slot,
                           double sm1, double sd, double sm2,
                           double x, double y)
{
    double y_here = curve_value(st, base, slot, x);
    if (sm1 <= sm2) {
        if (y_here < y)
            return;
        set_d(st->a[base + F_X0], slot, x);
        set_d(st->a[base + F_Y0], slot, y);
        set_d(st->a[base + F_M1], slot, sm1);
        set_d(st->a[base + F_DX], slot, sd);
        set_d(st->a[base + F_M2], slot, sm2);
        set_d(st->a[base + F_KY], slot, Py_NAN);
        return;
    }
    if (y > y_here)
        return;
    double knee_x = get_d(st->a[base + F_X0], slot) + get_d(st->a[base + F_DX], slot);
    double knee_y = get_d(st->a[base + F_Y0], slot)
                  + get_d(st->a[base + F_M1], slot) * get_d(st->a[base + F_DX], slot);
    double dslope = sm1 - sm2;
    double cross = (knee_y - y + sm1 * x - sm2 * knee_x) / dslope;
    if (cross < x)
        cross = x;
    if (cross >= x + sd) {
        set_d(st->a[base + F_X0], slot, x);
        set_d(st->a[base + F_Y0], slot, y);
        set_d(st->a[base + F_M1], slot, sm1);
        set_d(st->a[base + F_DX], slot, sd);
        set_d(st->a[base + F_M2], slot, sm2);
        set_d(st->a[base + F_KY], slot, Py_NAN);
        return;
    }
    set_d(st->a[base + F_X0], slot, x);
    set_d(st->a[base + F_Y0], slot, y);
    set_d(st->a[base + F_M1], slot, sm1);
    set_d(st->a[base + F_DX], slot, cross - x);
    set_d(st->a[base + F_M2], slot, sm2);
    set_d(st->a[base + F_KY], slot, Py_NAN);
}

/* curve_set: RuntimeCurve.from_spec into the arrays + presence flag. */
static void curve_set(StateCache *st, int base, int on_index, Py_ssize_t slot,
                      double m1, double d, double m2, double x, double y)
{
    set_d(st->a[base + F_X0], slot, x);
    set_d(st->a[base + F_Y0], slot, y);
    set_d(st->a[base + F_M1], slot, m1);
    set_d(st->a[base + F_DX], slot, d);
    set_d(st->a[base + F_M2], slot, m2);
    set_d(st->a[base + F_KY], slot, Py_NAN);
    set_l(st->a[on_index], slot, 1);
}

/* ---- sift helpers (exact port of flatstate.heap_sift_up/_down) ---------- */
/*
 * The moving entry's boxed objects are held aside and parents/children
 * are shifted by raw pointer moves -- a pure permutation of the list
 * cells, so reference counts are untouched.
 */

static void sift_up(PyObject *keys, PyObject *seqs, PyObject *slots,
                    PyObject *pos, Py_ssize_t i)
{
    PyObject *key_o = PyList_GET_ITEM(keys, i);
    PyObject *seq_o = PyList_GET_ITEM(seqs, i);
    PyObject *slot_o = PyList_GET_ITEM(slots, i);
    double key = PyFloat_AS_DOUBLE(key_o);
    long seq = PyLong_AsLong(seq_o);
    while (i > 0) {
        Py_ssize_t pi = (i - 1) >> 1;
        PyObject *pk_o = PyList_GET_ITEM(keys, pi);
        double pk = PyFloat_AS_DOUBLE(pk_o);
        if (key < pk || (key == pk && seq < get_l(seqs, pi))) {
            PyList_SET_ITEM(keys, i, pk_o);
            PyList_SET_ITEM(seqs, i, PyList_GET_ITEM(seqs, pi));
            PyObject *moved = PyList_GET_ITEM(slots, pi);
            PyList_SET_ITEM(slots, i, moved);
            set_l(pos, PyLong_AsLong(moved), i);
            i = pi;
        }
        else {
            break;
        }
    }
    PyList_SET_ITEM(keys, i, key_o);
    PyList_SET_ITEM(seqs, i, seq_o);
    PyList_SET_ITEM(slots, i, slot_o);
    set_l(pos, PyLong_AsLong(slot_o), i);
}

static void sift_down(PyObject *keys, PyObject *seqs, PyObject *slots,
                      PyObject *pos, Py_ssize_t i)
{
    Py_ssize_t size = PyList_GET_SIZE(keys);
    PyObject *key_o = PyList_GET_ITEM(keys, i);
    PyObject *seq_o = PyList_GET_ITEM(seqs, i);
    PyObject *slot_o = PyList_GET_ITEM(slots, i);
    double key = PyFloat_AS_DOUBLE(key_o);
    long seq = PyLong_AsLong(seq_o);
    Py_ssize_t child = 2 * i + 1;
    while (child < size) {
        double ck = get_d(keys, child);
        Py_ssize_t right = child + 1;
        if (right < size) {
            double rk = get_d(keys, right);
            if (rk < ck || (rk == ck && get_l(seqs, right) < get_l(seqs, child))) {
                child = right;
                ck = rk;
            }
        }
        if (ck < key || (ck == key && get_l(seqs, child) < seq)) {
            PyList_SET_ITEM(keys, i, PyList_GET_ITEM(keys, child));
            PyList_SET_ITEM(seqs, i, PyList_GET_ITEM(seqs, child));
            PyObject *moved = PyList_GET_ITEM(slots, child);
            PyList_SET_ITEM(slots, i, moved);
            set_l(pos, PyLong_AsLong(moved), i);
            i = child;
            child = 2 * i + 1;
        }
        else {
            break;
        }
    }
    PyList_SET_ITEM(keys, i, key_o);
    PyList_SET_ITEM(seqs, i, seq_o);
    PyList_SET_ITEM(slots, i, slot_o);
    set_l(pos, PyLong_AsLong(slot_o), i);
}

/* Append (key, seq, slot) and sift up.  Mirrors the push half of
 * flatstate.heap_push2 / elig_insert. */
static int heap_append(PyObject *keys, PyObject *seqs, PyObject *slots,
                       PyObject *pos, double key, long seq, long slot)
{
    PyObject *key_o = PyFloat_FromDouble(key);
    PyObject *seq_o = PyLong_FromLong(seq);
    PyObject *slot_o = PyLong_FromLong(slot);
    if (key_o == NULL || seq_o == NULL || slot_o == NULL ||
        PyList_Append(keys, key_o) < 0 ||
        PyList_Append(seqs, seq_o) < 0 ||
        PyList_Append(slots, slot_o) < 0) {
        Py_XDECREF(key_o);
        Py_XDECREF(seq_o);
        Py_XDECREF(slot_o);
        return -1;
    }
    Py_DECREF(key_o);
    Py_DECREF(seq_o);
    Py_DECREF(slot_o);
    sift_up(keys, seqs, slots, pos, PyList_GET_SIZE(keys) - 1);
    return 0;
}

/* Remove entry ``i`` (pos for its slot already cleared) with the
 * swap-last rule.  Mirrors flatstate._eheap_delete / heap_remove2. */
static int heap_delete_at(PyObject *keys, PyObject *seqs, PyObject *slots,
                          PyObject *pos, Py_ssize_t i)
{
    PyObject *last_key, *last_seq, *last_slot;
    if (list_pop_last(keys, &last_key) < 0)
        return -1;
    if (list_pop_last(seqs, &last_seq) < 0) {
        Py_DECREF(last_key);
        return -1;
    }
    if (list_pop_last(slots, &last_slot) < 0) {
        Py_DECREF(last_key);
        Py_DECREF(last_seq);
        return -1;
    }
    if (i < PyList_GET_SIZE(keys)) {
        PyObject *old;
        old = PyList_GET_ITEM(keys, i);
        PyList_SET_ITEM(keys, i, last_key);
        Py_DECREF(old);
        old = PyList_GET_ITEM(seqs, i);
        PyList_SET_ITEM(seqs, i, last_seq);
        Py_DECREF(old);
        old = PyList_GET_ITEM(slots, i);
        PyList_SET_ITEM(slots, i, last_slot);
        Py_DECREF(old);
        long moved = PyLong_AsLong(last_slot);
        set_l(pos, moved, i);
        sift_up(keys, seqs, slots, pos, i);
        sift_down(keys, seqs, slots, pos, get_l(pos, moved));
    }
    else {
        Py_DECREF(last_key);
        Py_DECREF(last_seq);
        Py_DECREF(last_slot);
    }
    return 0;
}

/* ---- sibling-heap pair operations --------------------------------------- */

static int heap_push2(StateCache *st, long parent, long slot, double key)
{
    PyObject *keys = PyList_GET_ITEM(st->a[A_hmin_key], parent);
    PyObject *seqs = PyList_GET_ITEM(st->a[A_hmin_seq], parent);
    PyObject *slots = PyList_GET_ITEM(st->a[A_hmin_slot], parent);
    long seq = get_l(st->a[A_hmin_ctr], parent);
    set_l(st->a[A_hmin_ctr], parent, seq + 1);
    if (heap_append(keys, seqs, slots, st->a[A_hmin_pos], key, seq, slot) < 0)
        return -1;
    keys = PyList_GET_ITEM(st->a[A_hmax_key], parent);
    seqs = PyList_GET_ITEM(st->a[A_hmax_seq], parent);
    slots = PyList_GET_ITEM(st->a[A_hmax_slot], parent);
    seq = get_l(st->a[A_hmax_ctr], parent);
    set_l(st->a[A_hmax_ctr], parent, seq + 1);
    return heap_append(keys, seqs, slots, st->a[A_hmax_pos], -key, seq, slot);
}

static void heap_update_side(PyObject *keys, PyObject *seqs, PyObject *slots,
                             PyObject *pos, long slot, double key)
{
    Py_ssize_t i = get_l(pos, slot);
    double old = get_d(keys, i);
    set_d(keys, i, key);
    if (key < old)
        sift_up(keys, seqs, slots, pos, i);
    else
        sift_down(keys, seqs, slots, pos, i);
}

static void heap_update2(StateCache *st, long parent, long slot, double key)
{
    heap_update_side(PyList_GET_ITEM(st->a[A_hmin_key], parent),
                     PyList_GET_ITEM(st->a[A_hmin_seq], parent),
                     PyList_GET_ITEM(st->a[A_hmin_slot], parent),
                     st->a[A_hmin_pos], slot, key);
    heap_update_side(PyList_GET_ITEM(st->a[A_hmax_key], parent),
                     PyList_GET_ITEM(st->a[A_hmax_seq], parent),
                     PyList_GET_ITEM(st->a[A_hmax_slot], parent),
                     st->a[A_hmax_pos], slot, -key);
}

static int heap_remove2(StateCache *st, long parent, long slot)
{
    PyObject *pos = st->a[A_hmin_pos];
    Py_ssize_t i = get_l(pos, slot);
    set_l(pos, slot, -1);
    if (heap_delete_at(PyList_GET_ITEM(st->a[A_hmin_key], parent),
                       PyList_GET_ITEM(st->a[A_hmin_seq], parent),
                       PyList_GET_ITEM(st->a[A_hmin_slot], parent),
                       pos, i) < 0)
        return -1;
    pos = st->a[A_hmax_pos];
    i = get_l(pos, slot);
    set_l(pos, slot, -1);
    return heap_delete_at(PyList_GET_ITEM(st->a[A_hmax_key], parent),
                          PyList_GET_ITEM(st->a[A_hmax_seq], parent),
                          PyList_GET_ITEM(st->a[A_hmax_slot], parent),
                          pos, i);
}

/* ---- hot-path kernels --------------------------------------------------- */

static void activate_ls_impl(StateCache *st, long slot, long policy)
{
    PyObject *parent = st->a[A_parent];
    PyObject *nactive = st->a[A_nactive];
    long s = slot;
    while (get_l(parent, s) >= 0) {
        long p = get_l(parent, s);
        int parent_was_active = get_l(nactive, p) > 0;
        double pvt;
        if (!parent_was_active) {
            pvt = get_d(st->a[A_vt_watermark], p);
        }
        else {
            double vmin = get_d(PyList_GET_ITEM(st->a[A_hmin_key], p), 0);
            double vmax = -get_d(PyList_GET_ITEM(st->a[A_hmax_key], p), 0);
            if (policy == 1) /* VT_MIN */
                pvt = vmin;
            else if (policy == 2) /* VT_MAX */
                pvt = vmax;
            else
                pvt = (vmin + vmax) / 2.0;
        }
        double w = get_d(st->a[A_total_work], s);
        if (!get_l(st->a[A_vc_on], s)) {
            curve_set(st, CURVE_VC, A_vc_on, s,
                      get_d(st->a[A_ls_m1], s), get_d(st->a[A_ls_d], s),
                      get_d(st->a[A_ls_m2], s), pvt, w);
        }
        else {
            curve_min_with(st, CURVE_VC, s,
                           get_d(st->a[A_ls_m1], s), get_d(st->a[A_ls_d], s),
                           get_d(st->a[A_ls_m2], s), pvt, w);
        }
        double v = curve_inverse(st, CURVE_VC, s, w);
        set_d(st->a[A_vt], s, v);
        set_l(st->a[A_ls_active], s, 1);
        heap_push2(st, p, s, v);
        set_l(nactive, p, get_l(nactive, p) + 1);
        if (parent_was_active || get_l(parent, p) < 0)
            break;
        s = p;
    }
}

static void passivate_ls_impl(StateCache *st, long slot)
{
    PyObject *parent = st->a[A_parent];
    PyObject *nactive = st->a[A_nactive];
    long s = slot;
    while (get_l(parent, s) >= 0) {
        long p = get_l(parent, s);
        heap_remove2(st, p, s);
        set_l(nactive, p, get_l(nactive, p) - 1);
        double vs = get_d(st->a[A_vt], s);
        if (vs > get_d(st->a[A_vt_watermark], p))
            set_d(st->a[A_vt_watermark], p, vs);
        set_l(st->a[A_ls_active], s, 0);
        if (get_l(nactive, p) > 0 || get_l(parent, p) < 0)
            break;
        s = p;
    }
}

static PyObject *py_activate_ls(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "activate_ls(state, slot, policy)");
        return NULL;
    }
    StateCache *st = get_cache(args[0]);
    if (st == NULL)
        return NULL;
    activate_ls_impl(st, PyLong_AsLong(args[1]), PyLong_AsLong(args[2]));
    if (PyErr_Occurred())
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *py_passivate_ls(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "passivate_ls(state, slot)");
        return NULL;
    }
    StateCache *st = get_cache(args[0]);
    if (st == NULL)
        return NULL;
    passivate_ls_impl(st, PyLong_AsLong(args[1]));
    if (PyErr_Occurred())
        return NULL;
    Py_RETURN_NONE;
}

static int activate_impl(StateCache *st, long slot, double now,
                         int rt_tracked, double head_size, long policy)
{
    double c = get_d(st->a[A_cumul_rt], slot);
    if (rt_tracked) {
        if (!get_l(st->a[A_dc_on], slot)) {
            curve_set(st, CURVE_DC, A_dc_on, slot,
                      get_d(st->a[A_rt_m1], slot), get_d(st->a[A_rt_d], slot),
                      get_d(st->a[A_rt_m2], slot), now, c);
            curve_set(st, CURVE_EC, A_ec_on, slot,
                      get_d(st->a[A_es_m1], slot), get_d(st->a[A_es_d], slot),
                      get_d(st->a[A_es_m2], slot), now, c);
        }
        else {
            curve_min_with(st, CURVE_DC, slot,
                           get_d(st->a[A_rt_m1], slot), get_d(st->a[A_rt_d], slot),
                           get_d(st->a[A_rt_m2], slot), now, c);
            curve_min_with(st, CURVE_EC, slot,
                           get_d(st->a[A_es_m1], slot), get_d(st->a[A_es_d], slot),
                           get_d(st->a[A_es_m2], slot), now, c);
        }
        set_d(st->a[A_eligible], slot, curve_inverse(st, CURVE_EC, slot, c));
        set_d(st->a[A_deadline], slot,
              curve_inverse(st, CURVE_DC, slot, c + head_size));
    }
    if (get_l(st->a[A_ulsp_on], slot)) {
        double w = get_d(st->a[A_total_work], slot);
        if (!get_l(st->a[A_ul_on], slot)) {
            curve_set(st, CURVE_UL, A_ul_on, slot,
                      get_d(st->a[A_ulsp_m1], slot), get_d(st->a[A_ulsp_d], slot),
                      get_d(st->a[A_ulsp_m2], slot), now, w);
        }
        else {
            curve_min_with(st, CURVE_UL, slot,
                           get_d(st->a[A_ulsp_m1], slot), get_d(st->a[A_ulsp_d], slot),
                           get_d(st->a[A_ulsp_m2], slot), now, w);
        }
        set_d(st->a[A_fit_time], slot, curve_inverse(st, CURVE_UL, slot, w));
    }
    if (get_l(st->a[A_ls_on], slot))
        activate_ls_impl(st, slot, policy);
    return PyErr_Occurred() ? -1 : 0;
}

static PyObject *py_activate(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 6) {
        PyErr_SetString(PyExc_TypeError,
                        "activate(state, slot, now, rt_tracked, head_size, policy)");
        return NULL;
    }
    StateCache *st = get_cache(args[0]);
    if (st == NULL)
        return NULL;
    long slot = PyLong_AsLong(args[1]);
    double now = PyFloat_AsDouble(args[2]);
    int rt_tracked = PyObject_IsTrue(args[3]);
    double head_size = PyFloat_AsDouble(args[4]);
    long policy = PyLong_AsLong(args[5]);
    if (PyErr_Occurred())
        return NULL;
    if (activate_impl(st, slot, now, rt_tracked, head_size, policy) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int serve_commit_impl(StateCache *st, long slot, double size,
                             int realtime, int rt_tracked, int backlogged,
                             double next_size)
{
    if (realtime) {
        set_d(st->a[A_cumul_rt], slot, get_d(st->a[A_cumul_rt], slot) + size);
        set_d(st->a[A_bytes_rt], slot, get_d(st->a[A_bytes_rt], slot) + size);
    }
    else {
        set_d(st->a[A_bytes_ls], slot, get_d(st->a[A_bytes_ls], slot) + size);
    }
    PyObject *total_work = st->a[A_total_work];
    if (get_l(st->a[A_ls_on], slot)) {
        PyObject *parent = st->a[A_parent];
        PyObject *nactive = st->a[A_nactive];
        long s = slot;
        int dying = !backlogged;
        for (;;) {
            long p = get_l(parent, s);
            if (p < 0) {
                set_d(total_work, s, get_d(total_work, s) + size);
                break;
            }
            double w = get_d(total_work, s) + size;
            set_d(total_work, s, w);
            double v = curve_inverse(st, CURVE_VC, s, w);
            set_d(st->a[A_vt], s, v);
            if (dying)
                dying = get_l(nactive, p) == 1 && get_l(parent, p) >= 0;
            else
                heap_update2(st, p, s, v);
            s = p;
        }
    }
    else {
        set_d(total_work, slot, get_d(total_work, slot) + size);
    }
    if (get_l(st->a[A_ul_on], slot)) {
        set_d(st->a[A_fit_time], slot,
              curve_inverse(st, CURVE_UL, slot, get_d(total_work, slot)));
    }
    if (backlogged) {
        if (rt_tracked) {
            double c = get_d(st->a[A_cumul_rt], slot);
            if (realtime)
                set_d(st->a[A_eligible], slot, curve_inverse(st, CURVE_EC, slot, c));
            set_d(st->a[A_deadline], slot,
                  curve_inverse(st, CURVE_DC, slot, c + next_size));
        }
    }
    else if (get_l(st->a[A_ls_on], slot)) {
        passivate_ls_impl(st, slot);
    }
    return PyErr_Occurred() ? -1 : 0;
}

static PyObject *py_serve_commit(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 7) {
        PyErr_SetString(PyExc_TypeError,
                        "serve_commit(state, slot, size, realtime, rt_tracked, "
                        "backlogged, next_size)");
        return NULL;
    }
    StateCache *st = get_cache(args[0]);
    if (st == NULL)
        return NULL;
    long slot = PyLong_AsLong(args[1]);
    double size = PyFloat_AsDouble(args[2]);
    int realtime = PyObject_IsTrue(args[3]);
    int rt_tracked = PyObject_IsTrue(args[4]);
    int backlogged = PyObject_IsTrue(args[5]);
    double next_size = PyFloat_AsDouble(args[6]);
    if (PyErr_Occurred())
        return NULL;
    if (serve_commit_impl(st, slot, size, realtime, rt_tracked, backlogged,
                          next_size) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *py_ls_descend(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "ls_descend(state, root_slot)");
        return NULL;
    }
    StateCache *st = get_cache(args[0]);
    if (st == NULL)
        return NULL;
    long s = PyLong_AsLong(args[1]);
    PyObject *nactive = st->a[A_nactive];
    PyObject *hmin_slot = st->a[A_hmin_slot];
    while (get_l(nactive, s) > 0)
        s = get_l(PyList_GET_ITEM(hmin_slot, s), 0);
    if (PyErr_Occurred())
        return NULL;
    return PyLong_FromLong(s);
}

/* ---- flat eligible set -------------------------------------------------- */

static long get_ctr(PyObject *state, PyObject *name)
{
    PyObject *v = PyObject_GetAttr(state, name);
    if (v == NULL)
        return -1;
    long out = PyLong_AsLong(v);
    Py_DECREF(v);
    return out;
}

static int set_ctr(PyObject *state, PyObject *name, long v)
{
    PyObject *boxed = PyLong_FromLong(v);
    if (boxed == NULL)
        return -1;
    int rc = PyObject_SetAttr(state, name, boxed);
    Py_DECREF(boxed);
    return rc;
}

static int elig_insert_impl(PyObject *state, StateCache *st, long slot,
                            double eligible, double deadline)
{
    if (get_l(st->a[A_efut_pos], slot) != -1 ||
        get_l(st->a[A_erdy_pos], slot) != -1) {
        PyErr_Format(PyExc_ValueError, "slot already present: %ld", slot);
        return -1;
    }
    set_d(st->a[A_req_e], slot, eligible);
    set_d(st->a[A_req_d], slot, deadline);
    long seq = get_ctr(state, str_efut_ctr);
    if (seq < 0 && PyErr_Occurred())
        return -1;
    if (set_ctr(state, str_efut_ctr, seq + 1) < 0)
        return -1;
    return heap_append(st->a[A_efut_key], st->a[A_efut_seq], st->a[A_efut_slot],
                       st->a[A_efut_pos], eligible, seq, slot);
}

static int elig_remove_impl(PyObject *state, StateCache *st, long slot)
{
    long i = get_l(st->a[A_efut_pos], slot);
    if (i >= 0) {
        set_l(st->a[A_efut_pos], slot, -1);
        return heap_delete_at(st->a[A_efut_key], st->a[A_efut_seq],
                              st->a[A_efut_slot], st->a[A_efut_pos], i);
    }
    i = get_l(st->a[A_erdy_pos], slot);
    if (i < 0) {
        PyErr_Format(PyExc_KeyError, "%ld", slot);
        return -1;
    }
    set_l(st->a[A_erdy_pos], slot, -1);
    return heap_delete_at(st->a[A_erdy_key], st->a[A_erdy_seq],
                          st->a[A_erdy_slot], st->a[A_erdy_pos], i);
}

static PyObject *py_elig_insert(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "elig_insert(state, slot, eligible, deadline)");
        return NULL;
    }
    StateCache *st = get_cache(args[0]);
    if (st == NULL)
        return NULL;
    long slot = PyLong_AsLong(args[1]);
    double eligible = PyFloat_AsDouble(args[2]);
    double deadline = PyFloat_AsDouble(args[3]);
    if (PyErr_Occurred())
        return NULL;
    if (elig_insert_impl(args[0], st, slot, eligible, deadline) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *py_elig_remove(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "elig_remove(state, slot)");
        return NULL;
    }
    StateCache *st = get_cache(args[0]);
    if (st == NULL)
        return NULL;
    long slot = PyLong_AsLong(args[1]);
    if (PyErr_Occurred())
        return NULL;
    if (elig_remove_impl(args[0], st, slot) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *py_elig_update(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "elig_update(state, slot, eligible, deadline)");
        return NULL;
    }
    StateCache *st = get_cache(args[0]);
    if (st == NULL)
        return NULL;
    long slot = PyLong_AsLong(args[1]);
    double eligible = PyFloat_AsDouble(args[2]);
    double deadline = PyFloat_AsDouble(args[3]);
    if (PyErr_Occurred())
        return NULL;
    if (elig_remove_impl(args[0], st, slot) < 0)
        return NULL;
    if (elig_insert_impl(args[0], st, slot, eligible, deadline) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *py_elig_query(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "elig_query(state, now)");
        return NULL;
    }
    StateCache *st = get_cache(args[0]);
    if (st == NULL)
        return NULL;
    double now = PyFloat_AsDouble(args[1]);
    if (PyErr_Occurred())
        return NULL;
    PyObject *fkeys = st->a[A_efut_key];
    while (PyList_GET_SIZE(fkeys) > 0 && get_d(fkeys, 0) <= now) {
        long slot = get_l(st->a[A_efut_slot], 0);
        set_l(st->a[A_efut_pos], slot, -1);
        if (heap_delete_at(fkeys, st->a[A_efut_seq], st->a[A_efut_slot],
                           st->a[A_efut_pos], 0) < 0)
            return NULL;
        long seq = get_ctr(args[0], str_erdy_ctr);
        if (seq < 0 && PyErr_Occurred())
            return NULL;
        if (set_ctr(args[0], str_erdy_ctr, seq + 1) < 0)
            return NULL;
        if (heap_append(st->a[A_erdy_key], st->a[A_erdy_seq], st->a[A_erdy_slot],
                        st->a[A_erdy_pos], get_d(st->a[A_req_d], slot),
                        seq, slot) < 0)
            return NULL;
    }
    if (PyList_GET_SIZE(st->a[A_erdy_key]) == 0)
        return PyLong_FromLong(-1);
    return PyLong_FromLong(get_l(st->a[A_erdy_slot], 0));
}

/* Exact port of flatstate.elig_requeue: the calendar-style round trip
 * collapsed to one in-place ready-heap re-key when the new eligible time
 * is already due. */
static int elig_requeue_impl(PyObject *state, StateCache *st, long slot,
                             double eligible, double deadline, double now)
{
    if (eligible <= now) {
        long i = get_l(st->a[A_erdy_pos], slot);
        if (i >= 0) {
            set_d(st->a[A_req_e], slot, eligible);
            set_d(st->a[A_req_d], slot, deadline);
            long seq = get_ctr(state, str_erdy_ctr);
            if (seq < 0 && PyErr_Occurred())
                return -1;
            if (set_ctr(state, str_erdy_ctr, seq + 1) < 0)
                return -1;
            PyObject *keys = st->a[A_erdy_key];
            PyObject *seqs = st->a[A_erdy_seq];
            PyObject *slots = st->a[A_erdy_slot];
            double old = get_d(keys, i);
            if (set_d(keys, i, deadline) < 0 || set_l(seqs, i, seq) < 0)
                return -1;
            /* The fresh seq is the largest in the heap: a smaller key can
             * only rise, an equal-or-larger key can only sink. */
            if (deadline < old)
                sift_up(keys, seqs, slots, st->a[A_erdy_pos], i);
            else
                sift_down(keys, seqs, slots, st->a[A_erdy_pos], i);
            return PyErr_Occurred() ? -1 : 0;
        }
    }
    if (elig_remove_impl(state, st, slot) < 0)
        return -1;
    return elig_insert_impl(state, st, slot, eligible, deadline);
}

static PyObject *py_elig_requeue(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 5) {
        PyErr_SetString(PyExc_TypeError,
                        "elig_requeue(state, slot, eligible, deadline, now)");
        return NULL;
    }
    StateCache *st = get_cache(args[0]);
    if (st == NULL)
        return NULL;
    long slot = PyLong_AsLong(args[1]);
    double eligible = PyFloat_AsDouble(args[2]);
    double deadline = PyFloat_AsDouble(args[3]);
    double now = PyFloat_AsDouble(args[4]);
    if (PyErr_Occurred())
        return NULL;
    if (elig_requeue_impl(args[0], st, slot, eligible, deadline, now) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* ---- fused hot-path steps (serve_commit/activate + eligible set) -------- */

static PyObject *py_serve_step(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 8) {
        PyErr_SetString(PyExc_TypeError,
                        "serve_step(state, slot, size, realtime, rt_tracked, "
                        "backlogged, next_size, now)");
        return NULL;
    }
    StateCache *st = get_cache(args[0]);
    if (st == NULL)
        return NULL;
    long slot = PyLong_AsLong(args[1]);
    double size = PyFloat_AsDouble(args[2]);
    int realtime = PyObject_IsTrue(args[3]);
    int rt_tracked = PyObject_IsTrue(args[4]);
    int backlogged = PyObject_IsTrue(args[5]);
    double next_size = PyFloat_AsDouble(args[6]);
    double now = PyFloat_AsDouble(args[7]);
    if (PyErr_Occurred())
        return NULL;
    if (serve_commit_impl(st, slot, size, realtime, rt_tracked, backlogged,
                          next_size) < 0)
        return NULL;
    if (rt_tracked) {
        if (backlogged) {
            if (elig_requeue_impl(args[0], st, slot,
                                  get_d(st->a[A_eligible], slot),
                                  get_d(st->a[A_deadline], slot), now) < 0)
                return NULL;
        }
        else if (elig_remove_impl(args[0], st, slot) < 0) {
            return NULL;
        }
    }
    Py_RETURN_NONE;
}

static PyObject *py_activate_step(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 6) {
        PyErr_SetString(PyExc_TypeError,
                        "activate_step(state, slot, now, rt_tracked, "
                        "head_size, policy)");
        return NULL;
    }
    StateCache *st = get_cache(args[0]);
    if (st == NULL)
        return NULL;
    long slot = PyLong_AsLong(args[1]);
    double now = PyFloat_AsDouble(args[2]);
    int rt_tracked = PyObject_IsTrue(args[3]);
    double head_size = PyFloat_AsDouble(args[4]);
    long policy = PyLong_AsLong(args[5]);
    if (PyErr_Occurred())
        return NULL;
    if (activate_impl(st, slot, now, rt_tracked, head_size, policy) < 0)
        return NULL;
    if (rt_tracked &&
        elig_insert_impl(args[0], st, slot, get_d(st->a[A_eligible], slot),
                         get_d(st->a[A_deadline], slot)) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* ---- module ------------------------------------------------------------- */

static PyMethodDef methods[] = {
    {"serve_commit", (PyCFunction)(void (*)(void))py_serve_commit, METH_FASTCALL, NULL},
    {"serve_step", (PyCFunction)(void (*)(void))py_serve_step, METH_FASTCALL, NULL},
    {"activate", (PyCFunction)(void (*)(void))py_activate, METH_FASTCALL, NULL},
    {"activate_step", (PyCFunction)(void (*)(void))py_activate_step, METH_FASTCALL, NULL},
    {"activate_ls", (PyCFunction)(void (*)(void))py_activate_ls, METH_FASTCALL, NULL},
    {"passivate_ls", (PyCFunction)(void (*)(void))py_passivate_ls, METH_FASTCALL, NULL},
    {"ls_descend", (PyCFunction)(void (*)(void))py_ls_descend, METH_FASTCALL, NULL},
    {"elig_insert", (PyCFunction)(void (*)(void))py_elig_insert, METH_FASTCALL, NULL},
    {"elig_remove", (PyCFunction)(void (*)(void))py_elig_remove, METH_FASTCALL, NULL},
    {"elig_update", (PyCFunction)(void (*)(void))py_elig_update, METH_FASTCALL, NULL},
    {"elig_requeue", (PyCFunction)(void (*)(void))py_elig_requeue, METH_FASTCALL, NULL},
    {"elig_query", (PyCFunction)(void (*)(void))py_elig_query, METH_FASTCALL, NULL},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef moduledef = {
    PyModuleDef_HEAD_INIT, "fastpath_c",
    "Compiled H-FSC hot-path kernels (see repro/core/flatstate.py).",
    -1, methods,
};

PyMODINIT_FUNC PyInit_fastpath_c(void)
{
    str_ccache = PyUnicode_InternFromString("_ccache");
    str_efut_ctr = PyUnicode_InternFromString("efut_ctr");
    str_erdy_ctr = PyUnicode_InternFromString("erdy_ctr");
    if (str_ccache == NULL || str_efut_ctr == NULL || str_erdy_ctr == NULL)
        return NULL;
    return PyModule_Create(&moduledef);
}
