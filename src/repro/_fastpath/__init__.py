"""Build-on-first-import loader for the compiled hot-path kernels.

``load()`` returns the compiled kernel module (built from
``fastpath.c``) or ``None`` when the fast path is unavailable --
because ``REPRO_NO_COMPILED=1`` is set, no C compiler is present, the
build fails, or the built module fails the smoke test.  The caller
(:mod:`repro.core.flatstate`) treats ``None`` as "stay pure Python", so
importing the package never raises.

The extension is compiled with the system C compiler into
``_build/`` next to this file and cached there; it is rebuilt whenever
``fastpath.c`` is newer than the cached shared object.  There is
deliberately no setuptools machinery: one translation unit, one
compiler invocation, works from a plain source checkout.
"""

from __future__ import annotations

import importlib.util
import os
import shutil
import subprocess
import sysconfig
from typing import Optional

_PKG_DIR = os.path.dirname(os.path.abspath(__file__))
_SOURCE = os.path.join(_PKG_DIR, "fastpath.c")
_BUILD_DIR = os.path.join(_PKG_DIR, "_build")

#: Why the last ``load()`` returned None (for diagnostics / bench JSON).
LOAD_ERROR: Optional[str] = None


def _so_path() -> str:
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return os.path.join(_BUILD_DIR, f"fastpath_c{suffix}")


def _compiler() -> Optional[str]:
    cc = sysconfig.get_config_var("CC")
    if cc:
        candidate = cc.split()[0]
        if shutil.which(candidate):
            return candidate
    for candidate in ("cc", "gcc", "clang"):
        if shutil.which(candidate):
            return candidate
    return None


def build(force: bool = False) -> str:
    """Compile ``fastpath.c`` (if stale) and return the shared-object path.

    Raises on any failure; :func:`load` turns that into a ``None``.
    """
    so = _so_path()
    if not force and os.path.exists(so) and (
        os.path.getmtime(so) >= os.path.getmtime(_SOURCE)
    ):
        return so
    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler found")
    include = sysconfig.get_path("include")
    os.makedirs(_BUILD_DIR, exist_ok=True)
    tmp = so + ".tmp"
    cmd = [cc, "-O2", "-fPIC", "-shared", f"-I{include}", _SOURCE, "-o", tmp]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    if proc.returncode != 0:
        raise RuntimeError(f"compile failed: {proc.stderr.strip()[:2000]}")
    os.replace(tmp, so)  # atomic: parallel builders race benignly
    return so


def _smoke_test(mod) -> None:
    """One activation/serve round-trip against the pure kernels."""
    from repro.core import flatstate

    state = flatstate.FlatState(4)

    class _Stub:
        state = None
        slot = -1

    root = state.alloc(_Stub())
    leaf = state.alloc(_Stub())
    state.parent[leaf] = root
    state.ls_m1[leaf] = 100.0
    state.ls_d[leaf] = 0.0
    state.ls_m2[leaf] = 100.0
    state.ls_on[leaf] = 1
    mod.activate_ls(state, leaf, flatstate.VT_MEAN)
    assert state.nactive[root] == 1 and state.ls_active[leaf] == 1
    mod.serve_commit(state, leaf, 100.0, True, False, False, 0.0)
    assert state.nactive[root] == 0 and state.total_work[leaf] == 100.0
    assert abs(state.vt[leaf] - 1.0) < 1e-12
    mod.elig_insert(state, leaf, 0.5, 1.0)
    assert mod.elig_query(state, 0.25) == -1
    assert mod.elig_query(state, 0.75) == leaf
    mod.elig_update(state, leaf, 2.0, 3.0)
    mod.elig_remove(state, leaf)
    assert state.efut_pos[leaf] == -1 and state.erdy_pos[leaf] == -1
    # Fused kernels: requeue a due request in place, then one serve_step
    # and one activate_step round trip (each reactivates before serving).
    mod.elig_insert(state, leaf, 0.5, 1.0)
    assert mod.elig_query(state, 0.75) == leaf
    mod.elig_requeue(state, leaf, 0.6, 2.0, 0.75)
    assert state.erdy_pos[leaf] != -1 and state.req_d[leaf] == 2.0
    mod.elig_remove(state, leaf)
    mod.activate_ls(state, leaf, flatstate.VT_MEAN)
    mod.serve_step(state, leaf, 100.0, True, False, False, 0.0, 0.75)
    assert state.total_work[leaf] == 200.0 and state.nactive[root] == 0
    state.rt_m1[leaf] = state.rt_m2[leaf] = 200.0
    state.es_m1[leaf] = state.es_m2[leaf] = 200.0
    state.rt_on[leaf] = 1
    mod.activate_step(state, leaf, 1.0, True, 50.0, flatstate.VT_MEAN)
    assert state.erdy_pos[leaf] != -1 or state.efut_pos[leaf] != -1
    mod.elig_remove(state, leaf)


def load():
    """Return the compiled kernel module, or ``None`` to stay pure."""
    global LOAD_ERROR
    if os.environ.get("REPRO_NO_COMPILED") == "1":
        LOAD_ERROR = "disabled via REPRO_NO_COMPILED=1"
        return None
    try:
        so = build()
        spec = importlib.util.spec_from_file_location("repro._fastpath.fastpath_c", so)
        if spec is None or spec.loader is None:
            raise ImportError(f"cannot load {so}")
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        _smoke_test(mod)
    except Exception as exc:  # noqa: BLE001 - any failure means "pure"
        LOAD_ERROR = f"{type(exc).__name__}: {exc}"
        return None
    LOAD_ERROR = None
    return mod
