"""Exception types for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A scheduler, hierarchy, or curve was configured inconsistently."""


class AdmissionError(ReproError):
    """A set of service curves is not admissible on the given server.

    Raised when the sum of leaf service curves exceeds the server's service
    curve (the admissibility condition at the end of Section II of the
    paper), unless the caller explicitly opts out of admission control.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""
