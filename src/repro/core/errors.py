"""Exception types for the repro library.

The reconfiguration / overload errors carry *structured context* (class
ids, demand, capacity, the operation that failed) so that supervisory
code -- the chaos harness, the watchdog, an operator CLI -- can react to
the failure programmatically instead of parsing a message string.  Every
structured error exposes a ``context`` dict that is JSON-serializable.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A scheduler, hierarchy, or curve was configured inconsistently."""


class AdmissionError(ReproError):
    """A set of service curves is not admissible on the given server.

    Raised when the sum of leaf service curves exceeds the server's service
    curve (the admissibility condition at the end of Section II of the
    paper), unless the caller explicitly opts out of admission control.
    """


class OverloadError(AdmissionError):
    """The live leaf set became inadmissible (overload beyond admission).

    Raised by :class:`repro.core.hfsc.HFSC` under the default
    ``overload_policy="raise"`` when dynamic reconfiguration (class churn,
    a link-rate drop) pushes the sum of leaf real-time curves past the
    link capacity.  The degradation policies ("reject", "scale-rt",
    "linkshare-only") handle the same condition without raising.
    """

    def __init__(
        self,
        message: str,
        *,
        capacity: Optional[float] = None,
        demand_rate: Optional[float] = None,
        classes: Sequence[Any] = (),
    ) -> None:
        super().__init__(message)
        self.capacity = capacity
        self.demand_rate = demand_rate
        self.classes: Tuple[Any, ...] = tuple(classes)

    @property
    def context(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "demand_rate": self.demand_rate,
            "classes": [repr(c) for c in self.classes],
        }


class ReconfigurationError(ConfigurationError):
    """A live reconfiguration (update/remove/rebuild) was rejected.

    ``operation`` names the attempted action ("update_class",
    "remove_class", ...), ``class_id`` the target class, and ``reason`` a
    short machine-friendly tag ("unknown-class", "has-children",
    "queued-packets", ...).
    """

    def __init__(
        self,
        message: str,
        *,
        operation: Optional[str] = None,
        class_id: Any = None,
        reason: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.operation = operation
        self.class_id = class_id
        self.reason = reason

    @property
    def context(self) -> Dict[str, Any]:
        return {
            "operation": self.operation,
            "class_id": repr(self.class_id),
            "reason": self.reason,
        }


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SnapshotError(ReproError):
    """A snapshot could not be produced, or a restore was refused.

    Raised by :mod:`repro.persist` for every load-time defect -- checksum
    mismatch, schema-version skew, unknown fields, unresolvable component
    references, state that fails cross-validation against re-derived
    invariants.  ``reason`` is a short machine-friendly tag
    ("checksum-mismatch", "schema-version", "unknown-field", ...) and
    ``context`` carries JSON-serializable detail.  Restores are atomic:
    when this is raised the running objects are untouched (the restore
    builds a fresh context and only hands it over on success).
    """

    def __init__(
        self,
        message: str,
        *,
        reason: Optional[str] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.context: Dict[str, Any] = dict(context or {})
