"""The paper's core contribution: service curves, SCED and H-FSC."""

from repro.core.admission import (
    admissible_rate_headroom,
    max_admissible_scale,
    uniform_admissible_scale,
    utilization_profile,
)
from repro.core.curves import (
    PiecewiseLinearCurve,
    ServiceCurve,
    is_admissible,
    sum_curves,
)
from repro.core.fluid import FluidFSC, FluidGPS
from repro.core.errors import (
    AdmissionError,
    ConfigurationError,
    OverloadError,
    ReconfigurationError,
    ReproError,
    SimulationError,
)
from repro.core.hfsc import (
    HFSC,
    HFSCClass,
    HFSCScheduler,
    OVERLOAD_POLICIES,
    ROOT,
    UNCHANGED,
)
from repro.core.hierarchy import ClassSpec, build_hfsc, figure1_hierarchy
from repro.core.runtime_curves import RuntimeCurve, eligible_spec
from repro.core.sced import FairCurveScheduler, SCEDScheduler

__all__ = [
    "ServiceCurve",
    "PiecewiseLinearCurve",
    "RuntimeCurve",
    "eligible_spec",
    "sum_curves",
    "is_admissible",
    "admissible_rate_headroom",
    "max_admissible_scale",
    "uniform_admissible_scale",
    "utilization_profile",
    "FluidGPS",
    "FluidFSC",
    "SCEDScheduler",
    "FairCurveScheduler",
    "HFSC",
    "HFSCScheduler",
    "HFSCClass",
    "ROOT",
    "UNCHANGED",
    "OVERLOAD_POLICIES",
    "ClassSpec",
    "build_hfsc",
    "figure1_hierarchy",
    "ReproError",
    "ConfigurationError",
    "AdmissionError",
    "OverloadError",
    "ReconfigurationError",
    "SimulationError",
]
