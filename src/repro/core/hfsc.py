"""The Hierarchical Fair Service Curve scheduler (Section IV of the paper).

H-FSC schedules a class hierarchy over one output link using two criteria:

* **Real-time criterion** -- guarantees the service curves of leaf classes.
  Each active leaf carries an *eligible time* ``e`` and a *deadline* ``d``
  computed from its eligible and deadline curves (Section IV-B, Fig. 5).
  Whenever some leaf is eligible (``e <= now``), the eligible leaf with the
  smallest deadline is served and its real-time service counter ``c``
  advances.

* **Link-sharing criterion** -- approximates the ideal fair service curve
  link-sharing model.  Every class carries a *virtual time* ``v`` derived
  from its virtual curve (Section IV-C, Fig. 6); when no leaf is eligible,
  the scheduler walks from the root picking the active child with the
  smallest virtual time until it reaches a leaf.  Link-sharing service does
  **not** advance ``c``, which is exactly why a class that borrowed excess
  bandwidth is never punished: its future deadlines are unaffected
  (Section IV-B, "the essence of the nonpunishment aspect").

The implementation follows the paper's pseudo-code (Figs. 4-6) and the O(1)
two-piece curve machinery of Section V.  Complexity is O(log n) per packet
arrival and departure: the real-time request set is the augmented tree of
:mod:`repro.util.eligible_tree`, and each interior class keeps indexed heaps
over its active children's virtual times.

Extensions beyond the paper, both off by default and marked in the API:

* separate real-time (``rt_sc``) and link-sharing (``ls_sc``) curves per
  class, as in the authors' ALTQ implementation and Linux ``sch_hfsc``
  (passing ``sc`` sets both, which is the paper's model);
* an optional upper-limit curve (``ul_sc``) capping a class's total
  service, as in Linux ``sch_hfsc`` (makes the scheduler
  non-work-conserving for that class).
"""

from __future__ import annotations

from collections import deque
from operator import attrgetter
from typing import Any, Deque, Dict, Iterable, List, Optional, Set

from repro.core.curves import ServiceCurve, is_admissible
from repro.core.errors import AdmissionError, ConfigurationError
from repro.core.runtime_curves import RuntimeCurve, eligible_spec
from repro.schedulers.base import Scheduler
from repro.sim.packet import Packet
from repro.util.eligible_set import make_eligible_set
from repro.util.heap import IndexedHeap

ROOT = "__root__"

#: Sort key for virtual-time tie groups in the link-sharing descent.
_creation_index = attrgetter("index")


class HFSCClass:
    """One node of the link-sharing hierarchy.

    Users obtain instances from :meth:`HFSC.add_class`; the attributes are
    read-only state exposed for measurement (experiments read ``vt``,
    ``cumul_rt``, ``total_work`` and the byte counters).
    """

    __slots__ = (
        "name",
        "parent",
        "children",
        "index",
        "ul_children",
        "rt_spec",
        "ls_spec",
        "ul_spec",
        "queue",
        "cumul_rt",
        "deadline_curve",
        "eligible_curve",
        "eligible",
        "deadline",
        "total_work",
        "virtual_curve",
        "vt",
        "ul_curve",
        "fit_time",
        "nactive",
        "ls_active",
        "active_min",
        "active_max",
        "vt_watermark",
        "vt_policy",
        "bytes_rt",
        "bytes_ls",
    )

    def __init__(
        self,
        name: Any,
        parent: Optional["HFSCClass"],
        rt_spec: Optional[ServiceCurve],
        ls_spec: Optional[ServiceCurve],
        ul_spec: Optional[ServiceCurve],
    ):
        self.name = name
        self.parent = parent
        self.children: List["HFSCClass"] = []
        # Creation order, assigned by the scheduler; the deterministic
        # stand-in for the allocation-order tie-break of the original
        # selection loop (see _link_sharing_select).
        self.index = 0
        # Number of direct children carrying an upper-limit curve; lets
        # the link-sharing descent skip the fit-time filter at nodes with
        # no upper-limited children.
        self.ul_children = 0
        self.rt_spec = rt_spec
        self.ls_spec = ls_spec
        self.ul_spec = ul_spec
        # Leaf / real-time state (Fig. 5).
        self.queue: Deque[Packet] = deque()
        self.cumul_rt = 0.0  # c_i: service received under the rt criterion
        self.deadline_curve: Optional[RuntimeCurve] = None
        self.eligible_curve: Optional[RuntimeCurve] = None
        self.eligible = 0.0
        self.deadline = 0.0
        # Link-sharing state (Fig. 6).
        self.total_work = 0.0  # w_i: total service, both criteria
        self.virtual_curve: Optional[RuntimeCurve] = None
        self.vt = 0.0
        # Upper-limit state (extension).
        self.ul_curve: Optional[RuntimeCurve] = None
        self.fit_time = 0.0
        # Interior bookkeeping.
        self.nactive = 0
        self.ls_active = False
        self.active_min: IndexedHeap["HFSCClass"] = IndexedHeap()
        self.active_max: IndexedHeap["HFSCClass"] = IndexedHeap()
        self.vt_watermark = 0.0
        self.vt_policy = "mean"
        # Measurement counters.
        self.bytes_rt = 0.0
        self.bytes_ls = 0.0

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def depth(self) -> int:
        node, depth = self, 0
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def system_vt(self) -> float:
        """System virtual time of this (interior) class, Section IV-C.

        The paper's choice is ``(v_min + v_max) / 2`` over active children
        (policy "mean"); "min" and "max" are the ablation alternatives.
        When no child is active, the watermark left by the last active
        period keeps virtual time monotonic across idle gaps.
        """
        if self.nactive == 0:
            return self.vt_watermark
        vmin = self.active_min.peek_key()
        vmax = -self.active_max.peek_key()
        if self.vt_policy == "min":
            return vmin
        if self.vt_policy == "max":
            return vmax
        return (vmin + vmax) / 2.0

    def __repr__(self) -> str:
        return f"HFSCClass({self.name!r})"


class HFSC(Scheduler):
    """Hierarchical Fair Service Curve packet scheduler.

    Parameters
    ----------
    link_rate:
        Output link capacity in bytes per second (the server's linear
        service curve).
    admission_control:
        When True (default) the scheduler verifies, lazily before the first
        packet after any topology change, that the sum of the leaves'
        real-time curves does not exceed the link rate (Section II).
    eligible_backend:
        ``"tree"`` (default) uses the augmented binary tree of Section V;
        ``"calendar"`` uses the calendar-queue + deadline-heap alternative
        the same section describes.  Identical semantics, different
        constants (see ``benchmarks/bench_ablation.py``).
    vt_policy:
        System virtual time for a class whose child activates:
        ``"mean"`` (default) is the paper's ``(v_min + v_max) / 2``;
        ``"min"`` and ``"max"`` are the alternatives Section IV-C notes
        make the sibling discrepancy grow with the fan-out (ablation).
    realtime:
        When False the real-time criterion is disabled entirely -- the
        scheduler degenerates to pure hierarchical virtual-time
        link-sharing.  This is an *ablation switch*: it demonstrates why
        the paper needs the real-time criterion (leaf curves get violated
        without it, cf. Section III-C).
    """

    def __init__(
        self,
        link_rate: float,
        admission_control: bool = True,
        eligible_backend: str = "tree",
        vt_policy: str = "mean",
        realtime: bool = True,
    ):
        super().__init__(link_rate)
        if vt_policy not in ("mean", "min", "max"):
            raise ConfigurationError(f"unknown vt_policy: {vt_policy!r}")
        self._admission_control = admission_control
        self._admission_checked = True
        self.vt_policy = vt_policy
        self.realtime_enabled = realtime
        self.root = HFSCClass(ROOT, None, None, ServiceCurve.linear(link_rate), None)
        self.root.vt_policy = vt_policy
        self._classes: Dict[Any, HFSCClass] = {ROOT: self.root}
        self._eligible = make_eligible_set(eligible_backend)
        self._ul_classes: List[HFSCClass] = []
        self._next_index = 1
        # Backlogged upper-limited leaves keyed by fit time, so
        # next_ready_time() needs the earliest future fit rather than a
        # scan of every upper-limited class.
        self._ul_wait: IndexedHeap[HFSCClass] = IndexedHeap()

    # -- hierarchy construction ---------------------------------------------

    def add_class(
        self,
        name: Any,
        parent: Any = ROOT,
        sc: Optional[ServiceCurve] = None,
        rt_sc: Optional[ServiceCurve] = None,
        ls_sc: Optional[ServiceCurve] = None,
        ul_sc: Optional[ServiceCurve] = None,
    ) -> HFSCClass:
        """Add a class under ``parent``.

        ``sc`` assigns the same curve for real-time and link-sharing (the
        paper's single-curve model); ``rt_sc`` / ``ls_sc`` override each
        role individually.  A class must end up with at least one role.
        Real-time curves are only meaningful on leaves; adding a child to a
        class with a real-time curve raises ``ConfigurationError``.
        """
        if name in self._classes:
            raise ConfigurationError(f"duplicate class name: {name!r}")
        if sc is not None and (rt_sc is not None or ls_sc is not None):
            raise ConfigurationError("pass either sc or rt_sc/ls_sc, not both")
        if sc is not None:
            rt_sc, ls_sc = sc, sc
        if rt_sc is None and ls_sc is None:
            raise ConfigurationError(f"class {name!r} needs a service curve")
        try:
            parent_cls = self._classes[parent]
        except KeyError:
            raise ConfigurationError(f"unknown parent class: {parent!r}") from None
        if parent_cls.rt_spec is not None:
            raise ConfigurationError(
                f"cannot add child to {parent!r}: it has a real-time curve "
                "(real-time service applies to leaf classes only)"
            )
        if parent_cls.queue:
            raise ConfigurationError(
                f"cannot add child to {parent!r}: it has queued packets"
            )
        if not parent_cls.is_root and parent_cls.ls_spec is None:
            raise ConfigurationError(
                f"interior class {parent!r} needs a link-sharing curve"
            )
        cls = HFSCClass(name, parent_cls, rt_sc, ls_sc, ul_sc)
        cls.vt_policy = self.vt_policy
        cls.index = self._next_index
        self._next_index += 1
        parent_cls.children.append(cls)
        self._classes[name] = cls
        if ul_sc is not None:
            self._ul_classes.append(cls)
            parent_cls.ul_children += 1
        self._admission_checked = False
        return cls

    def remove_class(self, name: Any) -> None:
        """Remove an idle leaf class (dynamic reconfiguration).

        Mirrors what the ALTQ/Linux implementations allow: a class can be
        deleted when it has no children and no queued packets.  Its
        accumulated state (curves, counters) is discarded; the bandwidth
        returns to the pool at the next admission check.
        """
        if name == ROOT:
            raise ConfigurationError("cannot remove the root class")
        try:
            cls = self._classes[name]
        except KeyError:
            raise ConfigurationError(f"unknown class: {name!r}") from None
        if cls.children:
            raise ConfigurationError(
                f"cannot remove {name!r}: it has child classes"
            )
        if cls.queue:
            raise ConfigurationError(
                f"cannot remove {name!r}: it has queued packets"
            )
        if cls.ls_active:
            self._passivate_ls(cls)
        assert cls.parent is not None
        cls.parent.children.remove(cls)
        del self._classes[name]
        if cls in self._ul_classes:
            self._ul_classes.remove(cls)
            cls.parent.ul_children -= 1
        if cls in self._ul_wait:
            self._ul_wait.remove(cls)
        self._admission_checked = False

    def __getitem__(self, name: Any) -> HFSCClass:
        return self._classes[name]

    def __contains__(self, name: Any) -> bool:
        return name in self._classes

    def classes(self) -> Iterable[HFSCClass]:
        return (cls for name, cls in self._classes.items() if name != ROOT)

    def leaf_classes(self) -> List[HFSCClass]:
        return [cls for cls in self.classes() if cls.is_leaf]

    def check_admission(self) -> None:
        """Raise :class:`AdmissionError` if the leaf rt curves overbook."""
        curves = [
            cls.rt_spec for cls in self.leaf_classes() if cls.rt_spec is not None
        ]
        if curves and not is_admissible(curves, self.link_rate):
            raise AdmissionError(
                "sum of leaf real-time service curves exceeds the link rate"
            )
        self._admission_checked = True

    # -- scheduler interface (Fig. 4) ----------------------------------------

    def enqueue(self, packet: Packet, now: float) -> None:
        cls = self._leaf_for(packet)
        if self._admission_control and not self._admission_checked:
            self.check_admission()
        self._note_enqueue(packet, now)
        cls.queue.append(packet)
        if len(cls.queue) == 1:
            self._activate(cls, now)

    def dequeue(self, now: float) -> Optional[Packet]:
        if self._backlog_packets == 0:
            return None
        leaf: Optional[HFSCClass] = None
        realtime = False
        if self.realtime_enabled:
            request = self._eligible.min_deadline_eligible(now)
            if request is not None:
                leaf = request[0]
                realtime = True
        if leaf is None:
            leaf = self._link_sharing_select(now)
        if leaf is None:
            # Only possible with rt-only leaves not yet eligible, or
            # upper-limited classes: the link stays idle until
            # next_ready_time (non-work-conserving, as in the authors'
            # implementation).
            return None
        return self._serve(leaf, realtime, now)

    def next_ready_time(self, now: float) -> Optional[float]:
        best = self._eligible.min_eligible()
        # The earliest *future* fit time among backlogged upper-limited
        # leaves: ``_ul_wait`` is keyed by fit time, so walk it in key
        # order and stop at the first entry beyond ``now`` (entries at or
        # before ``now`` are schedulable already and don't need a wakeup).
        for fit_time, _cls in self._ul_wait.iter_sorted():
            if fit_time > now:
                if best is None or fit_time < best:
                    best = fit_time
                break
        return best

    # -- measurement hooks ----------------------------------------------------

    def virtual_times(self, parent: Any = ROOT) -> Dict[Any, float]:
        """Virtual times of the active children of ``parent`` (analysis)."""
        parent_cls = self._classes[parent]
        return {child.name: child.vt for child in parent_cls.active_min}

    def work_of(self, name: Any) -> float:
        """Total link-sharing-tracked service of a class, in bytes."""
        return self._classes[name].total_work

    def check_invariants(self) -> None:
        """Verify internal consistency (used by the property tests).

        Checks: active/passive bookkeeping matches queue contents, heap
        membership matches activity, per-class byte accounting sums to the
        scheduler totals, and rt service never exceeds total service.
        """
        total_backlog_packets = 0
        total_backlog_bytes = 0.0
        # One ancestor walk per backlogged leaf marks every interior class
        # with backlogged descendants (the old per-interior leaf scan was
        # quadratic in the class count).
        with_backlog: Set[HFSCClass] = set()
        for cls in self.classes():
            if cls.is_leaf and cls.queue:
                node: Optional[HFSCClass] = cls
                while node is not None and node not in with_backlog:
                    with_backlog.add(node)
                    node = node.parent
        for cls in self.classes():
            if cls.is_leaf:
                total_backlog_packets += len(cls.queue)
                total_backlog_bytes += sum(p.size for p in cls.queue)
                if cls.rt_spec is not None and self.realtime_enabled:
                    in_set = cls in self._eligible
                    assert in_set == bool(cls.queue), (
                        f"{cls.name!r}: eligible-set membership inconsistent"
                    )
                assert cls.cumul_rt <= cls.total_work + 1e-6, (
                    f"{cls.name!r}: rt service exceeds total service"
                )
                if cls.ul_spec is not None:
                    in_wait = cls in self._ul_wait
                    expect = cls.ul_curve is not None and bool(cls.queue)
                    assert in_wait == expect, (
                        f"{cls.name!r}: _ul_wait membership inconsistent"
                    )
                has_backlog = bool(cls.queue)
            else:
                has_backlog = cls in with_backlog
                assert cls.nactive == sum(
                    1 for child in cls.children if child.ls_active
                ), f"{cls.name!r}: nactive count stale"
            if cls.ls_spec is not None:
                parent = cls.parent
                assert parent is not None
                in_heaps = cls in parent.active_min
                assert in_heaps == cls.ls_active, (
                    f"{cls.name!r}: heap membership != ls_active"
                )
                assert (cls in parent.active_max) == cls.ls_active
                if cls.ls_active and cls.is_leaf:
                    assert has_backlog, f"{cls.name!r}: active but empty"
        assert total_backlog_packets == self._backlog_packets
        assert abs(total_backlog_bytes - self._backlog_bytes) < 1e-6

    # -- internals -------------------------------------------------------------

    def _leaf_for(self, packet: Packet) -> HFSCClass:
        try:
            cls = self._classes[packet.class_id]
        except KeyError:
            raise ConfigurationError(
                f"packet for unknown class {packet.class_id!r}"
            ) from None
        if not cls.is_leaf or cls.is_root:
            raise ConfigurationError(
                f"packets may only be queued on leaf classes, not {cls.name!r}"
            )
        return cls

    def _activate(self, leaf: HFSCClass, now: float) -> None:
        """Fig. 5(a) update_ed + Fig. 6 update_v on passive->active."""
        if leaf.rt_spec is not None and self.realtime_enabled:
            spec = leaf.rt_spec
            if leaf.deadline_curve is None:
                leaf.deadline_curve = RuntimeCurve.from_spec(spec, now, leaf.cumul_rt)
                leaf.eligible_curve = RuntimeCurve.from_spec(
                    eligible_spec(spec), now, leaf.cumul_rt
                )
            else:
                leaf.deadline_curve.min_with(spec, now, leaf.cumul_rt)
                assert leaf.eligible_curve is not None
                leaf.eligible_curve.min_with(eligible_spec(spec), now, leaf.cumul_rt)
            leaf.eligible = leaf.eligible_curve.inverse(leaf.cumul_rt)
            leaf.deadline = leaf.deadline_curve.inverse(
                leaf.cumul_rt + leaf.queue[0].size
            )
            self._eligible.insert(leaf, leaf.eligible, leaf.deadline)
        if leaf.ul_spec is not None:
            if leaf.ul_curve is None:
                leaf.ul_curve = RuntimeCurve.from_spec(leaf.ul_spec, now, leaf.total_work)
            else:
                leaf.ul_curve.min_with(leaf.ul_spec, now, leaf.total_work)
            leaf.fit_time = leaf.ul_curve.inverse(leaf.total_work)
            self._ul_wait.push(leaf, leaf.fit_time)
        if leaf.ls_spec is not None:
            self._activate_ls(leaf)

    def _activate_ls(self, cls: HFSCClass) -> None:
        """Walk up the tree activating classes (eq. 12 at each level)."""
        node = cls
        while node.parent is not None:
            parent = node.parent
            parent_was_active = parent.nactive > 0
            pvt = parent.system_vt()
            assert node.ls_spec is not None
            if node.virtual_curve is None:
                node.virtual_curve = RuntimeCurve.from_spec(
                    node.ls_spec, pvt, node.total_work
                )
            else:
                node.virtual_curve.min_with(node.ls_spec, pvt, node.total_work)
            node.vt = node.virtual_curve.inverse(node.total_work)
            node.ls_active = True
            parent.active_min.push(node, node.vt)
            parent.active_max.push(node, -node.vt)
            parent.nactive += 1
            if parent_was_active or parent.is_root:
                break
            node = parent

    def _passivate_ls(self, cls: HFSCClass) -> None:
        node = cls
        while node.parent is not None:
            parent = node.parent
            parent.active_min.remove(node)
            parent.active_max.remove(node)
            parent.nactive -= 1
            parent.vt_watermark = max(parent.vt_watermark, node.vt)
            node.ls_active = False
            if parent.nactive > 0 or parent.is_root:
                break
            node = parent

    def _link_sharing_select(self, now: float) -> Optional[HFSCClass]:
        """Smallest-virtual-time descent from the root (Fig. 4).

        Without upper limits this is a straight heap-peek descent, O(1)
        per level.  With upper limits in the hierarchy, classes whose fit
        time lies in the future must be skipped (extension); the original
        implementation sorted every sibling set on the way down, making
        each dequeue linear in the fan-out.  Here each level peeks the
        heap and falls back to a lazy in-order walk
        (:meth:`IndexedHeap.iter_sorted`) only when the minimum is tied or
        unfit, so the cost is O(log n) plus the number of skipped
        children.

        Virtual-time ties are broken by class creation order
        (``HFSCClass.index``).  The original loop used ``id()``, i.e.
        allocation order, which equals creation order for classes built in
        one pass but is not stable across processes; pinning the explicit
        index keeps schedules reproducible.
        """
        node = self.root
        if not self._ul_classes:
            while node.nactive > 0:
                node = node.active_min.peek_item()
        else:
            while node.nactive > 0:
                heap = node.active_min
                if not heap.min_is_tied():
                    child = heap.peek_item()
                    if child.ul_curve is None or child.fit_time <= now:
                        node = child
                        continue
                chosen = None
                need_fit = node.ul_children > 0
                group: List[HFSCClass] = []
                group_vt: Optional[float] = None
                for vt, child in heap.iter_sorted():
                    if vt != group_vt and group:
                        chosen = self._first_fit(group, need_fit, now)
                        if chosen is not None:
                            break
                        group.clear()
                    group_vt = vt
                    group.append(child)
                else:
                    chosen = self._first_fit(group, need_fit, now)
                if chosen is None:
                    return None
                node = chosen
        if node.is_root:
            return None
        if not node.queue:
            raise RuntimeError(
                f"link-sharing descent reached empty class {node.name!r}"
            )
        return node

    @staticmethod
    def _first_fit(
        group: List[HFSCClass], need_fit: bool, now: float
    ) -> Optional[HFSCClass]:
        """Earliest-created fitting class in an equal-virtual-time group."""
        if len(group) > 1:
            group.sort(key=_creation_index)
        if not need_fit:
            return group[0]
        for child in group:
            if child.ul_curve is None or child.fit_time <= now:
                return child
        return None

    def _serve(self, leaf: HFSCClass, realtime: bool, now: float) -> Packet:
        queue = leaf.queue
        packet = queue.popleft()
        packet.via_realtime = realtime
        rt_tracked = leaf.rt_spec is not None and self.realtime_enabled
        packet.deadline = leaf.deadline if rt_tracked else None
        self._note_dequeue(packet, now)
        size = packet.size
        if realtime:
            leaf.cumul_rt += size
            leaf.bytes_rt += size
        else:
            leaf.bytes_ls += size
        backlogged = bool(queue)
        # Fig. 6 update_v: the leaf and all its ancestors account the
        # service and advance their virtual times.  When the leaf's queue
        # just emptied, the nodes _passivate_ls is about to remove from
        # their parents' heaps skip the heap re-keying (their virtual
        # times still advance -- the passivation watermark reads them).
        if leaf.ls_spec is not None:
            node: HFSCClass = leaf
            dying = not backlogged
            while True:
                parent = node.parent
                if parent is None:
                    node.total_work += size  # the root's aggregate counter
                    break
                node.total_work += size
                node.vt = node.virtual_curve.inverse(node.total_work)
                if dying:
                    dying = parent.nactive == 1 and not parent.is_root
                else:
                    parent.active_min.update(node, node.vt)
                    parent.active_max.update(node, -node.vt)
                node = parent
        else:
            leaf.total_work += size
        if leaf.ul_curve is not None:
            leaf.fit_time = leaf.ul_curve.inverse(leaf.total_work)
            if backlogged:
                self._ul_wait.update(leaf, leaf.fit_time)
            else:
                self._ul_wait.remove(leaf)
        if backlogged:
            if rt_tracked:
                # Fig. 5: after real-time service both e and d move (c
                # changed); after link-sharing service only the deadline is
                # recomputed for the (possibly different-sized) new head.
                if realtime:
                    leaf.eligible = leaf.eligible_curve.inverse(leaf.cumul_rt)
                leaf.deadline = leaf.deadline_curve.inverse(
                    leaf.cumul_rt + queue[0].size
                )
                self._eligible.update(leaf, leaf.eligible, leaf.deadline)
        else:
            if rt_tracked:
                self._eligible.remove(leaf)
            if leaf.ls_spec is not None:
                self._passivate_ls(leaf)
        return packet


#: Backwards-friendly alias matching the paper's name for the algorithm.
HFSCScheduler = HFSC
