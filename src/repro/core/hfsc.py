"""The Hierarchical Fair Service Curve scheduler (Section IV of the paper).

H-FSC schedules a class hierarchy over one output link using two criteria:

* **Real-time criterion** -- guarantees the service curves of leaf classes.
  Each active leaf carries an *eligible time* ``e`` and a *deadline* ``d``
  computed from its eligible and deadline curves (Section IV-B, Fig. 5).
  Whenever some leaf is eligible (``e <= now``), the eligible leaf with the
  smallest deadline is served and its real-time service counter ``c``
  advances.

* **Link-sharing criterion** -- approximates the ideal fair service curve
  link-sharing model.  Every class carries a *virtual time* ``v`` derived
  from its virtual curve (Section IV-C, Fig. 6); when no leaf is eligible,
  the scheduler walks from the root picking the active child with the
  smallest virtual time until it reaches a leaf.  Link-sharing service does
  **not** advance ``c``, which is exactly why a class that borrowed excess
  bandwidth is never punished: its future deadlines are unaffected
  (Section IV-B, "the essence of the nonpunishment aspect").

The implementation follows the paper's pseudo-code (Figs. 4-6) and the O(1)
two-piece curve machinery of Section V.  Complexity is O(log n) per packet
arrival and departure: the real-time request set is the augmented tree of
:mod:`repro.util.eligible_tree`, and each interior class keeps indexed heaps
over its active children's virtual times.

Extensions beyond the paper, both off by default and marked in the API:

* separate real-time (``rt_sc``) and link-sharing (``ls_sc``) curves per
  class, as in the authors' ALTQ implementation and Linux ``sch_hfsc``
  (passing ``sc`` sets both, which is the paper's model);
* an optional upper-limit curve (``ul_sc``) capping a class's total
  service, as in Linux ``sch_hfsc`` (makes the scheduler
  non-work-conserving for that class).
"""

from __future__ import annotations

import math
from collections import deque
from operator import attrgetter
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Set

from repro.core.admission import uniform_admissible_scale
from repro.core.curves import ServiceCurve, is_admissible
from repro.core.errors import (
    ConfigurationError,
    OverloadError,
    ReconfigurationError,
    SnapshotError,
)
from repro.core import flatstate as _flat
from repro.core.flatstate import (
    NAN,
    CurveView,
    FlatEligibleSet,
    FlatState,
    HeapView,
    heap_iter_sorted,
)
from repro.core.runtime_curves import RuntimeCurve, eligible_spec
from repro.obs.core import TELEMETRY as _TELEM
from repro.schedulers.base import Scheduler
from repro.sim.packet import Packet
from repro.util.eligible_set import make_eligible_set
from repro.util.heap import IndexedHeap

ROOT = "__root__"

#: vt_policy strings -> flatstate codes (kernels take the int).
_POLICY_CODES = {
    "mean": _flat.VT_MEAN,
    "min": _flat.VT_MIN,
    "max": _flat.VT_MAX,
}

#: Sort key for virtual-time tie groups in the link-sharing descent.
_creation_index = attrgetter("index")

#: Sentinel for "leave this curve unchanged" in :meth:`HFSC.update_class`
#: (``None`` there means "remove the curve").
UNCHANGED = object()

#: Valid values for ``HFSC(overload_policy=...)``.
OVERLOAD_POLICIES = ("raise", "reject", "scale-rt", "linkshare-only")


# -- snapshot codec helpers (shared with repro.persist) ----------------------

def _sc_doc(spec: Optional[ServiceCurve]):
    """ServiceCurve -> JSON-able triple (or None)."""
    return None if spec is None else [spec.m1, spec.d, spec.m2]


def _sc_from(doc) -> Optional[ServiceCurve]:
    if doc is None:
        return None
    try:
        m1, d, m2 = doc
        return ServiceCurve(m1, d, m2)
    except (TypeError, ValueError, ConfigurationError) as exc:
        raise SnapshotError(
            f"malformed service-curve document {doc!r}: {exc}",
            reason="bad-curve",
        ) from exc


def _rc_doc(curve: Optional[RuntimeCurve]):
    return None if curve is None else list(curve.to_doc())


def _rc_from(doc) -> Optional[RuntimeCurve]:
    if doc is None:
        return None
    try:
        return RuntimeCurve.from_doc(doc)
    except (TypeError, ValueError) as exc:
        raise SnapshotError(
            f"malformed runtime-curve document {doc!r}: {exc}",
            reason="bad-curve",
        ) from exc


def _require_keys(doc: Any, keys: Iterable[Any], what: str) -> None:
    """Strict field check: unknown *and* missing keys are refused."""
    if not isinstance(doc, dict):
        raise SnapshotError(
            f"{what}: expected a mapping, got {type(doc).__name__}",
            reason="bad-document",
        )
    expected = frozenset(keys)
    present = frozenset(doc)
    if present != expected:
        unknown = sorted(str(k) for k in present - expected)
        missing = sorted(str(k) for k in expected - present)
        raise SnapshotError(
            f"{what}: unknown fields {unknown}, missing fields {missing}",
            reason="unknown-field" if unknown else "missing-field",
            context={"unknown": unknown, "missing": missing},
        )


def _scalar_prop(arr_name: str, doc: str):
    """Read/write property over a per-slot float or int array cell."""

    def fget(self):
        return getattr(self.state, arr_name)[self.slot]

    def fset(self, value):
        getattr(self.state, arr_name)[self.slot] = value

    return property(fget, fset, doc=doc)


def _flag_prop(arr_name: str, doc: str):
    """Read/write bool property over a per-slot byte array cell."""

    def fget(self):
        return bool(getattr(self.state, arr_name)[self.slot])

    def fset(self, value):
        getattr(self.state, arr_name)[self.slot] = 1 if value else 0

    return property(fget, fset, doc=doc)


def _curve_prop(kind: str, doc: str):
    """RuntimeCurve-valued property backed by the flat curve arrays.

    Reading yields a :class:`~repro.core.flatstate.CurveView` (or None
    when the curve is absent); assigning a RuntimeCurve/CurveView copies
    its parameters into the arrays, assigning None clears the presence
    flag.  The knee memo is reset on assignment -- it is a pure cache and
    never serialized, so recomputing it is value-neutral.
    """

    on_name = kind + "_on"

    def fget(self):
        if getattr(self.state, on_name)[self.slot]:
            return CurveView(self.state, kind, self.slot)
        return None

    def fset(self, curve):
        state = self.state
        slot = self.slot
        if curve is None:
            getattr(state, on_name)[slot] = 0
            return
        getattr(state, kind + "_x0")[slot] = curve.x0
        getattr(state, kind + "_y0")[slot] = curve.y0
        getattr(state, kind + "_m1")[slot] = curve.m1
        getattr(state, kind + "_dx")[slot] = curve.dx
        getattr(state, kind + "_m2")[slot] = curve.m2
        getattr(state, kind + "_ky")[slot] = NAN
        getattr(state, on_name)[slot] = 1

    return property(fget, fset, doc=doc)


class HFSCClass:
    """One node of the link-sharing hierarchy.

    Users obtain instances from :meth:`HFSC.add_class`; the attributes are
    read-only state exposed for measurement (experiments read ``vt``,
    ``cumul_rt``, ``total_work`` and the byte counters).

    Since the flat-state refactor this object is a *façade*: every hot
    numeric quantity lives in the scheduler's shared
    :class:`~repro.core.flatstate.FlatState` arrays at ``self.slot``, and
    the historical attributes are properties over those cells.  Curves
    read as :class:`~repro.core.flatstate.CurveView` and the per-parent
    activity heaps as :class:`~repro.core.flatstate.HeapView`, both
    API-compatible with the objects they replaced.  Only identity-bound
    state (name, tree links, the packet queue, configured specs) stays on
    the object.
    """

    __slots__ = (
        "name",
        "parent",
        "children",
        "queue",
        "rt_requested",
        "vt_policy",
        "state",
        "slot",
        "_rt_spec",
        "_ls_spec",
        "_ul_spec",
    )

    def __init__(
        self,
        name: Any,
        parent: Optional["HFSCClass"],
        rt_spec: Optional[ServiceCurve],
        ls_spec: Optional[ServiceCurve],
        ul_spec: Optional[ServiceCurve],
        state: Optional[FlatState] = None,
    ):
        self.name = name
        self.parent = parent
        self.children: List["HFSCClass"] = []
        self.queue: Deque[Packet] = deque()
        self.vt_policy = "mean"
        if state is None:
            # Standalone construction (tests); schedulers pass their
            # shared state so kernels can walk parent links by slot.
            state = FlatState(1)
        self.state = state
        self.slot = state.alloc(self)
        if parent is not None:
            state.parent[self.slot] = parent.slot
        self._rt_spec: Optional[ServiceCurve] = None
        self._ls_spec: Optional[ServiceCurve] = None
        self._ul_spec: Optional[ServiceCurve] = None
        self.rt_spec = rt_spec
        # The curve the user asked for; ``rt_spec`` is the *effective*
        # curve, which the "scale-rt" overload policy may derate.
        self.rt_requested = rt_spec
        self.ls_spec = ls_spec
        self.ul_spec = ul_spec

    # -- spec properties: object of record + flat mirrors -------------------
    #
    # The ServiceCurve objects remain authoritative for snapshots and
    # comparisons; each assignment mirrors the (m1, d, m2) triple -- plus,
    # for the real-time role, the derived eligible spec -- into the flat
    # arrays so the activation kernels never touch the objects.

    @property
    def rt_spec(self) -> Optional[ServiceCurve]:
        return self._rt_spec

    @rt_spec.setter
    def rt_spec(self, spec: Optional[ServiceCurve]) -> None:
        self._rt_spec = spec
        state = self.state
        slot = self.slot
        if spec is None:
            state.rt_on[slot] = 0
        else:
            state.rt_on[slot] = 1
            state.rt_m1[slot] = spec.m1
            state.rt_d[slot] = spec.d
            state.rt_m2[slot] = spec.m2
            es = eligible_spec(spec)
            state.es_m1[slot] = es.m1
            state.es_d[slot] = es.d
            state.es_m2[slot] = es.m2

    @property
    def ls_spec(self) -> Optional[ServiceCurve]:
        return self._ls_spec

    @ls_spec.setter
    def ls_spec(self, spec: Optional[ServiceCurve]) -> None:
        self._ls_spec = spec
        state = self.state
        slot = self.slot
        if spec is None:
            state.ls_on[slot] = 0
        else:
            state.ls_on[slot] = 1
            state.ls_m1[slot] = spec.m1
            state.ls_d[slot] = spec.d
            state.ls_m2[slot] = spec.m2

    @property
    def ul_spec(self) -> Optional[ServiceCurve]:
        return self._ul_spec

    @ul_spec.setter
    def ul_spec(self, spec: Optional[ServiceCurve]) -> None:
        self._ul_spec = spec
        state = self.state
        slot = self.slot
        if spec is None:
            state.ulsp_on[slot] = 0
        else:
            state.ulsp_on[slot] = 1
            state.ulsp_m1[slot] = spec.m1
            state.ulsp_d[slot] = spec.d
            state.ulsp_m2[slot] = spec.m2

    # -- flat-backed attributes --------------------------------------------

    index = _scalar_prop("index", "Creation order (vt tie-break key).")
    ul_children = _scalar_prop(
        "ul_children", "Direct children carrying an upper-limit curve.")
    nactive = _scalar_prop("nactive", "Number of link-sharing-active children.")
    rt_admitted = _flag_prop(
        "rt_adm",
        "False when the 'reject' overload policy stripped the rt guarantee.")
    ls_active = _flag_prop("ls_active", "Member of the parent's active set?")
    cumul_rt = _scalar_prop(
        "cumul_rt", "c_i: service received under the rt criterion.")
    total_work = _scalar_prop("total_work", "w_i: total service, both criteria.")
    vt = _scalar_prop("vt", "Virtual time (Fig. 6).")
    eligible = _scalar_prop("eligible", "Eligible time (Fig. 5).")
    deadline = _scalar_prop("deadline", "Deadline (Fig. 5).")
    fit_time = _scalar_prop("fit_time", "Upper-limit fit time (extension).")
    vt_watermark = _scalar_prop(
        "vt_watermark", "System vt floor left by the last active period.")
    bytes_rt = _scalar_prop("bytes_rt", "Bytes served via the rt criterion.")
    bytes_ls = _scalar_prop("bytes_ls", "Bytes served via link-sharing.")

    deadline_curve = _curve_prop("dc", "Deadline curve D_i (Fig. 5).")
    eligible_curve = _curve_prop("ec", "Eligible curve E_i (Fig. 5).")
    virtual_curve = _curve_prop("vc", "Virtual curve V_i (Fig. 6).")
    ul_curve = _curve_prop("ul", "Upper-limit curve (extension).")

    @property
    def active_min(self) -> HeapView:
        """Min-heap view over active children's virtual times."""
        return HeapView(self.state, self.slot, True)

    @property
    def active_max(self) -> HeapView:
        """Max-heap view (negated keys) over active children's vts."""
        return HeapView(self.state, self.slot, False)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def depth(self) -> int:
        node, depth = self, 0
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def system_vt(self) -> float:
        """System virtual time of this (interior) class, Section IV-C.

        The paper's choice is ``(v_min + v_max) / 2`` over active children
        (policy "mean"); "min" and "max" are the ablation alternatives.
        When no child is active, the watermark left by the last active
        period keeps virtual time monotonic across idle gaps.
        """
        return _flat.system_vt(
            self.state, self.slot, _POLICY_CODES[self.vt_policy]
        )

    def _detach(self) -> None:
        """Move this class onto a private one-slot state (on removal).

        Frees the shared slot for reuse while keeping every scalar
        readable at its final value, so stale external handles (e.g. a
        measurement loop holding a drained class) behave exactly as they
        did when removed classes kept their own attributes.
        """
        private = FlatState(1)
        slot = private.adopt_slot(self.state, self.slot)
        private.obj[slot] = self
        self.state.free(self.slot)
        self.state = private
        self.slot = slot

    def __repr__(self) -> str:
        return f"HFSCClass({self.name!r})"


class HFSC(Scheduler):
    """Hierarchical Fair Service Curve packet scheduler.

    Parameters
    ----------
    link_rate:
        Output link capacity in bytes per second (the server's linear
        service curve).
    admission_control:
        When True (default) the scheduler verifies, lazily before the first
        packet after any topology change, that the sum of the leaves'
        real-time curves does not exceed the link rate (Section II).
    eligible_backend:
        ``"heap"`` (default) keeps the requests in flat future/ready
        heaps inside the shared :class:`~repro.core.flatstate.FlatState`
        (the calendar-variant semantics of Section V without the object
        churn); ``"tree"`` uses the augmented binary tree of Section V;
        ``"calendar"`` uses the calendar-queue + deadline-heap
        alternative the same section describes.  Identical semantics
        away from exact deadline ties, different constants (see
        ``benchmarks/bench_ablation.py``).
    vt_policy:
        System virtual time for a class whose child activates:
        ``"mean"`` (default) is the paper's ``(v_min + v_max) / 2``;
        ``"min"`` and ``"max"`` are the alternatives Section IV-C notes
        make the sibling discrepancy grow with the fan-out (ablation).
    realtime:
        When False the real-time criterion is disabled entirely -- the
        scheduler degenerates to pure hierarchical virtual-time
        link-sharing.  This is an *ablation switch*: it demonstrates why
        the paper needs the real-time criterion (leaf curves get violated
        without it, cf. Section III-C).
    overload_policy:
        What to do when live reconfiguration (class churn,
        :meth:`set_link_rate`) makes the leaf real-time set inadmissible:

        * ``"raise"`` (default) -- raise :class:`OverloadError` from the
          next ``enqueue`` (the seed behaviour, now with structured
          context on the exception);
        * ``"reject"`` -- strip the real-time guarantee of the newest
          classes until the remainder fits; stripped classes degrade to
          link-sharing-only service and are re-admitted automatically
          when capacity returns;
        * ``"scale-rt"`` -- derate every leaf's real-time curve by the
          largest uniform factor that fits (proportional degradation);
        * ``"linkshare-only"`` -- suspend the real-time criterion
          globally until the set is admissible again.

        Every degradation is recorded in :attr:`overload_events`.
    """

    def __init__(
        self,
        link_rate: float,
        admission_control: bool = True,
        eligible_backend: str = "heap",
        vt_policy: str = "mean",
        realtime: bool = True,
        overload_policy: str = "raise",
    ):
        super().__init__(link_rate)
        if vt_policy not in ("mean", "min", "max"):
            raise ConfigurationError(f"unknown vt_policy: {vt_policy!r}")
        if overload_policy not in OVERLOAD_POLICIES:
            raise ConfigurationError(
                f"unknown overload_policy: {overload_policy!r} "
                f"(expected one of {OVERLOAD_POLICIES})"
            )
        self._admission_control = admission_control
        self._admission_checked = True
        self.vt_policy = vt_policy
        self._policy_code = _POLICY_CODES[vt_policy]
        self.realtime_enabled = realtime
        self.overload_policy = overload_policy
        #: True while the "linkshare-only" policy has the real-time
        #: criterion suspended because the leaf set is inadmissible.
        self.rt_suspended = False
        #: Structured record of every degradation the overload policy
        #: applied (dicts with "policy", "time"-free details; append-only).
        self.overload_events: List[Dict[str, Any]] = []
        #: Shared flat array-of-struct state for every class in this
        #: hierarchy (see repro.core.flatstate).
        self._flat = FlatState()
        self.root = HFSCClass(ROOT, None, None, ServiceCurve.linear(link_rate),
                              None, state=self._flat)
        self.root.vt_policy = vt_policy
        self._classes: Dict[Any, HFSCClass] = {ROOT: self.root}
        self._eligible_backend = eligible_backend
        self._eligible = self._make_eligible_set()
        # The heap backend lives in the flat arrays, so the hot path can
        # call its kernels with slot ids instead of the object protocol.
        self._flat_elig = eligible_backend == "heap"
        self._ul_classes: Set[HFSCClass] = set()
        self._next_index = 1
        # Backlogged upper-limited leaves keyed by fit time, so
        # next_ready_time() needs the earliest future fit rather than a
        # scan of every upper-limited class.
        self._ul_wait: IndexedHeap[HFSCClass] = IndexedHeap()

    def _make_eligible_set(self):
        """Fresh (empty) eligible set for the configured backend.

        The "heap" backend lives inside the shared flat state, so it is
        built here rather than in :func:`make_eligible_set` (which has no
        access to ``self._flat``); constructing it clears any previous
        membership.
        """
        if self._eligible_backend == "heap":
            return FlatEligibleSet(self._flat)
        return make_eligible_set(self._eligible_backend)

    # -- hierarchy construction ---------------------------------------------

    def add_class(
        self,
        name: Any,
        parent: Any = ROOT,
        sc: Optional[ServiceCurve] = None,
        rt_sc: Optional[ServiceCurve] = None,
        ls_sc: Optional[ServiceCurve] = None,
        ul_sc: Optional[ServiceCurve] = None,
    ) -> HFSCClass:
        """Add a class under ``parent``.

        ``sc`` assigns the same curve for real-time and link-sharing (the
        paper's single-curve model); ``rt_sc`` / ``ls_sc`` override each
        role individually.  A class must end up with at least one role.
        Real-time curves are only meaningful on leaves; adding a child to a
        class with a real-time curve raises ``ConfigurationError``.
        """
        if name in self._classes:
            raise ConfigurationError(f"duplicate class name: {name!r}")
        if sc is not None and (rt_sc is not None or ls_sc is not None):
            raise ConfigurationError("pass either sc or rt_sc/ls_sc, not both")
        if sc is not None:
            rt_sc, ls_sc = sc, sc
        if rt_sc is None and ls_sc is None:
            raise ConfigurationError(f"class {name!r} needs a service curve")
        try:
            parent_cls = self._classes[parent]
        except KeyError:
            raise ConfigurationError(f"unknown parent class: {parent!r}") from None
        if parent_cls.rt_spec is not None:
            raise ConfigurationError(
                f"cannot add child to {parent!r}: it has a real-time curve "
                "(real-time service applies to leaf classes only)"
            )
        if parent_cls.queue:
            raise ConfigurationError(
                f"cannot add child to {parent!r}: it has queued packets"
            )
        if not parent_cls.is_root and parent_cls.ls_spec is None:
            raise ConfigurationError(
                f"interior class {parent!r} needs a link-sharing curve"
            )
        cls = HFSCClass(name, parent_cls, rt_sc, ls_sc, ul_sc, state=self._flat)
        cls.vt_policy = self.vt_policy
        cls.index = self._next_index
        self._next_index += 1
        parent_cls.children.append(cls)
        self._classes[name] = cls
        if ul_sc is not None:
            self._ul_classes.add(cls)
            parent_cls.ul_children += 1
        self._admission_checked = False
        if _TELEM.enabled:
            _TELEM.on_reconfig(None, "add-class", name, {"parent": str(parent)})
        return cls

    def remove_class(self, name: Any, force: bool = False) -> List[Packet]:
        """Remove a class (dynamic reconfiguration); returns drained packets.

        Without ``force`` this mirrors what the ALTQ/Linux implementations
        allow: a class can be deleted only when it has no children and no
        queued packets (the returned list is then empty).  With
        ``force=True`` the whole subtree is removed even while backlogged:
        queued packets are drained and *returned* to the caller (counted
        in ``total_returned``, never as served), active ancestors are
        passivated, and every derived structure (eligible set, upper-limit
        wait heap, virtual-time heaps) is left consistent.  The bandwidth
        returns to the pool at the next admission check.
        """
        if name == ROOT:
            raise ReconfigurationError(
                "cannot remove the root class",
                operation="remove_class", class_id=name, reason="root",
            )
        try:
            cls = self._classes[name]
        except KeyError:
            raise ReconfigurationError(
                f"unknown class: {name!r}",
                operation="remove_class", class_id=name, reason="unknown-class",
            ) from None
        if cls.children and not force:
            raise ReconfigurationError(
                f"cannot remove {name!r}: it has child classes",
                operation="remove_class", class_id=name, reason="has-children",
            )
        if cls.queue and not force:
            raise ReconfigurationError(
                f"cannot remove {name!r}: it has queued packets",
                operation="remove_class", class_id=name, reason="queued-packets",
            )
        drained: List[Packet] = []
        # Post-order: leaves drain (and cascade passivation up through the
        # subtree) before their parents are unlinked.
        for node in self._subtree_postorder(cls):
            drained.extend(self._drain_leaf(node))
            self._unlink(node)
        self._admission_checked = False
        if _TELEM.enabled:
            _TELEM.on_reconfig(None, "remove-class", name,
                               {"force": force, "drained": len(drained)})
        return drained

    def update_class(
        self,
        name: Any,
        now: float,
        sc: Any = UNCHANGED,
        rt_sc: Any = UNCHANGED,
        ls_sc: Any = UNCHANGED,
        ul_sc: Any = UNCHANGED,
    ) -> HFSCClass:
        """Change a class's curves live, even while it is backlogged.

        ``UNCHANGED`` (the default) leaves a role alone; ``None`` removes
        that curve.  Changed curves are re-anchored *fresh* at the current
        time / parent virtual time and the class's accumulated service --
        the history kept by the ``min_with`` machinery belongs to the old
        curve and would be meaningless under the new one.  Admission is
        re-checked lazily before the next packet, exactly as for
        :meth:`add_class` / :meth:`remove_class`.
        """
        if name == ROOT:
            raise ReconfigurationError(
                "cannot update the root class (use set_link_rate)",
                operation="update_class", class_id=name, reason="root",
            )
        try:
            cls = self._classes[name]
        except KeyError:
            raise ReconfigurationError(
                f"unknown class: {name!r}",
                operation="update_class", class_id=name, reason="unknown-class",
            ) from None
        if sc is not UNCHANGED:
            if rt_sc is not UNCHANGED or ls_sc is not UNCHANGED:
                raise ReconfigurationError(
                    "pass either sc or rt_sc/ls_sc, not both",
                    operation="update_class", class_id=name, reason="ambiguous-curves",
                )
            rt_sc, ls_sc = sc, sc
        new_rt = cls.rt_requested if rt_sc is UNCHANGED else rt_sc
        new_ls = cls.ls_spec if ls_sc is UNCHANGED else ls_sc
        new_ul = cls.ul_spec if ul_sc is UNCHANGED else ul_sc
        if new_ls is None and cls.children:
            raise ReconfigurationError(
                f"interior class {name!r} needs a link-sharing curve",
                operation="update_class", class_id=name, reason="ls-required",
            )
        if new_rt is None and new_ls is None:
            raise ReconfigurationError(
                f"class {name!r} needs a service curve",
                operation="update_class", class_id=name, reason="no-curves",
            )
        if new_rt is not None and not cls.is_leaf:
            raise ReconfigurationError(
                f"cannot give {name!r} a real-time curve: it has children",
                operation="update_class", class_id=name, reason="rt-on-interior",
            )
        if new_rt is not cls.rt_requested:
            cls.rt_requested = new_rt
            cls.rt_spec = new_rt
            cls.rt_admitted = True  # a fresh request; re-vetted lazily
            if new_rt is None:
                if cls in self._eligible:
                    self._eligible.remove(cls)
                cls.deadline_curve = None
                cls.eligible_curve = None
            else:
                self._reanchor_rt(cls, now)
        if new_ls is not cls.ls_spec:
            cls.ls_spec = new_ls
            if new_ls is None:
                if cls.ls_active:
                    self._passivate_ls(cls)
                cls.virtual_curve = None
            elif cls.ls_active:
                parent = cls.parent
                assert parent is not None
                pvt = parent.system_vt()
                cls.virtual_curve = RuntimeCurve.from_spec(
                    new_ls, pvt, cls.total_work
                )
                cls.vt = cls.virtual_curve.inverse(cls.total_work)
                parent.active_min.update(cls, cls.vt)
                parent.active_max.update(cls, -cls.vt)
            else:
                cls.virtual_curve = None
                if (cls.is_leaf and cls.queue) or cls.nactive > 0:
                    self._activate_ls(cls)
        if new_ul is not cls.ul_spec:
            old_ul = cls.ul_spec
            cls.ul_spec = new_ul
            parent = cls.parent
            assert parent is not None
            if old_ul is None and new_ul is not None:
                self._ul_classes.add(cls)
                parent.ul_children += 1
            elif old_ul is not None and new_ul is None:
                self._ul_classes.discard(cls)
                parent.ul_children -= 1
            cls.ul_curve = None
            cls.fit_time = 0.0
            if cls in self._ul_wait:
                self._ul_wait.remove(cls)
            if new_ul is not None and cls.is_leaf and cls.queue:
                cls.ul_curve = RuntimeCurve.from_spec(new_ul, now, cls.total_work)
                cls.fit_time = cls.ul_curve.inverse(cls.total_work)
                self._ul_wait.push(cls, cls.fit_time)
        self._admission_checked = False
        if _TELEM.enabled:
            _TELEM.on_reconfig(now, "update-class", name)
        return cls

    def set_link_rate(self, rate: float) -> None:
        """Change the output capacity live (rate flap / renegotiation).

        The root's fair-service curve follows the new rate and admission
        is re-checked lazily, so a rate *drop* below the admitted
        real-time demand triggers the configured overload policy.  The
        :class:`~repro.sim.link.Link` transmitting for this scheduler must
        be updated separately (``Link.set_rate``); the chaos injector does
        both together.
        """
        if rate <= 0:
            raise ReconfigurationError(
                "link rate must be positive",
                operation="set_link_rate", reason="non-positive-rate",
            )
        self.link_rate = float(rate)
        self.root.ls_spec = ServiceCurve.linear(rate)
        self._admission_checked = False
        if _TELEM.enabled:
            _TELEM.on_reconfig(None, "set-link-rate", None, {"rate": rate})

    def rebuild(self, now: float) -> None:
        """Reconstruct every piece of derived state from the queues.

        Recovery action for the watchdog: throws away heaps, the eligible
        set, runtime curves and virtual times, then re-activates every
        backlogged leaf at ``now`` exactly as if its backlog had just
        arrived.  Queue contents and cumulative service counters are the
        ground truth and are preserved; virtual-time watermarks absorb the
        old virtual times so link-sharing stays monotonic across the
        rebuild.
        """
        self._eligible = self._make_eligible_set()
        self._ul_wait = IndexedHeap()
        packets = 0
        size = 0.0
        for cls in self._classes.values():
            cls.active_min.clear()
            cls.active_max.clear()
            cls.nactive = 0
            if cls.virtual_curve is not None:
                cls.vt_watermark = max(cls.vt_watermark, cls.vt)
            cls.ls_active = False
            cls.deadline_curve = None
            cls.eligible_curve = None
            cls.virtual_curve = None
            cls.ul_curve = None
            cls.fit_time = 0.0
            if cls.is_leaf and not cls.is_root:
                packets += len(cls.queue)
                size += sum(p.size for p in cls.queue)
        self._backlog_packets = packets
        self._backlog_bytes = size
        for cls in self._classes.values():
            if cls.is_leaf and not cls.is_root and cls.queue:
                self._activate(cls, now)
        self._admission_checked = False
        if _TELEM.enabled:
            _TELEM.on_reconfig(now, "rebuild", None,
                               {"backlog_packets": packets})

    def __getitem__(self, name: Any) -> HFSCClass:
        return self._classes[name]

    def __contains__(self, name: Any) -> bool:
        return name in self._classes

    def classes(self) -> Iterable[HFSCClass]:
        return (cls for name, cls in self._classes.items() if name != ROOT)

    def leaf_classes(self) -> List[HFSCClass]:
        return [cls for cls in self.classes() if cls.is_leaf]

    def check_admission(self) -> None:
        """Raise :class:`OverloadError` if the leaf rt curves overbook.

        Pure check over the *requested* curves; the degradation policies
        are applied lazily on the enqueue path, not here.
        """
        leaves = [
            cls for cls in self.leaf_classes() if cls.rt_requested is not None
        ]
        curves = [cls.rt_requested for cls in leaves]
        if curves and not is_admissible(curves, self.link_rate):
            raise OverloadError(
                "sum of leaf real-time service curves exceeds the link rate",
                capacity=self.link_rate,
                demand_rate=sum(spec.m2 for spec in curves),
                classes=[cls.name for cls in leaves],
            )

    # -- scheduler interface (Fig. 4) ----------------------------------------

    def enqueue(self, packet: Packet, now: float) -> None:
        cls = self._leaf_for(packet)
        if self._admission_control and not self._admission_checked:
            self._ensure_admissible(now)
        self._note_enqueue(packet, now)
        cls.queue.append(packet)
        if len(cls.queue) == 1:
            self._activate(cls, now)

    def dequeue(self, now: float) -> Optional[Packet]:
        if self._backlog_packets == 0:
            return None
        leaf: Optional[HFSCClass] = None
        realtime = False
        if self.realtime_enabled and not self.rt_suspended:
            if self._flat_elig:
                state = self._flat
                slot = _flat.elig_query(state, now)
                if slot >= 0:
                    leaf = state.obj[slot]
                    realtime = True
            else:
                request = self._eligible.min_deadline_eligible(now)
                if request is not None:
                    leaf = request[0]
                    realtime = True
        if leaf is None:
            leaf = self._link_sharing_select(now)
        if leaf is None:
            # Only possible with rt-only leaves not yet eligible, or
            # upper-limited classes: the link stays idle until
            # next_ready_time (non-work-conserving, as in the authors'
            # implementation).
            return None
        return self._serve(leaf, realtime, now)

    def next_ready_time(self, now: float) -> Optional[float]:
        if self.realtime_enabled and not self.rt_suspended:
            best = self._eligible.min_eligible()
        else:
            best = None
        # The earliest *future* fit time among backlogged upper-limited
        # leaves: ``_ul_wait`` is keyed by fit time, so walk it in key
        # order and stop at the first entry beyond ``now`` (entries at or
        # before ``now`` are schedulable already and don't need a wakeup).
        for fit_time, _cls in self._ul_wait.iter_sorted():
            if fit_time > now:
                if best is None or fit_time < best:
                    best = fit_time
                break
        return best

    # -- batched hot path ------------------------------------------------------

    def enqueue_batch(self, packets, now: float) -> None:
        """Batched :meth:`enqueue`: many same-instant arrivals, one call.

        Call-for-call equivalent to the base-class loop (same per-packet
        order of leaf lookup, admission check, accounting, activation;
        same errors), with the per-packet frames inlined and the class
        table, telemetry guard and backlog counters hoisted.
        """
        if not packets:
            return
        classes = self._classes
        adm = self._admission_control
        telem = _TELEM
        telem_on = telem.enabled
        flat_elig = self._flat_elig
        state = self._flat
        activate_step = _flat.activate_step
        rt_on = state.rt_on
        rt_adm = state.rt_adm
        ulsp_on = state.ulsp_on
        fit_time = state.fit_time
        rt_enabled = self.realtime_enabled
        policy = self._policy_code
        n_packets = 0
        n_bytes = 0.0
        try:
            for packet in packets:
                cls = classes.get(packet.class_id)
                if cls is None or not cls.is_leaf or cls.is_root:
                    self._leaf_for(packet)  # raises the structured error
                if adm and not self._admission_checked:
                    self._ensure_admissible(now)
                packet.enqueued = now
                size = packet.size
                n_packets += 1
                n_bytes += size
                if telem_on:
                    telem.on_enqueue(packet.class_id, size, now)
                queue = cls.queue
                queue.append(packet)
                if len(queue) == 1:
                    if flat_elig:
                        # The _activate shell, inlined: the arriving
                        # packet is the head, so head_size == size.
                        slot = cls.slot
                        rt_tracked = (rt_on[slot] != 0 and rt_enabled
                                      and rt_adm[slot] != 0)
                        activate_step(state, slot, now, rt_tracked, size,
                                      policy)
                        if ulsp_on[slot]:
                            self._ul_wait.push(cls, fit_time[slot])
                    else:
                        self._activate(cls, now)
        finally:
            # Commit counters even when a packet mid-batch raises: the
            # earlier packets are enqueued, exactly as a caller's own
            # per-packet loop would leave them.
            self._backlog_packets += n_packets
            self._backlog_bytes += n_bytes
            self.total_enqueued += n_packets

    def dequeue_batch(self, now: float, max_packets: int) -> List[Packet]:
        """Batched :meth:`dequeue`: burst-serve at one instant.

        The real-time query, the serve bookkeeping and the eligible-set
        maintenance run inlined with the flat-state arrays and kernels
        bound once per batch; the link-sharing descent and every
        rarely-taken branch call the same helpers the per-packet path
        uses.  Legacy eligible-set backends take the base-class loop.
        """
        served: List[Packet] = []
        if max_packets <= 0 or self._backlog_packets == 0:
            return served
        if not self._flat_elig:
            return super().dequeue_batch(now, max_packets)
        state = self._flat
        elig_query = _flat.elig_query
        serve_step = _flat.serve_step
        obj = state.obj
        rt_on = state.rt_on
        rt_adm = state.rt_adm
        ul_on = state.ul_on
        deadline = state.deadline
        fit_time = state.fit_time
        rt_enabled = self.realtime_enabled
        rt_live = rt_enabled and not self.rt_suspended
        telem = _TELEM
        telem_on = telem.enabled
        append = served.append
        backlog = self._backlog_packets
        count = 0
        n_bytes = 0.0
        try:
            while count < max_packets and count < backlog:
                leaf = None
                realtime = False
                if rt_live:
                    slot = elig_query(state, now)
                    if slot >= 0:
                        leaf = obj[slot]
                        realtime = True
                if leaf is None:
                    leaf = self._link_sharing_select(now)
                    if leaf is None:
                        break
                    slot = leaf.slot
                queue = leaf.queue
                packet = queue.popleft()
                packet.via_realtime = realtime
                rt_tracked = (
                    rt_on[slot] != 0 and rt_enabled and rt_adm[slot] != 0
                )
                packet.deadline = deadline[slot] if rt_tracked else None
                packet.dequeued = now
                size = packet.size
                count += 1
                n_bytes += size
                if telem_on:
                    telem.on_dequeue(packet.class_id, size, now)
                    telem.on_hfsc_serve(leaf.name, size, now, realtime,
                                        packet.deadline)
                backlogged = bool(queue)
                next_size = queue[0].size if backlogged else 0.0
                serve_step(state, slot, size, realtime, rt_tracked,
                           backlogged, next_size, now)
                if ul_on[slot]:
                    if backlogged:
                        self._ul_wait.update(leaf, fit_time[slot])
                    else:
                        self._ul_wait.remove(leaf)
                append(packet)
        finally:
            self._backlog_packets = backlog - count
            self._backlog_bytes -= n_bytes
            self.total_dequeued += count
        return served

    # -- measurement hooks ----------------------------------------------------

    def virtual_times(self, parent: Any = ROOT) -> Dict[Any, float]:
        """Virtual times of the active children of ``parent`` (analysis)."""
        parent_cls = self._classes[parent]
        return {child.name: child.vt for child in parent_cls.active_min}

    def work_of(self, name: Any) -> float:
        """Total link-sharing-tracked service of a class, in bytes."""
        return self._classes[name].total_work

    def eligible_count(self) -> int:
        """Number of leaves currently in the real-time eligible set."""
        return len(self._eligible)

    def check_invariants(self) -> None:
        """Verify internal consistency (used by the property tests).

        Checks: active/passive bookkeeping matches queue contents, heap
        membership matches activity, per-class byte accounting sums to the
        scheduler totals, and rt service never exceeds total service.
        """
        total_backlog_packets = 0
        total_backlog_bytes = 0.0
        # One ancestor walk per backlogged leaf marks every interior class
        # with backlogged descendants (the old per-interior leaf scan was
        # quadratic in the class count).
        with_backlog: Set[HFSCClass] = set()
        for cls in self.classes():
            if cls.is_leaf and cls.queue:
                node: Optional[HFSCClass] = cls
                while node is not None and node not in with_backlog:
                    with_backlog.add(node)
                    node = node.parent
        for cls in self.classes():
            if cls.is_leaf:
                total_backlog_packets += len(cls.queue)
                total_backlog_bytes += sum(p.size for p in cls.queue)
                if cls.rt_spec is not None and self.realtime_enabled:
                    in_set = cls in self._eligible
                    assert in_set == (bool(cls.queue) and cls.rt_admitted), (
                        f"{cls.name!r}: eligible-set membership inconsistent"
                    )
                assert cls.cumul_rt <= cls.total_work + 1e-6, (
                    f"{cls.name!r}: rt service exceeds total service"
                )
                if cls.ul_spec is not None:
                    in_wait = cls in self._ul_wait
                    expect = cls.ul_curve is not None and bool(cls.queue)
                    assert in_wait == expect, (
                        f"{cls.name!r}: _ul_wait membership inconsistent"
                    )
                has_backlog = bool(cls.queue)
            else:
                has_backlog = cls in with_backlog
                assert cls.nactive == sum(
                    1 for child in cls.children if child.ls_active
                ), f"{cls.name!r}: nactive count stale"
            if cls.ls_spec is not None:
                parent = cls.parent
                assert parent is not None
                in_heaps = cls in parent.active_min
                assert in_heaps == cls.ls_active, (
                    f"{cls.name!r}: heap membership != ls_active"
                )
                assert (cls in parent.active_max) == cls.ls_active
                if cls.ls_active and cls.is_leaf:
                    assert has_backlog, f"{cls.name!r}: active but empty"
        assert total_backlog_packets == self._backlog_packets
        assert abs(total_backlog_bytes - self._backlog_bytes) < 1e-6

    # -- snapshot/restore (used by repro.persist) -----------------------------
    #
    # The split follows one rule: anything ``rebuild()`` can reconstruct
    # from the queues (heap memberships, the eligible set, ``_ul_wait``,
    # ``nactive``/``ls_active``, backlog counters) is RE-DERIVED on
    # restore and cross-validated against the snapshot; anything it
    # cannot (runtime curves, whose ``min_with`` history spans active
    # periods; virtual times; cumulative service; queues; overload
    # bookkeeping) is STORED.  A restore that disagrees with its own
    # re-derivation is refused -- never partially applied.

    def snapshot_state(self, add_packet: Callable[[Packet], int]) -> Dict[str, Any]:
        """Serialize the complete scheduler state to a JSON-able document.

        ``add_packet`` interns a packet and returns its table id (the
        packet table is shared with the link/event-loop snapshot so the
        in-flight packet stays the same object as its queue references).
        """
        classes = []
        for cls in self._classes.values():
            if cls.is_root:
                continue
            if not isinstance(cls.name, (str, int)):
                raise SnapshotError(
                    f"class name {cls.name!r} is not snapshot-serializable "
                    "(str or int required)",
                    reason="unsupported-name",
                )
            classes.append({
                "name": cls.name,
                "parent": cls.parent.name,
                "index": cls.index,
                "rt_requested": _sc_doc(cls.rt_requested),
                "rt_spec": _sc_doc(cls.rt_spec),
                "rt_admitted": cls.rt_admitted,
                "ls_spec": _sc_doc(cls.ls_spec),
                "ul_spec": _sc_doc(cls.ul_spec),
                "queue": [add_packet(p) for p in cls.queue],
                "cumul_rt": cls.cumul_rt,
                "total_work": cls.total_work,
                "bytes_rt": cls.bytes_rt,
                "bytes_ls": cls.bytes_ls,
                "deadline_curve": _rc_doc(cls.deadline_curve),
                "eligible_curve": _rc_doc(cls.eligible_curve),
                "virtual_curve": _rc_doc(cls.virtual_curve),
                "ul_curve": _rc_doc(cls.ul_curve),
                "eligible": cls.eligible,
                "deadline": cls.deadline,
                "vt": cls.vt,
                "fit_time": cls.fit_time,
                "vt_watermark": cls.vt_watermark,
                # Insertion order, not key order: IndexedHeap.update keeps
                # the original sequence number, so re-pushing in this order
                # preserves how future exact-key ties will break.
                "active_order": [
                    child.name for child in cls.active_min.iter_insertion()
                ],
            })
        return {
            "type": "HFSC",
            "config": {
                "link_rate": self.link_rate,
                "admission_control": self._admission_control,
                "eligible_backend": self._eligible_backend,
                "vt_policy": self.vt_policy,
                "realtime": self.realtime_enabled,
                "overload_policy": self.overload_policy,
            },
            "runtime": {
                "admission_checked": self._admission_checked,
                "rt_suspended": self.rt_suspended,
                "overload_events": [dict(e) for e in self.overload_events],
                "next_index": self._next_index,
            },
            "counters": {
                "backlog_packets": self._backlog_packets,
                "backlog_bytes": self._backlog_bytes,
                "enqueued": self.total_enqueued,
                "dequeued": self.total_dequeued,
                "returned": self.total_returned,
            },
            "root": {
                "total_work": self.root.total_work,
                "vt_watermark": self.root.vt_watermark,
                "active_order": [
                    child.name for child in self.root.active_min.iter_insertion()
                ],
            },
            "ul_wait_order": [
                cls.name for cls in self._ul_wait.iter_insertion()
            ],
            "classes": classes,
        }

    _CLASS_DOC_KEYS = frozenset((
        "name", "parent", "index", "rt_requested", "rt_spec", "rt_admitted",
        "ls_spec", "ul_spec", "queue", "cumul_rt", "total_work", "bytes_rt",
        "bytes_ls", "deadline_curve", "eligible_curve", "virtual_curve",
        "ul_curve", "eligible", "deadline", "vt", "fit_time", "vt_watermark",
        "active_order",
    ))

    @classmethod
    def restore_state(
        cls, doc: Dict[str, Any], get_packet: Callable[[int], Packet]
    ) -> "HFSC":
        """Rebuild a scheduler from :meth:`snapshot_state` output.

        Returns a *fresh* scheduler (atomic: nothing pre-existing is
        mutated; on any validation failure the partially-built object is
        simply discarded).  Derived structures are reconstructed from the
        queues and cross-checked against the snapshot's own record of
        them, then :meth:`check_invariants` gets the final word.
        """
        _require_keys(doc, ("type", "config", "runtime", "counters", "root",
                            "ul_wait_order", "classes"), "HFSC snapshot")
        if doc["type"] != "HFSC":
            raise SnapshotError(
                f"scheduler type mismatch: expected 'HFSC', got {doc['type']!r}",
                reason="scheduler-type",
            )
        config = doc["config"]
        _require_keys(config, ("link_rate", "admission_control",
                               "eligible_backend", "vt_policy", "realtime",
                               "overload_policy"), "HFSC config")
        try:
            sched = cls(
                link_rate=config["link_rate"],
                admission_control=config["admission_control"],
                eligible_backend=config["eligible_backend"],
                vt_policy=config["vt_policy"],
                realtime=config["realtime"],
                overload_policy=config["overload_policy"],
            )
        except ConfigurationError as exc:
            raise SnapshotError(
                f"snapshot carries an invalid configuration: {exc}",
                reason="bad-config",
            ) from exc
        for cdoc in doc["classes"]:
            _require_keys(cdoc, cls._CLASS_DOC_KEYS, f"class {cdoc.get('name')!r}")
            try:
                node = sched.add_class(
                    cdoc["name"],
                    parent=cdoc["parent"],
                    rt_sc=_sc_from(cdoc["rt_requested"]),
                    ls_sc=_sc_from(cdoc["ls_spec"]),
                    ul_sc=_sc_from(cdoc["ul_spec"]),
                )
            except ConfigurationError as exc:
                raise SnapshotError(
                    f"snapshot hierarchy is not constructible: {exc}",
                    reason="bad-hierarchy",
                ) from exc
            node.index = cdoc["index"]
            node.rt_spec = _sc_from(cdoc["rt_spec"])
            node.rt_admitted = cdoc["rt_admitted"]
            node.queue.extend(get_packet(uid) for uid in cdoc["queue"])
            node.cumul_rt = cdoc["cumul_rt"]
            node.total_work = cdoc["total_work"]
            node.bytes_rt = cdoc["bytes_rt"]
            node.bytes_ls = cdoc["bytes_ls"]
            node.deadline_curve = _rc_from(cdoc["deadline_curve"])
            node.eligible_curve = _rc_from(cdoc["eligible_curve"])
            node.virtual_curve = _rc_from(cdoc["virtual_curve"])
            node.ul_curve = _rc_from(cdoc["ul_curve"])
            node.eligible = cdoc["eligible"]
            node.deadline = cdoc["deadline"]
            node.vt = cdoc["vt"]
            node.fit_time = cdoc["fit_time"]
            node.vt_watermark = cdoc["vt_watermark"]
        runtime = doc["runtime"]
        _require_keys(runtime, ("admission_checked", "rt_suspended",
                                "overload_events", "next_index"), "HFSC runtime")
        sched._next_index = runtime["next_index"]
        sched.rt_suspended = runtime["rt_suspended"]
        sched.overload_events = [dict(e) for e in runtime["overload_events"]]
        root_doc = doc["root"]
        _require_keys(root_doc, ("total_work", "vt_watermark", "active_order"),
                      "HFSC root")
        sched.root.total_work = root_doc["total_work"]
        sched.root.vt_watermark = root_doc["vt_watermark"]
        sched._rederive_from_queues(doc)
        counters = doc["counters"]
        _require_keys(counters, ("backlog_packets", "backlog_bytes",
                                 "enqueued", "dequeued", "returned"),
                      "HFSC counters")
        derived_packets = sum(
            len(c.queue) for c in sched.classes() if c.is_leaf
        )
        derived_bytes = sum(
            p.size for c in sched.classes() if c.is_leaf for p in c.queue
        )
        if derived_packets != counters["backlog_packets"] or (
            abs(derived_bytes - counters["backlog_bytes"]) > 1e-6
        ):
            raise SnapshotError(
                "stored backlog counters disagree with the queue contents",
                reason="counter-mismatch",
                context={
                    "stored": [counters["backlog_packets"],
                               counters["backlog_bytes"]],
                    "derived": [derived_packets, derived_bytes],
                },
            )
        sched._backlog_packets = counters["backlog_packets"]
        sched._backlog_bytes = counters["backlog_bytes"]
        sched.total_enqueued = counters["enqueued"]
        sched.total_dequeued = counters["dequeued"]
        sched.total_returned = counters["returned"]
        sched._admission_checked = runtime["admission_checked"]
        try:
            sched.check_invariants()
        except AssertionError as exc:
            raise SnapshotError(
                f"restored state failed invariant cross-validation: {exc}",
                reason="invariant-violation",
            ) from exc
        return sched

    def _rederive_from_queues(self, doc: Dict[str, Any]) -> None:
        """Reconstruct everything ``rebuild`` could, validating as we go.

        Heap memberships, the eligible set, ``_ul_wait``, ``nactive`` and
        ``ls_active`` all re-derive from the queues plus the stored
        scalars; the snapshot's order lists pin same-virtual-time heap
        tie-breaks and are cross-checked against the derived memberships.
        """
        # Activity: a non-root class is link-sharing active iff it is a
        # backlogged leaf with an ls curve, or has an active child.
        # _classes preserves creation order (parents first), so the
        # reversed walk sees children before their parents.
        active: Dict[HFSCClass, bool] = {}
        for node in reversed(list(self.classes())):
            if node.is_leaf:
                active[node] = bool(node.queue) and node.ls_spec is not None
            else:
                active[node] = any(active[child] for child in node.children)
        order_by_parent: Dict[Any, List[Any]] = {
            cdoc["name"]: cdoc["active_order"] for cdoc in doc["classes"]
        }
        order_by_parent[ROOT] = doc["root"]["active_order"]
        for parent in self._classes.values():
            if not parent.children:
                continue
            parent.nactive = sum(
                1 for child in parent.children if active[child]
            )
            expected = {child.name for child in parent.children if active[child]}
            order = order_by_parent.get(parent.name, [])
            if set(order) != expected or len(order) != len(expected):
                raise SnapshotError(
                    f"stored active-child order of {parent.name!r} disagrees "
                    "with the re-derived active set",
                    reason="active-set-mismatch",
                    context={"stored": list(order), "derived": sorted(
                        str(name) for name in expected)},
                )
            for name in order:
                child = self._classes[name]
                if child.virtual_curve is None:
                    raise SnapshotError(
                        f"active class {name!r} has no virtual curve",
                        reason="missing-curve",
                    )
                parent.active_min.push(child, child.vt)
                parent.active_max.push(child, -child.vt)
        for node in self.classes():
            node.ls_active = active[node]
        # The real-time eligible set: membership is fully derivable
        # (backlogged + admitted + rt curve, tracked even while
        # rt_suspended); eligible/deadline values come from the stored
        # scalars, inserted in creation order.
        for node in self.classes():
            if not node.is_leaf or node.rt_spec is None:
                continue
            if not (self.realtime_enabled and node.rt_admitted and node.queue):
                continue
            if node.deadline_curve is None or node.eligible_curve is None:
                raise SnapshotError(
                    f"eligible leaf {node.name!r} has no deadline/eligible "
                    "curve",
                    reason="missing-curve",
                )
            self._eligible.insert(node, node.eligible, node.deadline)
        # Upper-limit wait heap, in the stored fit-time order.
        expected_wait = {
            node.name
            for node in self.classes()
            if node.is_leaf and node.ul_curve is not None and node.queue
        }
        order = doc["ul_wait_order"]
        if set(order) != expected_wait or len(order) != len(expected_wait):
            raise SnapshotError(
                "stored _ul_wait order disagrees with the re-derived "
                "membership",
                reason="ul-wait-mismatch",
                context={"stored": list(order),
                         "derived": sorted(str(n) for n in expected_wait)},
            )
        for name in order:
            node = self._classes[name]
            self._ul_wait.push(node, node.fit_time)

    # -- long-run drift hardening ---------------------------------------------

    def renormalize_vt(self) -> int:
        """Pull virtual-time origins back toward zero; returns domains shifted.

        Each interior class's children share a private virtual-time
        domain that only ever grows (``system_vt`` is monotonic); after
        ~1e15 bytes of service the float ulp at the working point
        approaches a packet size and same-``vt`` tie-breaks start to
        decay.  This subtracts a power-of-two offset from every quantity
        in such a domain (child ``vt``, curve anchor ``x0``, the parent's
        idle watermark), which by Sterbenz's lemma is exact for values in
        ``[delta, 2*delta)`` and keeps relative order in general.  Called
        by :class:`repro.sim.faults.DriftGuard` on long soaks; not part
        of the per-packet hot path.

        Renormalization is *not* digest-transparent in every case --
        shifting can perturb sub-ulp near-ties -- so the guard treats it
        as a maintenance action with bounded-lag assertions, not a
        byte-identical transform.
        """
        shifted = 0
        for parent in self._classes.values():
            if not parent.children:
                continue
            # The shiftable floor is the minimum over the *live* domain
            # quantities (virtual times and curve anchors).  The idle
            # watermark is deliberately excluded while any child is live:
            # it lags far below the active virtual times during long busy
            # periods (it only advances on passivation), and it is only a
            # floor -- clamping it at zero after the shift keeps every
            # property it is used for.  With no live children it *is* the
            # domain, so it drives the shift alone.
            base = math.inf
            live = False
            for child in parent.children:
                if child.virtual_curve is not None:
                    live = True
                    # Fold the curve's dead history (below the live
                    # working point) into its anchor; a never-passive
                    # class otherwise pins x0 at the activation origin
                    # and the domain could never shift.
                    child.virtual_curve.rebase(child.vt)
                    if child.vt < base:
                        base = child.vt
                    if child.virtual_curve.x0 < base:
                        base = child.virtual_curve.x0
            if not live:
                base = parent.vt_watermark
            if not (base > 2.0) or not math.isfinite(base):
                continue
            delta = 2.0 ** math.floor(math.log2(base))
            # Insertion order so exact-tie behaviour survives the rebuild
            # (IndexedHeap.update keeps original sequence numbers).
            order = list(parent.active_min.iter_insertion())
            parent.active_min.clear()
            parent.active_max.clear()
            parent.vt_watermark = max(parent.vt_watermark - delta, 0.0)
            for child in parent.children:
                if child.virtual_curve is not None:
                    child.vt -= delta
                    child.virtual_curve.shift_x(-delta)
            for child in order:
                parent.active_min.push(child, child.vt)
                parent.active_max.push(child, -child.vt)
            shifted += 1
        return shifted

    def max_vt_lag(self) -> float:
        """Largest (v_max - v_min) spread over any active sibling set.

        The paper bounds sibling virtual-time divergence for fair
        link-sharing; a spread that grows without bound signals drift
        (or a bug), which is what :class:`repro.sim.faults.DriftGuard`
        audits on long runs.
        """
        worst = 0.0
        for parent in self._classes.values():
            if parent.nactive >= 2:
                spread = -parent.active_max.peek_key() - parent.active_min.peek_key()
                if spread > worst:
                    worst = spread
        return worst

    def max_vt_magnitude(self) -> float:
        """Largest |virtual time| in any domain (drift-guard trigger)."""
        worst = 0.0
        for parent in self._classes.values():
            if parent.vt_watermark > worst:
                worst = parent.vt_watermark
            for child in parent.children:
                if child.virtual_curve is not None and child.vt > worst:
                    worst = child.vt
        return worst

    # -- internals -------------------------------------------------------------

    def _leaf_for(self, packet: Packet) -> HFSCClass:
        try:
            cls = self._classes[packet.class_id]
        except KeyError:
            raise ConfigurationError(
                f"packet for unknown class {packet.class_id!r}"
            ) from None
        if not cls.is_leaf or cls.is_root:
            raise ConfigurationError(
                f"packets may only be queued on leaf classes, not {cls.name!r}"
            )
        return cls

    def _rt_tracked(self, cls: HFSCClass) -> bool:
        """Is this leaf's real-time machinery live (spec set and admitted)?"""
        return (
            cls.rt_spec is not None
            and self.realtime_enabled
            and cls.rt_admitted
        )

    # -- overload policies -----------------------------------------------------

    def _ensure_admissible(self, now: float) -> None:
        """Lazy admission check + the configured degradation policy."""
        rt_leaves = sorted(
            (
                cls
                for cls in self.leaf_classes()
                if cls.rt_requested is not None
            ),
            key=_creation_index,
        )
        policy = self.overload_policy
        if policy == "scale-rt":
            self._apply_scale_rt(rt_leaves, now)
        elif policy == "linkshare-only":
            self._apply_linkshare_only(rt_leaves, now)
        elif policy == "reject":
            self._apply_reject(rt_leaves, now)
        else:  # "raise"
            requested = [cls.rt_requested for cls in rt_leaves]
            if requested and not is_admissible(requested, self.link_rate):
                raise OverloadError(
                    "sum of leaf real-time service curves exceeds the link rate",
                    capacity=self.link_rate,
                    demand_rate=sum(spec.m2 for spec in requested),
                    classes=[cls.name for cls in rt_leaves],
                )
        self._admission_checked = True

    def _apply_scale_rt(self, rt_leaves: List[HFSCClass], now: float) -> None:
        requested = [cls.rt_requested for cls in rt_leaves]
        factor = (
            uniform_admissible_scale(requested, self.link_rate)
            if requested
            else 1.0
        )
        if factor < 1.0:
            self._record_overload(
                "scale-rt",
                now=now,
                factor=factor,
                classes=[cls.name for cls in rt_leaves],
            )
        for cls in rt_leaves:
            target = (
                cls.rt_requested
                if factor >= 1.0
                else cls.rt_requested.scaled(factor)
            )
            changed = cls.rt_spec != target or not cls.rt_admitted
            cls.rt_spec = target
            cls.rt_admitted = True
            if changed:
                self._reanchor_rt(cls, now)

    def _apply_linkshare_only(self, rt_leaves: List[HFSCClass], now: float) -> None:
        requested = [cls.rt_requested for cls in rt_leaves]
        feasible = not requested or is_admissible(requested, self.link_rate)
        if feasible and self.rt_suspended:
            # Capacity returned: resume the real-time criterion with fresh
            # curves (the suspended-era deadlines are ancient history and
            # would otherwise release a burst of "overdue" service).
            self.rt_suspended = False
            for cls in rt_leaves:
                self._reanchor_rt(cls, now)
        elif not feasible and not self.rt_suspended:
            self.rt_suspended = True
            self._record_overload(
                "linkshare-only",
                now=now,
                classes=[cls.name for cls in rt_leaves],
            )

    def _apply_reject(self, rt_leaves: List[HFSCClass], now: float) -> None:
        # Previously admitted classes keep their guarantees first (oldest
        # first), then newcomers are admitted greedily in creation order;
        # whatever does not fit is stripped to link-sharing-only service
        # until a later check finds room again.
        ordered = [cls for cls in rt_leaves if cls.rt_admitted] + [
            cls for cls in rt_leaves if not cls.rt_admitted
        ]
        admitted: List[HFSCClass] = []
        rejected: List[HFSCClass] = []
        curves: List[ServiceCurve] = []
        for cls in ordered:
            trial = curves + [cls.rt_requested]
            if is_admissible(trial, self.link_rate):
                curves = trial
                admitted.append(cls)
            else:
                rejected.append(cls)
        for cls in admitted:
            if not cls.rt_admitted:
                cls.rt_admitted = True
                self._reanchor_rt(cls, now)
        stripped = [cls for cls in rejected if cls.rt_admitted]
        for cls in stripped:
            cls.rt_admitted = False
            if cls in self._eligible:
                self._eligible.remove(cls)
            cls.deadline_curve = None
            cls.eligible_curve = None
        if stripped:
            self._record_overload(
                "reject",
                now=now,
                rejected=[cls.name for cls in rejected],
            )

    def _reanchor_rt(self, leaf: HFSCClass, now: float) -> None:
        """Fresh deadline/eligible curves after a live rt-spec change.

        ``min_with`` history belongs to the old curve; a changed spec is
        re-anchored at the class's current cumulative service as if its
        backlog had just started.
        """
        if not self._rt_tracked(leaf):
            leaf.deadline_curve = None
            leaf.eligible_curve = None
            if leaf in self._eligible:
                self._eligible.remove(leaf)
            return
        if not leaf.queue:
            # Idle: nothing to schedule; _activate rebuilds from the new
            # spec when the next packet arrives.
            leaf.deadline_curve = None
            leaf.eligible_curve = None
            return
        spec = leaf.rt_spec
        leaf.deadline_curve = RuntimeCurve.from_spec(spec, now, leaf.cumul_rt)
        leaf.eligible_curve = RuntimeCurve.from_spec(
            eligible_spec(spec), now, leaf.cumul_rt
        )
        leaf.eligible = leaf.eligible_curve.inverse(leaf.cumul_rt)
        leaf.deadline = leaf.deadline_curve.inverse(
            leaf.cumul_rt + leaf.queue[0].size
        )
        if leaf in self._eligible:
            self._eligible.update(leaf, leaf.eligible, leaf.deadline)
        else:
            self._eligible.insert(leaf, leaf.eligible, leaf.deadline)

    def _record_overload(self, policy: str, now: Optional[float] = None,
                         **details: Any) -> None:
        event = {"policy": policy}
        event.update(details)
        self.overload_events.append(event)
        if _TELEM.enabled:
            _TELEM.on_overload(now, policy, dict(details))

    # -- removal internals -----------------------------------------------------

    def _subtree_postorder(self, cls: HFSCClass) -> List[HFSCClass]:
        order: List[HFSCClass] = []
        stack = [cls]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(node.children)
        order.reverse()
        return order

    def _drain_leaf(self, leaf: HFSCClass) -> List[Packet]:
        """Empty a leaf's queue and detach it from every derived structure."""
        drained = list(leaf.queue)
        leaf.queue.clear()
        for packet in drained:
            self._note_return(packet)
        if leaf.rt_spec is not None and leaf in self._eligible:
            self._eligible.remove(leaf)
        if leaf.ul_spec is not None and leaf in self._ul_wait:
            self._ul_wait.remove(leaf)
        if leaf.ls_active:
            self._passivate_ls(leaf)
        return drained

    def _unlink(self, cls: HFSCClass) -> None:
        parent = cls.parent
        assert parent is not None
        parent.children.remove(cls)
        del self._classes[cls.name]
        if cls in self._ul_classes:
            self._ul_classes.discard(cls)
            parent.ul_children -= 1
        # Sever the back-reference: a removed class must not keep the tree
        # alive or be mistaken for a live node by stale external handles.
        cls.parent = None
        # Recycle the shared slot; the class keeps its final values on a
        # private one-slot state for any handles still held by callers.
        cls._detach()

    def _activate(self, leaf: HFSCClass, now: float) -> None:
        """Fig. 5(a) update_ed + Fig. 6 update_v on passive->active.

        All state mutation happens in the flat kernel; this shell only
        performs the eligible-set / ul-wait-heap insertions, which hold
        façade objects.
        """
        state = self._flat
        slot = leaf.slot
        rt_tracked = (
            state.rt_on[slot] != 0
            and self.realtime_enabled
            and state.rt_adm[slot] != 0
        )
        if self._flat_elig:
            _flat.activate_step(state, slot, now, rt_tracked,
                                leaf.queue[0].size, self._policy_code)
        else:
            _flat.activate(state, slot, now, rt_tracked, leaf.queue[0].size,
                           self._policy_code)
            if rt_tracked:
                self._eligible.insert(leaf, state.eligible[slot],
                                      state.deadline[slot])
        if state.ulsp_on[slot]:
            self._ul_wait.push(leaf, state.fit_time[slot])

    def _activate_ls(self, cls: HFSCClass) -> None:
        """Walk up the tree activating classes (eq. 12 at each level)."""
        _flat.activate_ls(self._flat, cls.slot, self._policy_code)

    def _passivate_ls(self, cls: HFSCClass) -> None:
        _flat.passivate_ls(self._flat, cls.slot)

    def _link_sharing_select(self, now: float) -> Optional[HFSCClass]:
        """Smallest-virtual-time descent from the root (Fig. 4).

        Without upper limits this is a straight heap-peek descent, O(1)
        per level.  With upper limits in the hierarchy, classes whose fit
        time lies in the future must be skipped (extension); the original
        implementation sorted every sibling set on the way down, making
        each dequeue linear in the fan-out.  Here each level peeks the
        heap and falls back to a lazy in-order walk
        (:meth:`IndexedHeap.iter_sorted`) only when the minimum is tied or
        unfit, so the cost is O(log n) plus the number of skipped
        children.

        Virtual-time ties are broken by class creation order
        (``HFSCClass.index``).  The original loop used ``id()``, i.e.
        allocation order, which equals creation order for classes built in
        one pass but is not stable across processes; pinning the explicit
        index keeps schedules reproducible.
        """
        state = self._flat
        root_slot = self.root.slot
        slot = root_slot
        if not self._ul_classes:
            slot = _flat.ls_descend(state, root_slot)
        else:
            nactive = state.nactive
            ul_on = state.ul_on
            fit_time = state.fit_time
            while nactive[slot] > 0:
                keys = state.hmin_key[slot]
                seqs = state.hmin_seq[slot]
                slots = state.hmin_slot[slot]
                key0 = keys[0]
                tied = (len(keys) > 1 and keys[1] == key0) or (
                    len(keys) > 2 and keys[2] == key0
                )
                if not tied:
                    child = slots[0]
                    if not ul_on[child] or fit_time[child] <= now:
                        slot = child
                        continue
                chosen = -1
                need_fit = state.ul_children[slot] > 0
                group: List[int] = []
                group_vt: Optional[float] = None
                for vt, child in heap_iter_sorted(keys, seqs, slots):
                    if vt != group_vt and group:
                        chosen = self._first_fit(group, need_fit, now)
                        if chosen >= 0:
                            break
                        group.clear()
                    group_vt = vt
                    group.append(child)
                else:
                    chosen = self._first_fit(group, need_fit, now)
                if chosen < 0:
                    return None
                slot = chosen
        if slot == root_slot:
            return None
        node = state.obj[slot]
        if not node.queue:
            raise RuntimeError(
                f"link-sharing descent reached empty class {node.name!r}"
            )
        return node

    def _first_fit(self, group: List[int], need_fit: bool, now: float) -> int:
        """Earliest-created fitting slot in an equal-virtual-time group.

        Returns -1 when every member's fit time is in the future.
        """
        state = self._flat
        if len(group) > 1:
            group.sort(key=state.index.__getitem__)
        if not need_fit:
            return group[0]
        ul_on = state.ul_on
        fit_time = state.fit_time
        for child in group:
            if not ul_on[child] or fit_time[child] <= now:
                return child
        return -1

    def _serve(self, leaf: HFSCClass, realtime: bool, now: float) -> Packet:
        queue = leaf.queue
        packet = queue.popleft()
        packet.via_realtime = realtime
        state = self._flat
        slot = leaf.slot
        rt_tracked = (
            state.rt_on[slot] != 0
            and self.realtime_enabled
            and state.rt_adm[slot] != 0
        )
        packet.deadline = state.deadline[slot] if rt_tracked else None
        self._note_dequeue(packet, now)
        size = packet.size
        if _TELEM.enabled:
            _TELEM.on_hfsc_serve(leaf.name, size, now, realtime, packet.deadline)
        backlogged = bool(queue)
        next_size = queue[0].size if backlogged else 0.0
        # Fig. 6 update_v, the Fig. 5 e/d advance, the upper-limit fit
        # update and (on queue-empty) the link-sharing passivation all run
        # in the flat kernel; the shell applies the results to the two
        # structures that hold façade objects.  With the flat eligible
        # backend the eligible-set maintenance is fused into the same
        # kernel call (serve_step), so per-packet and batched serves share
        # one deadline-tie rule.
        if self._flat_elig:
            _flat.serve_step(state, slot, size, realtime, rt_tracked,
                             backlogged, next_size, now)
        else:
            _flat.serve_commit(state, slot, size, realtime, rt_tracked,
                               backlogged, next_size)
            if backlogged:
                if rt_tracked:
                    self._eligible.update(leaf, state.eligible[slot],
                                          state.deadline[slot])
            elif rt_tracked:
                self._eligible.remove(leaf)
        if state.ul_on[slot]:
            if backlogged:
                self._ul_wait.update(leaf, state.fit_time[slot])
            else:
                self._ul_wait.remove(leaf)
        return packet


#: Backwards-friendly alias matching the paper's name for the algorithm.
HFSCScheduler = HFSC
