"""Idealized fluid reference models (Section III).

Two references for measuring how close packet schedulers come to the
idealized models the paper argues from:

* :class:`FluidGPS` -- the generalized processor sharing fluid server:
  backlogged flows are served simultaneously, rates proportional to their
  weights.  Exact, event-driven.  The WFQ/WF2Q+ tests and fairness
  analyses compare packet service against these trajectories.

* :class:`FluidFSC` -- the ideal *fair service curve* link-sharing model:
  a class hierarchy in which, at every node, the active children with the
  smallest virtual times are served so that their virtual times advance
  together, each child's instantaneous rate being the slope of its service
  curve at its virtual time (the fluid limit of Section IV-C's link-sharing
  criterion).  This is the target H-FSC approximates for interior classes;
  experiment E10 integrates |actual - ideal| against it.  Because the model
  is generally unrealizable *together with* real-time guarantees
  (Section III-C), the fluid model here is the pure link-sharing ideal.
  Integration is by small fixed steps: the crossover structure of
  hierarchical virtual times makes exact event-driven fluid tracking
  disproportionately complex, and a reference model only needs to be
  accurate, not fast.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.curves import ServiceCurve
from repro.core.errors import ConfigurationError
from repro.core.runtime_curves import RuntimeCurve


class FluidGPS:
    """Exact fluid GPS over a set of weighted flows.

    Feed it the complete arrival schedule, then query per-flow cumulative
    service at any time.  Arrivals are instantaneous backlog increments.
    """

    def __init__(self, rate: float):
        if rate <= 0:
            raise ConfigurationError("rate must be positive")
        self.rate = rate
        self._weights: Dict[Any, float] = {}
        self._arrivals: List[Tuple[float, Any, float]] = []
        self._finalized = False
        # Per-flow piecewise-linear cumulative service: list of (t, served).
        self._trajectory: Dict[Any, List[Tuple[float, float]]] = {}

    def add_flow(self, flow_id: Any, weight: float) -> None:
        if flow_id in self._weights:
            raise ConfigurationError(f"duplicate flow id: {flow_id!r}")
        if weight <= 0:
            raise ConfigurationError("weight must be positive")
        self._weights[flow_id] = weight

    def arrive(self, time: float, flow_id: Any, amount: float) -> None:
        if flow_id not in self._weights:
            raise ConfigurationError(f"unknown flow: {flow_id!r}")
        if amount <= 0:
            raise ConfigurationError("arrival amount must be positive")
        self._arrivals.append((time, flow_id, amount))
        self._finalized = False

    def service(self, flow_id: Any, time: float) -> float:
        """Cumulative fluid service of ``flow_id`` by ``time``."""
        self._finalize(time)
        trajectory = self._trajectory.get(flow_id, [])
        if not trajectory or time <= trajectory[0][0]:
            return 0.0
        # Binary search for the segment containing `time`.
        lo, hi = 0, len(trajectory) - 1
        if time >= trajectory[-1][0]:
            return trajectory[-1][1]
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if trajectory[mid][0] <= time:
                lo = mid
            else:
                hi = mid
        t1, s1 = trajectory[lo]
        t2, s2 = trajectory[hi]
        if t2 == t1:
            return s2
        return s1 + (s2 - s1) * (time - t1) / (t2 - t1)

    def backlog_clear_time(self) -> float:
        """Time the fluid system drains completely (inf if never)."""
        self._finalize(math.inf)
        return self._clear_time

    # -- internals ----------------------------------------------------------

    def _finalize(self, horizon: float) -> None:
        if self._finalized:
            return
        arrivals = sorted(self._arrivals)
        backlog = {fid: 0.0 for fid in self._weights}
        served = {fid: 0.0 for fid in self._weights}
        trajectory = {fid: [(0.0, 0.0)] for fid in self._weights}
        now = 0.0
        index = 0
        self._clear_time = 0.0
        while True:
            busy = [fid for fid, b in backlog.items() if b > 1e-12]
            if not busy:
                if index >= len(arrivals):
                    break
                time, fid, amount = arrivals[index]
                index += 1
                now = max(now, time)
                backlog[fid] += amount
                # Anchor every trajectory at the idle-gap end so the flat
                # segment is represented explicitly.
                for flow in trajectory:
                    trajectory[flow].append((now, served[flow]))
                continue
            total_weight = sum(self._weights[fid] for fid in busy)
            # Next event: first fluid drain among busy flows, or next arrival.
            drain_times = []
            for fid in busy:
                flow_rate = self.rate * self._weights[fid] / total_weight
                drain_times.append(now + backlog[fid] / flow_rate)
            next_drain = min(drain_times)
            next_arrival = arrivals[index][0] if index < len(arrivals) else math.inf
            step_end = min(next_drain, max(next_arrival, now))
            if step_end == math.inf:
                break
            dt = step_end - now
            for fid in busy:
                flow_rate = self.rate * self._weights[fid] / total_weight
                amount = min(flow_rate * dt, backlog[fid])
                backlog[fid] -= amount
                served[fid] += amount
                trajectory[fid].append((step_end, served[fid]))
            now = step_end
            self._clear_time = now
            while index < len(arrivals) and arrivals[index][0] <= now + 1e-15:
                _, fid, amount = arrivals[index]
                index += 1
                if backlog[fid] <= 1e-12:
                    # The flow was idle: anchor its flat segment at `now`.
                    trajectory[fid].append((now, served[fid]))
                backlog[fid] += amount
        self._trajectory = trajectory
        self._finalized = True


class _FluidClass:
    __slots__ = (
        "name", "parent", "children", "spec", "backlog", "served",
        "virtual_curve", "vt", "active",
    )

    def __init__(self, name: Any, parent: Optional["_FluidClass"],
                 spec: Optional[ServiceCurve]):
        self.name = name
        self.parent = parent
        self.children: List["_FluidClass"] = []
        self.spec = spec
        self.backlog = 0.0
        self.served = 0.0
        self.virtual_curve: Optional[RuntimeCurve] = None
        self.vt = 0.0
        self.active = False

    @property
    def is_leaf(self) -> bool:
        return not self.children


class FluidFSC:
    """Fixed-step fluid integration of the ideal FSC link-sharing model.

    Usage::

        model = FluidFSC(rate)
        model.add_class("cmu", sc=...)
        model.add_class("cmu.video", parent="cmu", sc=...)
        model.arrive(t, "cmu.video", nbytes)   # any number of arrivals
        samples = model.run(until=10.0, dt=1e-3)
        samples["cmu"]  -> list of (t, cumulative service)

    At each step, service descends the hierarchy: every node's rate is
    split among its active children holding the minimal virtual time,
    proportionally to their curve slopes at their virtual times; children
    whose virtual time is ahead receive nothing until the others catch up
    (the fluid SSF rule).
    """

    ROOT = "__root__"

    def __init__(self, rate: float):
        if rate <= 0:
            raise ConfigurationError("rate must be positive")
        self.rate = rate
        self._root = _FluidClass(self.ROOT, None, None)
        self._classes: Dict[Any, _FluidClass] = {self.ROOT: self._root}
        self._arrivals: List[Tuple[float, Any, float]] = []

    def add_class(self, name: Any, parent: Any = ROOT,
                  sc: Optional[ServiceCurve] = None) -> None:
        if name in self._classes:
            raise ConfigurationError(f"duplicate class name: {name!r}")
        if sc is None:
            raise ConfigurationError(f"class {name!r} needs a service curve")
        try:
            parent_cls = self._classes[parent]
        except KeyError:
            raise ConfigurationError(f"unknown parent: {parent!r}") from None
        cls = _FluidClass(name, parent_cls, sc)
        parent_cls.children.append(cls)
        self._classes[name] = cls

    def arrive(self, time: float, name: Any, amount: float) -> None:
        if name not in self._classes:
            raise ConfigurationError(f"unknown class: {name!r}")
        if not self._classes[name].is_leaf:
            raise ConfigurationError("arrivals go to leaf classes")
        self._arrivals.append((time, name, amount))

    def run(self, until: float, dt: float = 1e-3) -> Dict[Any, List[Tuple[float, float]]]:
        """Integrate and return per-class (time, cumulative service) samples."""
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        arrivals = sorted(self._arrivals)
        index = 0
        samples: Dict[Any, List[Tuple[float, float]]] = {
            name: [(0.0, 0.0)] for name in self._classes if name != self.ROOT
        }
        steps = int(math.ceil(until / dt))
        for step in range(steps):
            now = step * dt
            while index < len(arrivals) and arrivals[index][0] <= now + 1e-15:
                _, name, amount = arrivals[index]
                index += 1
                leaf = self._classes[name]
                leaf.backlog += amount
                self._mark_active(leaf)
            self._distribute(self._root, self.rate * dt)
            t_next = now + dt
            for name, cls in self._classes.items():
                if name == self.ROOT:
                    continue
                samples[name].append((t_next, cls.served))
        return samples

    def service(self, samples, name: Any, time: float) -> float:
        """Helper: interpolate cumulative service from ``run`` samples."""
        series = samples[name]
        if time <= series[0][0]:
            return 0.0
        if time >= series[-1][0]:
            return series[-1][1]
        lo, hi = 0, len(series) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if series[mid][0] <= time:
                lo = mid
            else:
                hi = mid
        t1, s1 = series[lo]
        t2, s2 = series[hi]
        return s1 + (s2 - s1) * (time - t1) / (t2 - t1)

    # -- internals ----------------------------------------------------------

    def _mark_active(self, leaf: _FluidClass) -> None:
        node: Optional[_FluidClass] = leaf
        while node is not None and node.spec is not None:
            if not node.active:
                parent = node.parent
                assert parent is not None
                pvt = self._system_vt(parent)
                if node.virtual_curve is None:
                    node.virtual_curve = RuntimeCurve.from_spec(
                        node.spec, pvt, node.served
                    )
                else:
                    node.virtual_curve.min_with(node.spec, pvt, node.served)
                node.vt = node.virtual_curve.inverse(node.served)
                node.active = True
            node = node.parent

    @staticmethod
    def _system_vt(parent: _FluidClass) -> float:
        active = [c for c in parent.children if c.active]
        if not active:
            # Monotonic restart point: the furthest any child has reached.
            previous = [c.vt for c in parent.children if c.virtual_curve]
            return max(previous) if previous else 0.0
        vts = [c.vt for c in active]
        return (min(vts) + max(vts)) / 2.0

    def _subtree_backlog(self, node: _FluidClass) -> float:
        if node.is_leaf:
            return node.backlog
        return sum(self._subtree_backlog(c) for c in node.children)

    def _distribute(self, node: _FluidClass, amount: float) -> None:
        """Push ``amount`` bytes of service into the subtree of ``node``."""
        if amount <= 1e-15:
            return
        if node.is_leaf:
            used = min(amount, node.backlog)
            node.backlog -= used
            node.served += used
            if node.virtual_curve is not None:
                node.vt = node.virtual_curve.inverse(node.served)
            if node.backlog <= 1e-12:
                node.active = False
            return
        remaining = amount
        # Iterate: serve the minimal-vt active children, slope-weighted,
        # until the budget is spent or the subtree drains.
        for _ in range(64):
            active = [
                c for c in node.children
                if c.active and self._subtree_backlog(c) > 1e-12
            ]
            if not active or remaining <= 1e-15:
                break
            vmin = min(c.vt for c in active)
            front = [c for c in active if c.vt <= vmin + 1e-12]
            weights = []
            for child in front:
                assert child.virtual_curve is not None
                # Slope of the service curve at the current virtual time:
                # how much service one unit of virtual time buys.
                knee_x = child.virtual_curve.x0 + child.virtual_curve.dx
                slope = (
                    child.virtual_curve.m1
                    if child.vt < knee_x
                    else child.virtual_curve.m2
                )
                weights.append(max(slope, 1e-12))
            total_weight = sum(weights)
            # Budget for this round: bounded so laggards can catch up in a
            # few iterations; a fraction of the remaining amount suffices
            # for a reference model integrated at small dt.
            share = remaining
            for child, weight in zip(front, weights):
                quota = share * weight / total_weight
                before = child.served
                self._distribute(child, quota)
                remaining -= child.served - before
        node.served = sum(c.served for c in node.children)
        if node.virtual_curve is not None:
            node.vt = node.virtual_curve.inverse(node.served)
        if self._subtree_backlog(node) <= 1e-12:
            node.active = False
