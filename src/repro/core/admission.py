"""Admission-control utilities beyond the basic feasibility check.

`repro.core.curves.is_admissible` answers "does this set fit?"; operators
also want *headroom* questions:

* :func:`admissible_rate_headroom` -- the largest linear rate that can
  still be admitted next to an existing curve set;
* :func:`max_admissible_scale` -- the largest factor by which a candidate
  curve can be scaled while the whole set stays feasible;
* :func:`utilization_profile` -- sum-of-curves divided by the server line
  at each breakpoint, showing *where* (at which time scale) the link is
  tight: concave sets are burst-limited (tight at small t), linear sets
  rate-limited (tight asymptotically).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.curves import (
    PiecewiseLinearCurve,
    ServiceCurve,
    is_admissible,
    sum_curves,
)
from repro.core.errors import ConfigurationError


def admissible_rate_headroom(
    existing: Sequence[ServiceCurve], server_rate: float
) -> float:
    """Largest linear rate admissible alongside ``existing`` curves.

    For a linear candidate the binding constraint is the tightest point of
    ``server_rate * t - sum(existing)(t)`` over ``t``; since all curves are
    piecewise linear the minimum of the *slack rate* is attained at a
    breakpoint or asymptotically.
    """
    if server_rate <= 0:
        raise ConfigurationError("server_rate must be positive")
    if not existing:
        return server_rate
    total = sum_curves([curve.to_piecewise() for curve in existing])
    # Slack rate at time t: (server_rate * t - total(t)) / t; candidate
    # rate r is admissible iff r <= slack_rate(t) for every t > 0.
    candidates: List[float] = []
    for x, y in total.points:
        if x > 0:
            candidates.append(server_rate - y / x)
    candidates.append(server_rate - total.final_slope)
    # Just after t=0 the constraint is on the initial slope.
    first_slope = total.slopes()[0]
    candidates.append(server_rate - first_slope)
    headroom = max(0.0, min(candidates))
    return headroom


def max_admissible_scale(
    existing: Sequence[ServiceCurve],
    candidate: ServiceCurve,
    server_rate: float,
    tolerance: float = 1e-6,
) -> float:
    """Largest factor k such that ``existing + [candidate.scaled(k)]`` fits.

    Binary search over k (the feasible set in k is an interval starting at
    0 because scaling is linear in the curve values).
    """
    if not is_admissible(list(existing), server_rate):
        return 0.0
    lo, hi = 0.0, 1.0
    # Grow hi until infeasible (or absurdly large).
    while hi < 1e9 and is_admissible(
        list(existing) + [candidate.scaled(hi)], server_rate
    ):
        lo, hi = hi, hi * 2.0
    if hi >= 1e9:
        return hi
    while hi - lo > tolerance * max(1.0, hi):
        mid = (lo + hi) / 2.0
        if is_admissible(list(existing) + [candidate.scaled(mid)], server_rate):
            lo = mid
        else:
            hi = mid
    return lo


def uniform_admissible_scale(
    curves: Sequence[ServiceCurve],
    server_rate: float,
    tolerance: float = 1e-6,
) -> float:
    """Largest k <= 1 such that ``[c.scaled(k) for c in curves]`` fits.

    This is the "scale-rt" overload policy's knob: when churn or a
    link-rate drop makes the admitted set infeasible, every real-time
    guarantee is degraded by the same factor instead of rejecting flows.
    Returns 1.0 when the set already fits (guarantees are never inflated
    beyond what was requested).  Feasibility is monotone in k because
    scaling is linear in the curve values.
    """
    if server_rate <= 0:
        raise ConfigurationError("server_rate must be positive")
    if not curves or is_admissible(list(curves), server_rate):
        return 1.0
    lo, hi = 0.0, 1.0
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if is_admissible([c.scaled(mid) for c in curves], server_rate):
            lo = mid
        else:
            hi = mid
    return lo


def utilization_profile(
    curves: Sequence[ServiceCurve], server_rate: float
) -> List[Tuple[float, float]]:
    """(t, sum(curves)(t) / (server_rate * t)) at every breakpoint.

    Values above 1.0 mark the time scales at which the set overbooks the
    server.  The final entry uses a large probe time (asymptotic rate).
    """
    if not curves:
        return []
    total = sum_curves([curve.to_piecewise() for curve in curves])
    profile: List[Tuple[float, float]] = []
    for x, y in total.points:
        if x > 0:
            profile.append((x, y / (server_rate * x)))
    probe = (total.points[-1][0] + 1.0) * 1e6
    profile.append((probe, total.value(probe) / (server_rate * probe)))
    return profile
