"""O(1) runtime curves: the deadline / eligible / virtual curve machinery.

Section V of the paper shows that when service curves are restricted to
two-piece linear shapes (concave, or convex with a horizontal first
segment), the per-class *deadline curve* (eq. 7, ``update_dc`` of Fig. 8),
*eligible curve* (eq. 11) and *virtual curve* (eq. 12) all remain two-piece
linear and can be updated in constant time whenever a class transitions from
passive to active.  This module implements that machinery; it is the Python
analogue of the ``rtsc_*`` routines in the ALTQ/NetBSD implementation the
authors shipped.

A :class:`RuntimeCurve` is a two-piece linear function anchored at a point
``(x0, y0)``: slope ``m1`` for ``dx`` units of x, then slope ``m2`` forever.
For a deadline curve, x is wall-clock time and y is cumulative real-time
service ``c_i``; for a virtual curve, x is parent virtual time and y is
total service ``w_i``.

The central operation is :meth:`RuntimeCurve.min_with` which replaces the
curve by ``min(old_curve, spec shifted to (x, y))`` on the domain
``[x, inf)`` -- exactly eq. 7 / eq. 12.  For concave specs the result is the
exact minimum (the crossing-point analysis of Fig. 8).  For strictly convex
specs the exact minimum can need more than two pieces; following the
original implementation we then keep whichever curve is lower at the new
anchor, which can only over-estimate the deadline curve -- i.e. produce
*earlier* deadlines -- so every service-curve guarantee is preserved (the
cost is a small loss of link-sharing accuracy, never of correctness).
Property tests in ``tests/test_runtime_curves.py`` verify both claims
against the exact piecewise algebra.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.curves import INFINITY, PiecewiseLinearCurve, ServiceCurve


class RuntimeCurve:
    """Two-piece linear curve anchored at ``(x0, y0)`` with O(1) updates."""

    __slots__ = ("x0", "y0", "m1", "dx", "m2", "_kx", "_ky")

    def __init__(self, x0: float, y0: float, m1: float, dx: float, m2: float):
        self.x0 = x0
        self.y0 = y0
        self.m1 = m1
        self.dx = dx
        self.m2 = m2
        # Memoized knee (computed on first inverse() past y0, cleared by
        # the mutating operations).  inverse() runs several times per
        # packet served, and its operands advance monotonically, so the
        # knee test dominates; caching it avoids recomputing the knee
        # point on every call.  The cached values are the *same
        # expressions* the uncached path evaluates, so results are
        # bit-identical.
        self._kx = 0.0
        self._ky = None

    @classmethod
    def from_spec(cls, spec: ServiceCurve, x: float, y: float) -> "RuntimeCurve":
        """The service curve translated so its origin sits at ``(x, y)``.

        This is the initialization step of eq. 7 / eq. 12: when a session
        becomes backlogged for the first time, its deadline (virtual) curve
        is its service curve, anchored at the current time (parent virtual
        time) and its cumulative service.
        """
        return cls(x, y, spec.m1, spec.d, spec.m2)

    # -- evaluation ---------------------------------------------------------

    @property
    def knee(self) -> Tuple[float, float]:
        """The point where the slope changes from m1 to m2."""
        return (self.x0 + self.dx, self.y0 + self.m1 * self.dx)

    def value(self, x: float) -> float:
        """Curve value at ``x`` (clamped to ``y0`` for ``x < x0``)."""
        if x <= self.x0:
            return self.y0
        if x <= self.x0 + self.dx:
            return self.y0 + self.m1 * (x - self.x0)
        return self.y0 + self.m1 * self.dx + self.m2 * (x - self.x0 - self.dx)

    def inverse(self, y: float) -> float:
        """Smallest ``x >= x0`` with ``value(x) >= y`` (inf if unreachable).

        This is how deadlines (``d = DC^{-1}(c + packet_len)``), eligible
        times (``e = EC^{-1}(c)``) and virtual times (``v = VC^{-1}(w)``)
        are computed.
        """
        if y <= self.y0:
            return self.x0
        knee_y = self._ky
        if knee_y is None:
            dx = self.dx
            knee_x = self._kx = self.x0 + dx
            knee_y = self._ky = self.y0 + self.m1 * dx
        else:
            knee_x = self._kx
        if y <= knee_y:
            # m1 > 0 here since knee_y > y0.
            return self.x0 + (y - self.y0) / self.m1
        if self.m2 == 0:
            return INFINITY
        return knee_x + (y - knee_y) / self.m2

    # -- the update operation (eq. 7 / Fig. 8 / eq. 12) ---------------------

    def min_with(self, spec: ServiceCurve, x: float, y: float) -> None:
        """Replace this curve by ``min(self, spec shifted to (x, y))``.

        Called when the class becomes active at time (or parent virtual
        time) ``x`` having received ``y`` cumulative service.  Only the
        domain ``x' >= x`` matters afterwards, because the inverse is only
        evaluated at service levels ``>= y`` from now on.
        """
        y_here = self.value(x)

        if spec.m1 <= spec.m2:
            # Convex (or linear) spec: as in the original implementation,
            # keep whichever curve is lower at the new anchor.  When the old
            # curve is lower it stays lower until a possible late crossing;
            # ignoring that crossing only raises the curve (safe, see module
            # docstring).  When the new copy is lower it is lower forever
            # (the difference new - old is non-increasing for convex specs).
            if y_here < y:
                return
            self._replace(spec, x, y)
            return

        # Concave spec.  If the new copy starts above the old curve it stays
        # above forever (the difference new - old is non-decreasing while the
        # new copy is in its steep first segment, and constant afterwards).
        if y > y_here:
            return

        # New copy starts at or below the old curve.  While the old curve is
        # still in its first segment both run at slope m1 and the gap is
        # constant; once the old curve drops to slope m2 the new copy (still
        # at slope m1 > m2) closes the gap and may cross at x*.
        knee_x, knee_y = self.knee
        dslope = spec.m1 - spec.m2
        # Crossing of  y + m1*(t - x)  with the old m2-line through the knee.
        cross = (knee_y - y + spec.m1 * x - spec.m2 * knee_x) / dslope
        cross = max(cross, x)
        if cross >= x + spec.d:
            # The new copy bends to m2 before catching up: it is the minimum
            # everywhere on [x, inf).
            self._replace(spec, x, y)
            return
        # Minimum: new copy's first segment until the crossing, then the old
        # curve's m2 tail -- still two-piece.
        self.x0 = x
        self.y0 = y
        self.m1 = spec.m1
        self.dx = cross - x
        self.m2 = spec.m2
        self._ky = None

    def _replace(self, spec: ServiceCurve, x: float, y: float) -> None:
        self.x0 = x
        self.y0 = y
        self.m1 = spec.m1
        self.dx = spec.d
        self.m2 = spec.m2
        self._ky = None

    # -- interop ------------------------------------------------------------

    def to_piecewise(self) -> PiecewiseLinearCurve:
        if self.dx == 0 or self.m1 == self.m2:
            return PiecewiseLinearCurve.line(self.x0, self.y0, self.m2)
        knee_x, knee_y = self.knee
        return PiecewiseLinearCurve(
            [(self.x0, self.y0), (knee_x, knee_y)], self.m2
        )

    def copy(self) -> "RuntimeCurve":
        return RuntimeCurve(self.x0, self.y0, self.m1, self.dx, self.m2)

    def rebase(self, x: float) -> None:
        """Advance the anchor to ``x`` (no-op for ``x <= x0``).

        ``inverse`` is only ever evaluated at service levels at or above
        the current cumulative service, so the curve's history below the
        working point is dead weight -- but it pins ``x0`` at the
        activation origin, which would forever block
        :meth:`repro.core.hfsc.HFSC.renormalize_vt` for a class that
        never goes passive.  Rebasing folds the dead prefix into the
        anchor: values on ``[x, inf)`` are preserved (up to one float
        evaluation at ``x``, which is why renormalization is documented
        as not digest-transparent).
        """
        step = x - self.x0
        if step <= 0.0:
            return
        if step < self.dx:
            self.y0 += self.m1 * step
            self.dx -= step
        else:
            self.y0 += self.m1 * self.dx + self.m2 * (step - self.dx)
            self.m1 = self.m2
            self.dx = 0.0
        self.x0 = x
        self._ky = None

    def shift_x(self, delta: float) -> None:
        """Translate the curve along the x axis (origin renormalization).

        Used by :meth:`repro.core.hfsc.HFSC.renormalize_vt` to pull
        virtual-time domains back toward zero before float precision
        decays in very long runs; the memoized knee is invalidated so the
        next ``inverse`` recomputes it from the shifted anchor.
        """
        self.x0 += delta
        self._ky = None

    def to_doc(self) -> Tuple[float, float, float, float, float]:
        """The five anchored parameters -- the curve's entire state.

        The knee memo is deliberately excluded: it is recomputed (to the
        bit, same expressions) on the first ``inverse`` after a restore.
        ``min_with`` accumulates history across active periods, so unlike
        everything :meth:`repro.core.hfsc.HFSC.rebuild` reconstructs, a
        runtime curve *must* be stored -- re-anchoring it fresh would
        change deadlines and break byte-identical resume.
        """
        return (self.x0, self.y0, self.m1, self.dx, self.m2)

    @classmethod
    def from_doc(cls, doc) -> "RuntimeCurve":
        x0, y0, m1, dx, m2 = doc
        return cls(x0, y0, m1, dx, m2)

    def __repr__(self) -> str:
        return (
            f"RuntimeCurve(x0={self.x0:g}, y0={self.y0:g}, m1={self.m1:g}, "
            f"dx={self.dx:g}, m2={self.m2:g})"
        )


def eligible_spec(spec: ServiceCurve) -> ServiceCurve:
    """The service-curve shape whose shifted copies form the eligible curve.

    Section IV-B: for a *concave* service curve the eligible curve equals
    the deadline curve (no future demand spike to provision for), so the
    eligible spec is the curve itself.  For a *convex* two-piece curve the
    eligible curve is the line from the deadline curve's start with the
    second (higher) slope: the real-time criterion may run ahead of the
    deadline curve to bank service for the steep tail.
    """
    if spec.is_concave:
        return spec
    return ServiceCurve.linear(spec.m2)


def make_deadline_curve(spec: ServiceCurve, now: float, service: float) -> RuntimeCurve:
    """Fresh deadline curve for a class becoming active for the first time."""
    return RuntimeCurve.from_spec(spec, now, service)


def make_eligible_curve(spec: ServiceCurve, now: float, service: float) -> RuntimeCurve:
    """Fresh eligible curve (see :func:`eligible_spec`)."""
    return RuntimeCurve.from_spec(eligible_spec(spec), now, service)
