"""SCED and its fair virtual-time variant (Sections II and III-B).

Two flat (non-hierarchical) service-curve schedulers:

* :class:`SCEDScheduler` -- service curve earliest deadline first [14].
  Each session keeps a deadline curve (eq. 2-3); packets are served in
  increasing deadline order (eq. 4).  SCED guarantees every admissible set
  of service curves, but it *punishes* sessions that received excess
  service: the Fig. 2(b,c) scenario, reproduced by experiment E1.

* :class:`FairCurveScheduler` -- the modification sketched around Fig. 2(d):
  each session keeps a generalized *virtual* curve and the session with the
  smallest virtual time is served.  It never punishes a session for using
  excess bandwidth, but it can violate service curves (E2).  With linear
  curves it behaves like weighted fair queueing; with the system virtual
  time it generalizes PFQ to arbitrary curve shapes.

Together with H-FSC these let the experiments walk the trade-off the paper
builds its argument on: guarantees-without-fairness (SCED),
fairness-without-guarantees (FairCurve), and H-FSC's leaf-guarantee
compromise.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.core.curves import ServiceCurve, is_admissible
from repro.core.errors import AdmissionError, ConfigurationError
from repro.core.runtime_curves import RuntimeCurve
from repro.schedulers.base import Scheduler
from repro.sim.packet import Packet
from repro.util.heap import IndexedHeap


class _Session:
    __slots__ = ("sid", "spec", "queue", "curve", "work", "active")

    def __init__(self, sid: Any, spec: ServiceCurve):
        self.sid = sid
        self.spec = spec
        self.queue: Deque[Packet] = deque()
        self.curve: Optional[RuntimeCurve] = None
        self.work = 0.0  # cumulative service received (bytes)
        self.active = False


class SCEDScheduler(Scheduler):
    """Service Curve Earliest Deadline first (flat, punishing).

    ``admission_control=True`` (default) rejects a session set whose curves
    sum above the link rate, per the Section II admissibility condition.
    """

    def __init__(self, link_rate: float, admission_control: bool = True):
        super().__init__(link_rate)
        self._admission_control = admission_control
        self._sessions: Dict[Any, _Session] = {}
        self._deadlines: IndexedHeap[Any] = IndexedHeap()

    def add_session(self, sid: Any, spec: ServiceCurve) -> None:
        """Register session ``sid`` with service curve ``spec``."""
        if sid in self._sessions:
            raise ConfigurationError(f"duplicate session id: {sid!r}")
        if self._admission_control:
            curves = [s.spec for s in self._sessions.values()] + [spec]
            if not is_admissible(curves, self.link_rate):
                raise AdmissionError(
                    f"session {sid!r}: curve set exceeds link rate "
                    f"{self.link_rate:g}"
                )
        self._sessions[sid] = _Session(sid, spec)

    def enqueue(self, packet: Packet, now: float) -> None:
        session = self._session_for(packet)
        self._note_enqueue(packet, now)
        session.queue.append(packet)
        if not session.active:
            self._activate(session, now)

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._deadlines:
            return None
        sid, deadline = self._deadlines.pop()
        session = self._sessions[sid]
        packet = session.queue.popleft()
        packet.deadline = deadline
        self._note_dequeue(packet, now)
        session.work += packet.size
        if session.queue:
            self._push_head_deadline(session)
        else:
            session.active = False
        return packet

    def service_received(self, sid: Any) -> float:
        """Total service (bytes) delivered to session ``sid`` so far."""
        return self._sessions[sid].work

    # -- internals ----------------------------------------------------------

    def _session_for(self, packet: Packet) -> _Session:
        try:
            return self._sessions[packet.class_id]
        except KeyError:
            raise ConfigurationError(
                f"packet for unknown session {packet.class_id!r}"
            ) from None

    def _activate(self, session: _Session, now: float) -> None:
        # Eq. 3: on each new backlogged period the deadline curve becomes
        # the minimum of its old self and the service curve re-anchored at
        # (now, work received so far).
        if session.curve is None:
            session.curve = RuntimeCurve.from_spec(session.spec, now, session.work)
        else:
            session.curve.min_with(session.spec, now, session.work)
        session.active = True
        self._push_head_deadline(session)

    def _push_head_deadline(self, session: _Session) -> None:
        assert session.curve is not None
        head = session.queue[0]
        deadline = session.curve.inverse(session.work + head.size)
        self._deadlines.push_or_update(session.sid, deadline)


class FairCurveScheduler(Scheduler):
    """Virtual-time service-curve scheduling: fair but not guaranteeing.

    Each session keeps a virtual curve updated by eq. 12 (with the flat
    system virtual time ``(v_min + v_max) / 2`` over active sessions) and
    the smallest virtual time is served.  This is the link-sharing
    criterion of H-FSC run alone -- exactly the Fig. 2(d) discipline.
    """

    def __init__(self, link_rate: float):
        super().__init__(link_rate)
        self._sessions: Dict[Any, _Session] = {}
        self._vmin: IndexedHeap[Any] = IndexedHeap()
        self._vmax: IndexedHeap[Any] = IndexedHeap()  # keys negated
        self._vt_watermark = 0.0

    def add_session(self, sid: Any, spec: ServiceCurve) -> None:
        if sid in self._sessions:
            raise ConfigurationError(f"duplicate session id: {sid!r}")
        self._sessions[sid] = _Session(sid, spec)

    def enqueue(self, packet: Packet, now: float) -> None:
        session = self._sessions[packet.class_id]
        self._note_enqueue(packet, now)
        session.queue.append(packet)
        if not session.active:
            self._activate(session)

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._vmin:
            return None
        sid = self._vmin.peek_item()
        session = self._sessions[sid]
        packet = session.queue.popleft()
        self._note_dequeue(packet, now)
        session.work += packet.size
        assert session.curve is not None
        vt = session.curve.inverse(session.work)
        if session.queue:
            self._vmin.update(sid, vt)
            self._vmax.update(sid, -vt)
        else:
            session.active = False
            self._vmin.remove(sid)
            self._vmax.remove(sid)
            self._vt_watermark = max(self._vt_watermark, vt)
        return packet

    def virtual_time(self, sid: Any) -> float:
        """Current virtual time of an active session (for analysis)."""
        return self._vmin.key_of(sid)

    def system_virtual_time(self) -> float:
        if not self._vmin:
            return self._vt_watermark
        vmin = self._vmin.peek_key()
        vmax = -self._vmax.peek_key()
        return (vmin + vmax) / 2.0

    def service_received(self, sid: Any) -> float:
        return self._sessions[sid].work

    # -- internals ----------------------------------------------------------

    def _activate(self, session: _Session) -> None:
        pvt = self.system_virtual_time()
        if session.curve is None:
            session.curve = RuntimeCurve.from_spec(session.spec, pvt, session.work)
        else:
            session.curve.min_with(session.spec, pvt, session.work)
        session.active = True
        vt = session.curve.inverse(session.work)
        self._vmin.push(session.sid, vt)
        self._vmax.push(session.sid, -vt)
