"""Declarative hierarchy construction and the paper's example hierarchy.

The experiments describe link-sharing trees (like Fig. 1's CMU / U. Pitt
example) over and over; this module provides a small declarative layer so a
hierarchy is data, buildable onto any hierarchical scheduler:

    spec = [
        ClassSpec("cmu", rate=25e6/8 ...),
        ClassSpec("cmu.video", parent="cmu", ...),
    ]
    scheduler = build_hfsc(link_rate, spec)

``figure1_hierarchy`` returns the paper's Fig. 1 tree: a 45 Mbits/s link
shared by CMU (25) and U. Pitt (20), each split into traffic types, with
two real-time leaf sessions (the distinguished lecture video and audio)
under CMU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.curves import ServiceCurve
from repro.core.errors import ConfigurationError
from repro.core.hfsc import HFSC, ROOT


@dataclass(frozen=True)
class ClassSpec:
    """One class of a link-sharing hierarchy, by name.

    Exactly one of ``sc`` (same curve for both roles, the paper's model) or
    ``rt_sc`` / ``ls_sc`` must describe the curve(s).  ``rate`` is shorthand
    for a linear ``sc``.
    """

    name: str
    parent: Optional[str] = None
    rate: Optional[float] = None
    sc: Optional[ServiceCurve] = None
    rt_sc: Optional[ServiceCurve] = None
    ls_sc: Optional[ServiceCurve] = None
    ul_sc: Optional[ServiceCurve] = None

    def curves(self) -> Dict[str, Optional[ServiceCurve]]:
        given = [c for c in (self.rate, self.sc, self.rt_sc, self.ls_sc) if c is not None]
        if not given:
            raise ConfigurationError(f"class {self.name!r}: no curve given")
        if self.rate is not None and (self.sc or self.rt_sc or self.ls_sc):
            raise ConfigurationError(
                f"class {self.name!r}: pass rate or explicit curves, not both"
            )
        if self.rate is not None:
            return {"sc": ServiceCurve.linear(self.rate), "rt_sc": None,
                    "ls_sc": None, "ul_sc": self.ul_sc}
        if self.sc is not None and (self.rt_sc or self.ls_sc):
            raise ConfigurationError(
                f"class {self.name!r}: pass sc or rt_sc/ls_sc, not both"
            )
        return {"sc": self.sc, "rt_sc": self.rt_sc, "ls_sc": self.ls_sc,
                "ul_sc": self.ul_sc}


def build_hfsc(
    link_rate: float,
    specs: Sequence[ClassSpec],
    admission_control: bool = True,
) -> HFSC:
    """Build an :class:`~repro.core.hfsc.HFSC` from class specs.

    Parents may be declared in any order; ``parent=None`` attaches to the
    root.
    """
    scheduler = HFSC(link_rate, admission_control=admission_control)
    interior = {spec.parent for spec in specs if spec.parent is not None}
    pending: List[ClassSpec] = list(specs)
    known = {None, ROOT}
    progress = True
    while pending and progress:
        progress = False
        remaining: List[ClassSpec] = []
        for spec in pending:
            if spec.parent in known:
                parent = ROOT if spec.parent is None else spec.parent
                curves = spec.curves()
                if spec.name in interior and curves.get("sc") is not None:
                    # Interior classes participate in link-sharing only;
                    # their single declared curve is the link-sharing curve
                    # (real-time service applies to leaves, Section IV).
                    curves = {
                        "sc": None,
                        "rt_sc": None,
                        "ls_sc": curves["sc"],
                        "ul_sc": curves.get("ul_sc"),
                    }
                scheduler.add_class(spec.name, parent=parent, **curves)
                known.add(spec.name)
                progress = True
            else:
                remaining.append(spec)
        pending = remaining
    if pending:
        names = ", ".join(repr(s.name) for s in pending)
        raise ConfigurationError(f"unresolvable parents for classes: {names}")
    return scheduler


# -- the paper's Fig. 1 example -----------------------------------------------

#: 45 Mbits/s in bytes per second: the Fig. 1 link.  (The figure's caption
#: says "Mbytes"; the classic example and the numbers 25 + 20 = 45 match the
#: 45 Mbits/s T3 link of the CBQ paper, and the unit does not affect any
#: result shape -- only the absolute time scale.)
FIGURE1_LINK_RATE = 45e6 / 8


def figure1_hierarchy(
    link_rate: float = FIGURE1_LINK_RATE,
    audio_sc: Optional[ServiceCurve] = None,
    video_sc: Optional[ServiceCurve] = None,
) -> List[ClassSpec]:
    """The Fig. 1 CMU / U. Pitt link-sharing tree as class specs.

    CMU gets 25/45 of the link and U. Pitt 20/45.  Under CMU: audio
    (2 Mbit/s aggregate), video (10 Mbit/s) containing the distinguished
    lecture video/audio real-time sessions, and data (13 Mbit/s).  Under
    U. Pitt: audio, video and data in similar proportions.  ``audio_sc`` /
    ``video_sc`` override the curves of the distinguished lecture leaf
    sessions (to give them concave, delay-decoupled curves).
    """
    scale = link_rate / FIGURE1_LINK_RATE
    mbit = 1e6 / 8 * scale

    def lin(mbits: float) -> ServiceCurve:
        return ServiceCurve.linear(mbits * mbit)

    lecture_video = video_sc if video_sc is not None else lin(8.0)
    lecture_audio = audio_sc if audio_sc is not None else lin(0.064)
    return [
        ClassSpec("cmu", sc=lin(25.0)),
        ClassSpec("pitt", sc=lin(20.0)),
        ClassSpec("cmu.audio", parent="cmu", sc=lin(2.0)),
        ClassSpec("cmu.video", parent="cmu", sc=lin(10.0)),
        ClassSpec("cmu.data", parent="cmu", sc=lin(13.0)),
        ClassSpec("cmu.video.lecture", parent="cmu.video", sc=lecture_video),
        ClassSpec("cmu.video.other", parent="cmu.video", sc=lin(2.0)),
        ClassSpec("cmu.audio.lecture", parent="cmu.audio", sc=lecture_audio),
        ClassSpec("cmu.audio.other", parent="cmu.audio", sc=lin(1.9)),
        ClassSpec("pitt.audio", parent="pitt", sc=lin(2.0)),
        ClassSpec("pitt.video", parent="pitt", sc=lin(10.0)),
        ClassSpec("pitt.data", parent="pitt", sc=lin(8.0)),
    ]
