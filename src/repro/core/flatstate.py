"""Flat array-of-struct state for the H-FSC hot path.

The seed scheduler kept every per-class quantity on an ``HFSCClass``
object (``__slots__`` attributes) and every runtime curve on a
:class:`~repro.core.runtime_curves.RuntimeCurve` object.  Per packet the
hot path then chased dozens of attribute loads and bound-method calls --
pure interpreter overhead that dominated the measured per-packet cost
(``benchmarks/baselines/BENCH_2026-08-06.json``: H-FSC ~50-68k ops/s vs
FIFO's ~1.4M on the same harness).

This module flattens that state into parallel arrays indexed by a dense
*slot* id:

* per-class scalars (virtual time, eligible/deadline, cumulative service,
  byte counters, watermarks) live in ``array('d')`` buffers;
* the four runtime curves (deadline ``dc``, eligible ``ec``, virtual
  ``vc``, upper-limit ``ul``) are seven parallel arrays each -- anchor,
  slopes, first-segment length and the memoized knee -- with a presence
  flag, so curve updates are plain float arithmetic on array cells;
* service-curve *specs* (the configured two-piece shapes) are mirrored
  into arrays so the activation kernels never touch spec objects;
* each parent's active-children virtual-time heaps (the seed's two
  ``IndexedHeap`` instances per interior class) are flat parallel lists
  ``key/seq/slot`` plus one global position array per side.

The kernels in this module (:func:`serve_commit`, :func:`activate`,
:func:`passivate`, :func:`ls_descend`) re-implement the seed hot path
*operation for operation* over these arrays: every float expression and
every heap/tree mutation happens in the same order with the same
operands, so schedules are byte-identical -- the golden-digest suite
(``tests/test_golden_traces.py``) enforces that.

A compiled fast path (see :mod:`repro._fastpath`) provides the same
kernels as a C extension over the same buffers; import-time selection
happens in this module (``REPRO_NO_COMPILED=1`` forces pure Python).
:class:`CurveView` and :class:`HeapView` give the object façade in
:mod:`repro.core.hfsc` read/write access to the arrays under the seed's
attribute API, so persist codecs, telemetry taps, experiments and tests
are untouched.
"""

from __future__ import annotations

import heapq as _heapq
from typing import Any, Iterator, List, Optional, Tuple

INF = float("inf")
NAN = float("nan")

#: vt_policy codes (array-friendly stand-ins for the "mean"/"min"/"max"
#: strings; :mod:`repro.core.hfsc` converts at configuration time).
VT_MEAN, VT_MIN, VT_MAX = 0, 1, 2

#: Curve kinds, in blob order (see :meth:`FlatState.curve_arrays`).
CURVE_KINDS = ("dc", "ec", "vc", "ul")

#: Per-curve parallel arrays, in blob order.
CURVE_FIELDS = ("x0", "y0", "m1", "dx", "m2", "kx", "ky")

_SCALARS = (
    "cumul_rt", "total_work", "vt", "eligible", "deadline", "fit_time",
    "vt_watermark", "bytes_rt", "bytes_ls",
)

_SPECS = ("rt", "es", "ls", "ulsp")


class FlatState:
    """Parallel arrays for every hot per-class quantity, keyed by slot id.

    Slots are allocated densely and recycled through a free list; the
    object façade (:class:`repro.core.hfsc.HFSCClass`) holds ``(state,
    slot)`` and reads/writes through properties.  ``obj[slot]`` maps back
    to the façade object so flat kernels can return classes to the
    object-level shell.
    """

    __slots__ = (
        # scalars
        "cumul_rt", "total_work", "vt", "eligible", "deadline", "fit_time",
        "vt_watermark", "bytes_rt", "bytes_ls",
        # curves: dc/ec/vc/ul x (x0,y0,m1,dx,m2,kx,ky) + presence
        "dc_x0", "dc_y0", "dc_m1", "dc_dx", "dc_m2", "dc_kx", "dc_ky",
        "ec_x0", "ec_y0", "ec_m1", "ec_dx", "ec_m2", "ec_kx", "ec_ky",
        "vc_x0", "vc_y0", "vc_m1", "vc_dx", "vc_m2", "vc_kx", "vc_ky",
        "ul_x0", "ul_y0", "ul_m1", "ul_dx", "ul_m2", "ul_kx", "ul_ky",
        "dc_on", "ec_on", "vc_on", "ul_on",
        # spec mirrors: rt / es (eligible spec) / ls / ulsp x (m1,d,m2) + presence
        "rt_m1", "rt_d", "rt_m2", "rt_on",
        "es_m1", "es_d", "es_m2",
        "ls_m1", "ls_d", "ls_m2", "ls_on",
        "ulsp_m1", "ulsp_d", "ulsp_m2", "ulsp_on",
        # structure
        "parent", "index", "nactive", "ul_children", "ls_active", "rt_adm",
        # per-parent flat heaps (min over vt / max over -vt)
        "hmin_key", "hmin_seq", "hmin_slot", "hmin_pos", "hmin_ctr",
        "hmax_key", "hmax_seq", "hmax_slot", "hmax_pos", "hmax_ctr",
        # flat eligible set: recorded requests + future/ready heaps
        "req_e", "req_d",
        "efut_key", "efut_seq", "efut_slot", "efut_pos", "efut_ctr",
        "erdy_key", "erdy_seq", "erdy_slot", "erdy_pos", "erdy_ctr",
        # façade back-references
        "obj", "size", "_free",
        # per-state cache handle for the compiled kernels (a capsule
        # holding the list objects; None until first compiled call)
        "_ccache",
    )

    def __init__(self, capacity: int = 8) -> None:
        for name in _SCALARS:
            setattr(self, name, [])
        for kind in CURVE_KINDS:
            for field in CURVE_FIELDS:
                setattr(self, f"{kind}_{field}", [])
            setattr(self, f"{kind}_on", [])
        for spec in _SPECS:
            setattr(self, f"{spec}_m1", [])
            setattr(self, f"{spec}_d", [])
            setattr(self, f"{spec}_m2", [])
        self.rt_on: List[int] = []
        self.ls_on: List[int] = []
        self.ulsp_on: List[int] = []
        self.parent: List[int] = []
        self.index: List[int] = []
        self.nactive: List[int] = []
        self.ul_children: List[int] = []
        self.ls_active: List[int] = []
        self.rt_adm: List[int] = []
        self.hmin_key: List[List[float]] = []
        self.hmin_seq: List[List[int]] = []
        self.hmin_slot: List[List[int]] = []
        self.hmin_pos: List[int] = []
        self.hmin_ctr: List[int] = []
        self.hmax_key: List[List[float]] = []
        self.hmax_seq: List[List[int]] = []
        self.hmax_slot: List[List[int]] = []
        self.hmax_pos: List[int] = []
        self.hmax_ctr: List[int] = []
        self.req_e: List[float] = []
        self.req_d: List[float] = []
        self.efut_key: List[float] = []
        self.efut_seq: List[int] = []
        self.efut_slot: List[int] = []
        self.efut_pos: List[int] = []
        self.efut_ctr = 0
        self.erdy_key: List[float] = []
        self.erdy_seq: List[int] = []
        self.erdy_slot: List[int] = []
        self.erdy_pos: List[int] = []
        self.erdy_ctr = 0
        self.obj: List[Any] = []
        self.size = 0
        self._free: List[int] = []
        self._ccache = None
        if capacity:
            self._grow(capacity)

    # -- slot management ----------------------------------------------------

    def _grow(self, count: int) -> None:
        zeros_d = [0.0] * count
        zeros_b = [0] * count
        zeros_l = [0] * count
        minus_l = [-1] * count
        for name in _SCALARS:
            getattr(self, name).extend(zeros_d)
        for kind in CURVE_KINDS:
            for field in CURVE_FIELDS:
                getattr(self, f"{kind}_{field}").extend(zeros_d)
            getattr(self, f"{kind}_on").extend(zeros_b)
        for spec in _SPECS:
            getattr(self, f"{spec}_m1").extend(zeros_d)
            getattr(self, f"{spec}_d").extend(zeros_d)
            getattr(self, f"{spec}_m2").extend(zeros_d)
        self.rt_on.extend(zeros_b)
        self.ls_on.extend(zeros_b)
        self.ulsp_on.extend(zeros_b)
        self.parent.extend(minus_l)
        self.index.extend(zeros_l)
        self.nactive.extend(zeros_l)
        self.ul_children.extend(zeros_l)
        self.ls_active.extend(zeros_b)
        self.rt_adm.extend(zeros_b)
        self.hmin_pos.extend(minus_l)
        self.hmin_ctr.extend(zeros_l)
        self.hmax_pos.extend(minus_l)
        self.hmax_ctr.extend(zeros_l)
        self.req_e.extend(zeros_d)
        self.req_d.extend(zeros_d)
        self.efut_pos.extend(minus_l)
        self.erdy_pos.extend(minus_l)
        for _ in range(count):
            self.hmin_key.append([])
            self.hmin_seq.append([])
            self.hmin_slot.append([])
            self.hmax_key.append([])
            self.hmax_seq.append([])
            self.hmax_slot.append([])
            self.obj.append(None)
        self._free.extend(range(self.size + count - 1, self.size - 1, -1))
        self.size += count

    def alloc(self, obj: Any) -> int:
        """Claim a slot for ``obj`` (arrays zeroed) and return its id."""
        if not self._free:
            self._grow(max(8, self.size))
        slot = self._free.pop()
        self._reset_slot(slot)
        self.obj[slot] = obj
        return slot

    def free(self, slot: int) -> None:
        """Release a slot back to the pool (the façade detaches first)."""
        self.obj[slot] = None
        self._free.append(slot)

    def _reset_slot(self, slot: int) -> None:
        for name in _SCALARS:
            getattr(self, name)[slot] = 0.0
        for kind in CURVE_KINDS:
            for field in CURVE_FIELDS:
                getattr(self, f"{kind}_{field}")[slot] = 0.0
            getattr(self, f"{kind}_on")[slot] = 0
        for spec in _SPECS:
            getattr(self, f"{spec}_m1")[slot] = 0.0
            getattr(self, f"{spec}_d")[slot] = 0.0
            getattr(self, f"{spec}_m2")[slot] = 0.0
        self.rt_on[slot] = 0
        self.ls_on[slot] = 0
        self.ulsp_on[slot] = 0
        self.parent[slot] = -1
        self.index[slot] = 0
        self.nactive[slot] = 0
        self.ul_children[slot] = 0
        self.ls_active[slot] = 0
        self.rt_adm[slot] = 1
        self.hmin_key[slot].clear()
        self.hmin_seq[slot].clear()
        self.hmin_slot[slot].clear()
        self.hmin_pos[slot] = -1
        self.hmin_ctr[slot] = 0
        self.hmax_key[slot].clear()
        self.hmax_seq[slot].clear()
        self.hmax_slot[slot].clear()
        self.hmax_pos[slot] = -1
        self.hmax_ctr[slot] = 0
        self.req_e[slot] = 0.0
        self.req_d[slot] = 0.0
        self.efut_pos[slot] = -1
        self.erdy_pos[slot] = -1

    def adopt_slot(self, other: "FlatState", slot: int) -> int:
        """Copy ``other``'s per-slot values into a fresh slot of self.

        Used to *detach* a removed class: its façade keeps a one-slot
        private state so stale external handles still read the values the
        class died with, while the shared slot is recycled.  Heap
        membership and structure links are deliberately not copied (a
        detached class is passive by construction).
        """
        mine = self.alloc(None)
        for name in _SCALARS:
            getattr(self, name)[mine] = getattr(other, name)[slot]
        for kind in CURVE_KINDS:
            for field in CURVE_FIELDS:
                name = f"{kind}_{field}"
                getattr(self, name)[mine] = getattr(other, name)[slot]
            name = f"{kind}_on"
            getattr(self, name)[mine] = getattr(other, name)[slot]
        for spec in _SPECS:
            for field in ("m1", "d", "m2"):
                name = f"{spec}_{field}"
                getattr(self, name)[mine] = getattr(other, name)[slot]
        self.rt_on[mine] = other.rt_on[slot]
        self.ls_on[mine] = other.ls_on[slot]
        self.ulsp_on[mine] = other.ulsp_on[slot]
        self.index[mine] = other.index[slot]
        self.rt_adm[mine] = other.rt_adm[slot]
        return mine


# -- flat curve kernels (pure Python; the C fast path mirrors these) --------
#
# A curve is seven cells at ``slot`` in the arrays of one kind: anchor
# (x0, y0), first-segment slope m1 for dx units of x, then slope m2, plus
# the memoized knee (kx, ky).  ``ky`` uses NaN as the "not yet computed"
# sentinel -- the flat analogue of RuntimeCurve._ky is None -- and every
# mutating operation resets it.  All expressions are copied verbatim from
# repro.core.runtime_curves so results are bit-identical.


def curve_value(x0a, y0a, m1a, dxa, m2a, slot: int, x: float) -> float:
    """RuntimeCurve.value over array cells."""
    x0 = x0a[slot]
    y0 = y0a[slot]
    if x <= x0:
        return y0
    dx = dxa[slot]
    if x <= x0 + dx:
        return y0 + m1a[slot] * (x - x0)
    return y0 + m1a[slot] * dx + m2a[slot] * (x - x0 - dx)


def curve_inverse(x0a, y0a, m1a, dxa, m2a, kxa, kya, slot: int, y: float) -> float:
    """RuntimeCurve.inverse over array cells (knee memo included)."""
    y0 = y0a[slot]
    if y <= y0:
        return x0a[slot]
    knee_y = kya[slot]
    if knee_y != knee_y:  # NaN: memo invalid
        dx = dxa[slot]
        knee_x = kxa[slot] = x0a[slot] + dx
        knee_y = kya[slot] = y0 + m1a[slot] * dx
    else:
        knee_x = kxa[slot]
    if y <= knee_y:
        return x0a[slot] + (y - y0) / m1a[slot]
    m2 = m2a[slot]
    if m2 == 0:
        return INF
    return knee_x + (y - knee_y) / m2


def curve_min_with(
    x0a, y0a, m1a, dxa, m2a, kya,
    slot: int, sm1: float, sd: float, sm2: float, x: float, y: float,
) -> None:
    """RuntimeCurve.min_with over array cells; spec passed as floats."""
    y_here = curve_value(x0a, y0a, m1a, dxa, m2a, slot, x)
    if sm1 <= sm2:
        if y_here < y:
            return
        x0a[slot] = x
        y0a[slot] = y
        m1a[slot] = sm1
        dxa[slot] = sd
        m2a[slot] = sm2
        kya[slot] = NAN
        return
    if y > y_here:
        return
    knee_x = x0a[slot] + dxa[slot]
    knee_y = y0a[slot] + m1a[slot] * dxa[slot]
    dslope = sm1 - sm2
    cross = (knee_y - y + sm1 * x - sm2 * knee_x) / dslope
    cross = max(cross, x)
    if cross >= x + sd:
        x0a[slot] = x
        y0a[slot] = y
        m1a[slot] = sm1
        dxa[slot] = sd
        m2a[slot] = sm2
        kya[slot] = NAN
        return
    x0a[slot] = x
    y0a[slot] = y
    m1a[slot] = sm1
    dxa[slot] = cross - x
    m2a[slot] = sm2
    kya[slot] = NAN


def curve_set(state: FlatState, kind: str, slot: int,
              m1: float, d: float, m2: float, x: float, y: float) -> None:
    """RuntimeCurve.from_spec into the arrays (cold path)."""
    getattr(state, f"{kind}_x0")[slot] = x
    getattr(state, f"{kind}_y0")[slot] = y
    getattr(state, f"{kind}_m1")[slot] = m1
    getattr(state, f"{kind}_dx")[slot] = d
    getattr(state, f"{kind}_m2")[slot] = m2
    getattr(state, f"{kind}_ky")[slot] = NAN
    getattr(state, f"{kind}_on")[slot] = 1


# -- flat sibling heaps ------------------------------------------------------
#
# Port of util.heap.IndexedHeap specialised to float keys and int items
# (child slots), as three parallel lists per parent plus one global
# position array per side.  Tie-breaks (key, then insertion seq) and the
# remove/update movement rules match the original exactly, so the heap
# *layout* -- which snapshot order lists and iteration-based measurement
# read -- evolves identically.


def heap_sift_up(keys, seqs, slots, pos, i: int) -> None:
    key = keys[i]
    seq = seqs[i]
    slot = slots[i]
    while i > 0:
        pi = (i - 1) >> 1
        pk = keys[pi]
        if key < pk or (key == pk and seq < seqs[pi]):
            keys[i] = pk
            seqs[i] = seqs[pi]
            moved = slots[i] = slots[pi]
            pos[moved] = i
            i = pi
        else:
            break
    keys[i] = key
    seqs[i] = seq
    slots[i] = slot
    pos[slot] = i


def heap_sift_down(keys, seqs, slots, pos, i: int) -> None:
    size = len(keys)
    key = keys[i]
    seq = seqs[i]
    slot = slots[i]
    child = 2 * i + 1
    while child < size:
        ck = keys[child]
        right = child + 1
        if right < size:
            rk = keys[right]
            if rk < ck or (rk == ck and seqs[right] < seqs[child]):
                child = right
                ck = rk
        if ck < key or (ck == key and seqs[child] < seq):
            keys[i] = ck
            seqs[i] = seqs[child]
            moved = slots[i] = slots[child]
            pos[moved] = i
            i = child
            child = 2 * i + 1
        else:
            break
    keys[i] = key
    seqs[i] = seq
    slots[i] = slot
    pos[slot] = i


def heap_push(state: FlatState, side_min: bool, parent: int,
              slot: int, key: float) -> None:
    if side_min:
        keys, seqs, slots = (state.hmin_key[parent], state.hmin_seq[parent],
                             state.hmin_slot[parent])
        pos, ctr = state.hmin_pos, state.hmin_ctr
    else:
        keys, seqs, slots = (state.hmax_key[parent], state.hmax_seq[parent],
                             state.hmax_slot[parent])
        pos, ctr = state.hmax_pos, state.hmax_ctr
    if pos[slot] != -1:
        raise ValueError(f"slot already in heap: {slot}")
    seq = ctr[parent]
    ctr[parent] = seq + 1
    keys.append(key)
    seqs.append(seq)
    slots.append(slot)
    pos[slot] = len(keys) - 1
    heap_sift_up(keys, seqs, slots, pos, len(keys) - 1)


def heap_update(state: FlatState, side_min: bool, parent: int,
                slot: int, key: float) -> None:
    if side_min:
        keys, seqs, slots = (state.hmin_key[parent], state.hmin_seq[parent],
                             state.hmin_slot[parent])
        pos = state.hmin_pos
    else:
        keys, seqs, slots = (state.hmax_key[parent], state.hmax_seq[parent],
                             state.hmax_slot[parent])
        pos = state.hmax_pos
    i = pos[slot]
    if i < 0:
        raise KeyError(slot)
    old = keys[i]
    keys[i] = key
    if key < old:
        heap_sift_up(keys, seqs, slots, pos, i)
    else:
        heap_sift_down(keys, seqs, slots, pos, i)


def heap_remove(state: FlatState, side_min: bool, parent: int, slot: int) -> float:
    if side_min:
        keys, seqs, slots = (state.hmin_key[parent], state.hmin_seq[parent],
                             state.hmin_slot[parent])
        pos = state.hmin_pos
    else:
        keys, seqs, slots = (state.hmax_key[parent], state.hmax_seq[parent],
                             state.hmax_slot[parent])
        pos = state.hmax_pos
    i = pos[slot]
    if i < 0:
        raise KeyError(slot)
    pos[slot] = -1
    removed_key = keys[i]
    last_key = keys.pop()
    last_seq = seqs.pop()
    last_slot = slots.pop()
    if i < len(keys):
        keys[i] = last_key
        seqs[i] = last_seq
        slots[i] = last_slot
        pos[last_slot] = i
        heap_sift_up(keys, seqs, slots, pos, i)
        heap_sift_down(keys, seqs, slots, pos, pos[last_slot])
    return removed_key


def heap_push2(state: FlatState, parent: int, slot: int, key: float) -> None:
    """Push ``slot`` onto both sibling heaps (min: key, max: -key).

    Fused variant of two :func:`heap_push` calls with the sifts inlined;
    the kernels call this once per activation level.  Skips the
    already-present guard -- the caller (activation walk) owns the
    invariant.
    """
    keys = state.hmin_key[parent]
    seqs = state.hmin_seq[parent]
    slots = state.hmin_slot[parent]
    pos = state.hmin_pos
    seq = state.hmin_ctr[parent]
    state.hmin_ctr[parent] = seq + 1
    i = len(keys)
    keys.append(key)
    seqs.append(seq)
    slots.append(slot)
    while i > 0:
        pi = (i - 1) >> 1
        pk = keys[pi]
        if key < pk or (key == pk and seq < seqs[pi]):
            keys[i] = pk
            seqs[i] = seqs[pi]
            moved = slots[i] = slots[pi]
            pos[moved] = i
            i = pi
        else:
            break
    keys[i] = key
    seqs[i] = seq
    slots[i] = slot
    pos[slot] = i
    key = -key
    keys = state.hmax_key[parent]
    seqs = state.hmax_seq[parent]
    slots = state.hmax_slot[parent]
    pos = state.hmax_pos
    seq = state.hmax_ctr[parent]
    state.hmax_ctr[parent] = seq + 1
    i = len(keys)
    keys.append(key)
    seqs.append(seq)
    slots.append(slot)
    while i > 0:
        pi = (i - 1) >> 1
        pk = keys[pi]
        if key < pk or (key == pk and seq < seqs[pi]):
            keys[i] = pk
            seqs[i] = seqs[pi]
            moved = slots[i] = slots[pi]
            pos[moved] = i
            i = pi
        else:
            break
    keys[i] = key
    seqs[i] = seq
    slots[i] = slot
    pos[slot] = i


def heap_update2(state: FlatState, parent: int, slot: int, key: float) -> None:
    """Re-key ``slot`` in both sibling heaps (fused pair update).

    The sift loops are spelled out inline (same comparisons and moves as
    :func:`heap_sift_up` / :func:`heap_sift_down`, so the heap layout
    evolves identically): this runs once per serve per ancestor level
    and the helper-call overhead dominated the pure-Python profile.
    """
    for keys, seqs, slots, pos, key in (
        (state.hmin_key[parent], state.hmin_seq[parent],
         state.hmin_slot[parent], state.hmin_pos, key),
        (state.hmax_key[parent], state.hmax_seq[parent],
         state.hmax_slot[parent], state.hmax_pos, -key),
    ):
        i = pos[slot]
        old = keys[i]
        seq = seqs[i]
        if key < old:
            while i > 0:
                pi = (i - 1) >> 1
                pk = keys[pi]
                if key < pk or (key == pk and seq < seqs[pi]):
                    keys[i] = pk
                    seqs[i] = seqs[pi]
                    moved = slots[i] = slots[pi]
                    pos[moved] = i
                    i = pi
                else:
                    break
        else:
            size = len(keys)
            child = 2 * i + 1
            while child < size:
                ck = keys[child]
                right = child + 1
                if right < size:
                    rk = keys[right]
                    if rk < ck or (rk == ck and seqs[right] < seqs[child]):
                        child = right
                        ck = rk
                if ck < key or (ck == key and seqs[child] < seq):
                    keys[i] = ck
                    seqs[i] = seqs[child]
                    moved = slots[i] = slots[child]
                    pos[moved] = i
                    i = child
                    child = 2 * i + 1
                else:
                    break
        keys[i] = key
        seqs[i] = seq
        slots[i] = slot
        pos[slot] = i


def heap_remove2(state: FlatState, parent: int, slot: int) -> None:
    """Remove ``slot`` from both sibling heaps (fused pair removal)."""
    keys = state.hmin_key[parent]
    seqs = state.hmin_seq[parent]
    slots = state.hmin_slot[parent]
    pos = state.hmin_pos
    i = pos[slot]
    pos[slot] = -1
    last_key = keys.pop()
    last_seq = seqs.pop()
    last_slot = slots.pop()
    if i < len(keys):
        keys[i] = last_key
        seqs[i] = last_seq
        slots[i] = last_slot
        pos[last_slot] = i
        heap_sift_up(keys, seqs, slots, pos, i)
        heap_sift_down(keys, seqs, slots, pos, pos[last_slot])
    keys = state.hmax_key[parent]
    seqs = state.hmax_seq[parent]
    slots = state.hmax_slot[parent]
    pos = state.hmax_pos
    i = pos[slot]
    pos[slot] = -1
    last_key = keys.pop()
    last_seq = seqs.pop()
    last_slot = slots.pop()
    if i < len(keys):
        keys[i] = last_key
        seqs[i] = last_seq
        slots[i] = last_slot
        pos[last_slot] = i
        heap_sift_up(keys, seqs, slots, pos, i)
        heap_sift_down(keys, seqs, slots, pos, pos[last_slot])


def heap_iter_sorted(keys, seqs, slots) -> Iterator[Tuple[float, int]]:
    """Lazy ascending (key, seq) read of a flat heap; yields (key, slot).

    Port of IndexedHeap.iter_sorted (frontier exploration through heap
    children); used by the upper-limit descent's skip-scan.
    """
    if not keys:
        return
    heappush = _heapq.heappush
    heappop = _heapq.heappop
    frontier: List[Tuple[float, int, int]] = [(keys[0], seqs[0], 0)]
    size = len(keys)
    while frontier:
        key, _seq, i = heappop(frontier)
        yield key, slots[i]
        child = 2 * i + 1
        if child < size:
            heappush(frontier, (keys[child], seqs[child], child))
            child += 1
            if child < size:
                heappush(frontier, (keys[child], seqs[child], child))


def system_vt(state: FlatState, slot: int, policy: int) -> float:
    """HFSCClass.system_vt over the flat heaps."""
    if state.nactive[slot] == 0:
        return state.vt_watermark[slot]
    vmin = state.hmin_key[slot][0]
    vmax = -state.hmax_key[slot][0]
    if policy == VT_MIN:
        return vmin
    if policy == VT_MAX:
        return vmax
    return (vmin + vmax) / 2.0


# -- flat eligible set -------------------------------------------------------
#
# The "heap" eligible-set backend: the paper's calendar-queue variant
# (Section V: eligible times tracked separately, deadlines in a heap for
# the matured requests) rebuilt on flat indexed heaps over FlatState
# slots.  Requests whose eligible time has not arrived sit in a *future*
# heap keyed ``(eligible, insertion seq)``; a query at ``now`` first
# matures everything due into a *ready* heap keyed ``(deadline,
# maturation seq)`` and answers from its root.  Simulation time only
# advances between queries, so matured requests never move back --
# ``update`` re-inserts through the future heap, exactly like the
# calendar backend.
#
# Selection is identical to the tree/calendar backends away from exact
# deadline ties (the one place backends may legitimately differ, see
# tests/golden_scenarios.py); unlike the treap there is no RNG and no
# pointer chasing, so the per-serve remove+insert is two short list
# sifts.


def _eheap_delete(keys, seqs, slots, pos, i: int) -> None:
    """Remove entry ``i`` (pos already cleared) with the swap-last rule."""
    last_key = keys.pop()
    last_seq = seqs.pop()
    last_slot = slots.pop()
    if i < len(keys):
        keys[i] = last_key
        seqs[i] = last_seq
        slots[i] = last_slot
        pos[last_slot] = i
        heap_sift_up(keys, seqs, slots, pos, i)
        heap_sift_down(keys, seqs, slots, pos, pos[last_slot])


def elig_insert(state: FlatState, slot: int, eligible: float,
                deadline: float) -> None:
    """Add a request for ``slot`` (ValueError if already present)."""
    if state.efut_pos[slot] != -1 or state.erdy_pos[slot] != -1:
        raise ValueError(f"slot already present: {slot}")
    state.req_e[slot] = eligible
    state.req_d[slot] = deadline
    keys = state.efut_key
    seqs = state.efut_seq
    slots = state.efut_slot
    seq = state.efut_ctr
    state.efut_ctr = seq + 1
    i = len(keys)
    keys.append(eligible)
    seqs.append(seq)
    slots.append(slot)
    heap_sift_up(keys, seqs, slots, state.efut_pos, i)


def elig_remove(state: FlatState, slot: int) -> None:
    """Drop the request for ``slot`` (KeyError if absent)."""
    i = state.efut_pos[slot]
    if i >= 0:
        state.efut_pos[slot] = -1
        _eheap_delete(state.efut_key, state.efut_seq, state.efut_slot,
                      state.efut_pos, i)
        return
    i = state.erdy_pos[slot]
    if i < 0:
        raise KeyError(slot)
    state.erdy_pos[slot] = -1
    _eheap_delete(state.erdy_key, state.erdy_seq, state.erdy_slot,
                  state.erdy_pos, i)


def elig_update(state: FlatState, slot: int, eligible: float,
                deadline: float) -> None:
    """Re-key the request for ``slot`` (remove + insert, calendar-style)."""
    elig_remove(state, slot)
    elig_insert(state, slot, eligible, deadline)


def elig_query(state: FlatState, now: float) -> int:
    """Mature due requests, then return the min-deadline ready slot or -1."""
    fkeys = state.efut_key
    fseqs = state.efut_seq
    fslots = state.efut_slot
    fpos = state.efut_pos
    rkeys = state.erdy_key
    rseqs = state.erdy_seq
    rslots = state.erdy_slot
    rpos = state.erdy_pos
    req_d = state.req_d
    while fkeys and fkeys[0] <= now:
        slot = fslots[0]
        fpos[slot] = -1
        _eheap_delete(fkeys, fseqs, fslots, fpos, 0)
        seq = state.erdy_ctr
        state.erdy_ctr = seq + 1
        i = len(rkeys)
        rkeys.append(req_d[slot])
        rseqs.append(seq)
        rslots.append(slot)
        heap_sift_up(rkeys, rseqs, rslots, rpos, i)
    if not rkeys:
        return -1
    return rslots[0]


def elig_min_eligible(state: FlatState) -> Optional[float]:
    """Earliest eligible time, matching the calendar backend's answer."""
    if state.erdy_key:
        # Matured requests are eligible "now"; report the smallest
        # recorded eligible time for parity with the tree backend.
        req_e = state.req_e
        return min(req_e[slot] for slot in state.erdy_slot)
    if state.efut_key:
        return state.efut_key[0]
    return None


def elig_clear(state: FlatState) -> None:
    """Empty the eligible set (rebuild/restore start from scratch)."""
    for slot in state.efut_slot:
        state.efut_pos[slot] = -1
    for slot in state.erdy_slot:
        state.erdy_pos[slot] = -1
    state.efut_key.clear()
    state.efut_seq.clear()
    state.efut_slot.clear()
    state.efut_ctr = 0
    state.erdy_key.clear()
    state.erdy_seq.clear()
    state.erdy_slot.clear()
    state.erdy_ctr = 0


class FlatEligibleSet:
    """Eligible-set protocol over one scheduler's FlatState arrays.

    Items are the class façade objects (``(state, slot)`` handles); all
    storage lives in the shared FlatState so the kernels and a compiled
    fast path can reach it without touching Python objects.
    """

    __slots__ = ("_s",)

    def __init__(self, state: FlatState) -> None:
        self._s = state
        elig_clear(state)

    def __len__(self) -> int:
        s = self._s
        return len(s.efut_key) + len(s.erdy_key)

    def __bool__(self) -> bool:
        s = self._s
        return bool(s.efut_key) or bool(s.erdy_key)

    def __contains__(self, item: Any) -> bool:
        s = self._s
        if item.state is not s:
            return False
        slot = item.slot
        return s.efut_pos[slot] != -1 or s.erdy_pos[slot] != -1

    def _slot_of(self, item: Any) -> int:
        if item not in self:
            raise KeyError(item)
        return item.slot

    def eligible_of(self, item: Any) -> float:
        return self._s.req_e[self._slot_of(item)]

    def deadline_of(self, item: Any) -> float:
        return self._s.req_d[self._slot_of(item)]

    def insert(self, item: Any, eligible: float, deadline: float) -> None:
        s = self._s
        if item.state is not s:
            raise ValueError(f"item belongs to a different state: {item!r}")
        if s.efut_pos[item.slot] != -1 or s.erdy_pos[item.slot] != -1:
            raise ValueError(f"item already present: {item!r}")
        elig_insert(s, item.slot, eligible, deadline)

    def remove(self, item: Any) -> None:
        elig_remove(self._s, self._slot_of(item))

    def update(self, item: Any, eligible: float, deadline: float) -> None:
        elig_update(self._s, self._slot_of(item), eligible, deadline)

    def update_deadline(self, item: Any, deadline: float) -> None:
        slot = self._slot_of(item)
        elig_update(self._s, slot, self._s.req_e[slot], deadline)

    def min_eligible(self) -> Optional[float]:
        return elig_min_eligible(self._s)

    def min_deadline_eligible(
        self, now: float
    ) -> Optional[Tuple[Any, float, float]]:
        s = self._s
        slot = elig_query(s, now)
        if slot < 0:
            return None
        return s.obj[slot], s.req_e[slot], s.req_d[slot]

    def items(self) -> Iterator[Tuple[Any, float, float]]:
        """All requests in eligible-time order (mainly for tests).

        Exact eligible-time ties are ordered by deadline then slot index;
        like the backends' tie behaviour generally, this may differ from
        the treap's insertion-order rule.
        """
        s = self._s
        members = list(s.efut_slot) + list(s.erdy_slot)
        members.sort(key=lambda slot: (s.req_e[slot], s.req_d[slot],
                                       s.index[slot]))
        for slot in members:
            yield s.obj[slot], s.req_e[slot], s.req_d[slot]

    def check_invariants(self) -> None:
        """Verify heap order and position maps (for tests)."""
        s = self._s
        for keys, seqs, slots, pos in (
            (s.efut_key, s.efut_seq, s.efut_slot, s.efut_pos),
            (s.erdy_key, s.erdy_seq, s.erdy_slot, s.erdy_pos),
        ):
            assert len(keys) == len(seqs) == len(slots)
            for i in range(1, len(keys)):
                parent = (i - 1) >> 1
                assert (keys[parent], seqs[parent]) <= (keys[i], seqs[i]), (
                    "eligible heap order violated"
                )
            for i, slot in enumerate(slots):
                assert pos[slot] == i, "eligible position map stale"
        for slot in s.efut_slot:
            assert s.erdy_pos[slot] == -1, "slot in both eligible heaps"


# -- hot-path kernels --------------------------------------------------------
#
# One call per scheduler step; each mirrors the corresponding block of
# the seed implementation (repro.core.hfsc at the PR-5 revision) exactly.


def activate_ls(state: FlatState, slot: int, policy: int) -> None:
    """HFSC._activate_ls: walk up activating classes (eq. 12 per level)."""
    vc_x0 = state.vc_x0
    vc_y0 = state.vc_y0
    vc_m1 = state.vc_m1
    vc_dx = state.vc_dx
    vc_m2 = state.vc_m2
    vc_kx = state.vc_kx
    vc_ky = state.vc_ky
    vc_on = state.vc_on
    parent = state.parent
    nactive = state.nactive
    vt = state.vt
    total_work = state.total_work
    ls_active = state.ls_active
    watermark = state.vt_watermark
    s = slot
    while parent[s] >= 0:
        p = parent[s]
        parent_was_active = nactive[p] > 0
        if not parent_was_active:
            pvt = watermark[p]
        else:
            vmin = state.hmin_key[p][0]
            vmax = -state.hmax_key[p][0]
            if policy == VT_MIN:
                pvt = vmin
            elif policy == VT_MAX:
                pvt = vmax
            else:
                pvt = (vmin + vmax) / 2.0
        w = total_work[s]
        if not vc_on[s]:
            vc_x0[s] = pvt
            vc_y0[s] = w
            vc_m1[s] = state.ls_m1[s]
            vc_dx[s] = state.ls_d[s]
            vc_m2[s] = state.ls_m2[s]
            vc_ky[s] = NAN
            vc_on[s] = 1
        else:
            curve_min_with(vc_x0, vc_y0, vc_m1, vc_dx, vc_m2, vc_ky,
                           s, state.ls_m1[s], state.ls_d[s], state.ls_m2[s],
                           pvt, w)
        v = curve_inverse(vc_x0, vc_y0, vc_m1, vc_dx, vc_m2, vc_kx, vc_ky, s, w)
        vt[s] = v
        ls_active[s] = 1
        heap_push2(state, p, s, v)
        nactive[p] += 1
        if parent_was_active or parent[p] < 0:
            break
        s = p


def passivate_ls(state: FlatState, slot: int) -> None:
    """HFSC._passivate_ls: walk up detaching newly idle classes."""
    parent = state.parent
    nactive = state.nactive
    vt = state.vt
    watermark = state.vt_watermark
    s = slot
    while parent[s] >= 0:
        p = parent[s]
        heap_remove2(state, p, s)
        nactive[p] -= 1
        if vt[s] > watermark[p]:
            watermark[p] = vt[s]
        state.ls_active[s] = 0
        if nactive[p] > 0 or parent[p] < 0:
            break
        s = p


def activate(state: FlatState, slot: int, now: float, rt_tracked: bool,
             head_size: float, policy: int) -> None:
    """HFSC._activate: Fig. 5(a) update_ed + Fig. 6 update_v, flat.

    The shell is responsible for the eligible-set insert (when
    ``rt_tracked``) and the upper-limit wait-heap push (when the class
    has an ul spec), reading the freshly written ``eligible``,
    ``deadline`` and ``fit_time`` cells.
    """
    c = state.cumul_rt[slot]
    if rt_tracked:
        if not state.dc_on[slot]:
            curve_set(state, "dc", slot, state.rt_m1[slot], state.rt_d[slot],
                      state.rt_m2[slot], now, c)
            curve_set(state, "ec", slot, state.es_m1[slot], state.es_d[slot],
                      state.es_m2[slot], now, c)
        else:
            curve_min_with(state.dc_x0, state.dc_y0, state.dc_m1, state.dc_dx,
                           state.dc_m2, state.dc_ky, slot,
                           state.rt_m1[slot], state.rt_d[slot],
                           state.rt_m2[slot], now, c)
            curve_min_with(state.ec_x0, state.ec_y0, state.ec_m1, state.ec_dx,
                           state.ec_m2, state.ec_ky, slot,
                           state.es_m1[slot], state.es_d[slot],
                           state.es_m2[slot], now, c)
        state.eligible[slot] = curve_inverse(
            state.ec_x0, state.ec_y0, state.ec_m1, state.ec_dx, state.ec_m2,
            state.ec_kx, state.ec_ky, slot, c)
        state.deadline[slot] = curve_inverse(
            state.dc_x0, state.dc_y0, state.dc_m1, state.dc_dx, state.dc_m2,
            state.dc_kx, state.dc_ky, slot, c + head_size)
    if state.ulsp_on[slot]:
        w = state.total_work[slot]
        if not state.ul_on[slot]:
            curve_set(state, "ul", slot, state.ulsp_m1[slot],
                      state.ulsp_d[slot], state.ulsp_m2[slot], now, w)
        else:
            curve_min_with(state.ul_x0, state.ul_y0, state.ul_m1, state.ul_dx,
                           state.ul_m2, state.ul_ky, slot,
                           state.ulsp_m1[slot], state.ulsp_d[slot],
                           state.ulsp_m2[slot], now, w)
        state.fit_time[slot] = curve_inverse(
            state.ul_x0, state.ul_y0, state.ul_m1, state.ul_dx, state.ul_m2,
            state.ul_kx, state.ul_ky, slot, w)
    if state.ls_on[slot]:
        activate_ls(state, slot, policy)


def serve_commit(state: FlatState, slot: int, size: float, realtime: bool,
                 rt_tracked: bool, backlogged: bool, next_size: float) -> None:
    """The state mutation of HFSC._serve after the packet left the queue.

    Covers: real-time counters, the Fig. 6 ancestor virtual-time walk
    with its heap re-keying (or the dying-path skip), the upper-limit fit
    update, the Fig. 5 eligible/deadline advance for a still-backlogged
    leaf, and the link-sharing passivation walk otherwise.  The shell
    performs the eligible-set and ul-wait-heap mutations around this call
    (those structures hold façade objects).
    """
    if realtime:
        state.cumul_rt[slot] += size
        state.bytes_rt[slot] += size
    else:
        state.bytes_ls[slot] += size
    total_work = state.total_work
    if state.ls_on[slot]:
        vc_x0 = state.vc_x0
        vc_y0 = state.vc_y0
        vc_m1 = state.vc_m1
        vc_dx = state.vc_dx
        vc_m2 = state.vc_m2
        vc_kx = state.vc_kx
        vc_ky = state.vc_ky
        parent = state.parent
        nactive = state.nactive
        vt = state.vt
        s = slot
        dying = not backlogged
        while True:
            p = parent[s]
            if p < 0:
                total_work[s] += size
                break
            w = total_work[s] = total_work[s] + size
            # curve_inverse(vc_*, s, w) inlined: the walk runs for every
            # served packet and the call overhead dominates the math.
            y0 = vc_y0[s]
            if w <= y0:
                v = vc_x0[s]
            else:
                knee_y = vc_ky[s]
                if knee_y != knee_y:  # NaN: memo invalid
                    dx = vc_dx[s]
                    knee_x = vc_kx[s] = vc_x0[s] + dx
                    knee_y = vc_ky[s] = y0 + vc_m1[s] * dx
                else:
                    knee_x = vc_kx[s]
                if w <= knee_y:
                    v = vc_x0[s] + (w - y0) / vc_m1[s]
                else:
                    m2 = vc_m2[s]
                    v = INF if m2 == 0 else knee_x + (w - knee_y) / m2
            vt[s] = v
            if dying:
                dying = nactive[p] == 1 and parent[p] >= 0
            else:
                heap_update2(state, p, s, v)
            s = p
    else:
        total_work[slot] += size
    if state.ul_on[slot]:
        state.fit_time[slot] = curve_inverse(
            state.ul_x0, state.ul_y0, state.ul_m1, state.ul_dx, state.ul_m2,
            state.ul_kx, state.ul_ky, slot, total_work[slot])
    if backlogged:
        if rt_tracked:
            c = state.cumul_rt[slot]
            if realtime:
                # curve_inverse(ec_*, slot, c) inlined (see vt walk above).
                y0 = state.ec_y0[slot]
                if c <= y0:
                    state.eligible[slot] = state.ec_x0[slot]
                else:
                    knee_y = state.ec_ky[slot]
                    if knee_y != knee_y:  # NaN: memo invalid
                        dx = state.ec_dx[slot]
                        knee_x = state.ec_kx[slot] = state.ec_x0[slot] + dx
                        knee_y = state.ec_ky[slot] = y0 + state.ec_m1[slot] * dx
                    else:
                        knee_x = state.ec_kx[slot]
                    if c <= knee_y:
                        state.eligible[slot] = (
                            state.ec_x0[slot] + (c - y0) / state.ec_m1[slot]
                        )
                    else:
                        m2 = state.ec_m2[slot]
                        state.eligible[slot] = (
                            INF if m2 == 0 else knee_x + (c - knee_y) / m2
                        )
            # curve_inverse(dc_*, slot, c + next_size) inlined.
            y = c + next_size
            y0 = state.dc_y0[slot]
            if y <= y0:
                state.deadline[slot] = state.dc_x0[slot]
            else:
                knee_y = state.dc_ky[slot]
                if knee_y != knee_y:  # NaN: memo invalid
                    dx = state.dc_dx[slot]
                    knee_x = state.dc_kx[slot] = state.dc_x0[slot] + dx
                    knee_y = state.dc_ky[slot] = y0 + state.dc_m1[slot] * dx
                else:
                    knee_x = state.dc_kx[slot]
                if y <= knee_y:
                    state.deadline[slot] = (
                        state.dc_x0[slot] + (y - y0) / state.dc_m1[slot]
                    )
                else:
                    m2 = state.dc_m2[slot]
                    state.deadline[slot] = (
                        INF if m2 == 0 else knee_x + (y - knee_y) / m2
                    )
    elif state.ls_on[slot]:
        passivate_ls(state, slot)


def elig_requeue(state: FlatState, slot: int, eligible: float,
                 deadline: float, now: float) -> None:
    """Serve-path re-key: the calendar round trip collapsed when due.

    Semantically ``elig_update`` followed by the maturation the next
    query would perform: when the new eligible time is already due
    (``eligible <= now``) and the slot sits in the ready heap, the
    remove / future-insert / mature-back dance (four to five sifts) is
    replaced by one in-place re-key with a fresh maturation seq -- the
    exact state the next query would build, minus the churn.  The fresh
    seq orders exact deadline ties by *this* serve order rather than by
    the future heap's maturation order; deadline ties are the one point
    where eligible-set backends may legitimately differ (see
    tests/golden_scenarios.py), and every caller -- per-packet and
    batched, pure and compiled -- routes through this same rule.
    """
    if eligible <= now:
        i = state.erdy_pos[slot]
        if i >= 0:
            state.req_e[slot] = eligible
            state.req_d[slot] = deadline
            seq = state.erdy_ctr
            state.erdy_ctr = seq + 1
            keys = state.erdy_key
            seqs = state.erdy_seq
            slots = state.erdy_slot
            pos = state.erdy_pos
            old = keys[i]
            # The fresh seq is the largest in the heap, so a smaller key
            # can only rise and an equal-or-larger key can only sink.
            # Sift loops inlined (same moves as heap_sift_up/_down).
            if deadline < old:
                while i > 0:
                    pi = (i - 1) >> 1
                    pk = keys[pi]
                    if deadline < pk:
                        keys[i] = pk
                        seqs[i] = seqs[pi]
                        moved = slots[i] = slots[pi]
                        pos[moved] = i
                        i = pi
                    else:
                        break
            else:
                size = len(keys)
                child = 2 * i + 1
                while child < size:
                    ck = keys[child]
                    right = child + 1
                    if right < size:
                        rk = keys[right]
                        if rk < ck or (rk == ck and seqs[right] < seqs[child]):
                            child = right
                            ck = rk
                    # Generic tie-break is seqs[child] < seq, always true
                    # here (seq is the freshest), so <= is exact.
                    if ck <= deadline:
                        keys[i] = ck
                        seqs[i] = seqs[child]
                        moved = slots[i] = slots[child]
                        pos[moved] = i
                        i = child
                        child = 2 * i + 1
                    else:
                        break
            keys[i] = deadline
            seqs[i] = seq
            slots[i] = slot
            pos[slot] = i
            return
    elig_remove(state, slot)
    elig_insert(state, slot, eligible, deadline)


def serve_step(state: FlatState, slot: int, size: float, realtime: bool,
               rt_tracked: bool, backlogged: bool, next_size: float,
               now: float) -> None:
    """:func:`serve_commit` fused with the flat eligible-set maintenance.

    One kernel call per served packet instead of two or three: the
    serve bookkeeping runs first, then the request for a still-backlogged
    tracked leaf is re-keyed (:func:`elig_requeue`) or a drained leaf's
    request is dropped.  Only valid with the flat ("heap") eligible
    backend -- the legacy backends keep façade objects the shell must
    touch itself.
    """
    serve_commit(state, slot, size, realtime, rt_tracked, backlogged,
                 next_size)
    if rt_tracked:
        if backlogged:
            elig_requeue(state, slot, state.eligible[slot],
                         state.deadline[slot], now)
        else:
            elig_remove(state, slot)


def activate_step(state: FlatState, slot: int, now: float, rt_tracked: bool,
                  head_size: float, policy: int) -> None:
    """:func:`activate` fused with the flat eligible-set insert.

    The passive->active update writes ``eligible``/``deadline``; with the
    flat backend the request insert needs no façade, so the whole
    transition is one kernel call.  The upper-limit wait-heap push stays
    in the shell (that heap holds façade objects).
    """
    activate(state, slot, now, rt_tracked, head_size, policy)
    if rt_tracked:
        elig_insert(state, slot, state.eligible[slot], state.deadline[slot])


def ls_descend(state: FlatState, root_slot: int) -> int:
    """Smallest-virtual-time descent, no upper limits anywhere (fast path).

    Returns the chosen slot (== ``root_slot`` when nothing is active).
    """
    nactive = state.nactive
    hmin_slot = state.hmin_slot
    s = root_slot
    while nactive[s] > 0:
        s = hmin_slot[s][0]
    return s


# -- façade views ------------------------------------------------------------


class CurveView:
    """RuntimeCurve-compatible window onto one curve's array cells.

    Created on demand by the :class:`repro.core.hfsc.HFSCClass` curve
    properties; mutations write straight through to the flat arrays.
    Implements the full RuntimeCurve API (the persist codecs call
    ``to_doc``, the drift guard calls ``rebase``/``shift_x``, analysis
    reads the parameters).
    """

    __slots__ = ("_s", "_k", "_i")

    def __init__(self, state: FlatState, kind: str, slot: int):
        self._s = state
        self._k = kind
        self._i = slot

    def _arr(self, field: str):
        return getattr(self._s, f"{self._k}_{field}")

    # Parameter access, read/write.
    @property
    def x0(self) -> float:
        return self._arr("x0")[self._i]

    @x0.setter
    def x0(self, v: float) -> None:
        self._arr("x0")[self._i] = v

    @property
    def y0(self) -> float:
        return self._arr("y0")[self._i]

    @property
    def m1(self) -> float:
        return self._arr("m1")[self._i]

    @property
    def dx(self) -> float:
        return self._arr("dx")[self._i]

    @property
    def m2(self) -> float:
        return self._arr("m2")[self._i]

    @property
    def knee(self) -> Tuple[float, float]:
        return (self.x0 + self.dx, self.y0 + self.m1 * self.dx)

    def value(self, x: float) -> float:
        s = self._s
        k = self._k
        return curve_value(getattr(s, f"{k}_x0"), getattr(s, f"{k}_y0"),
                           getattr(s, f"{k}_m1"), getattr(s, f"{k}_dx"),
                           getattr(s, f"{k}_m2"), self._i, x)

    def inverse(self, y: float) -> float:
        s = self._s
        k = self._k
        return curve_inverse(getattr(s, f"{k}_x0"), getattr(s, f"{k}_y0"),
                             getattr(s, f"{k}_m1"), getattr(s, f"{k}_dx"),
                             getattr(s, f"{k}_m2"), getattr(s, f"{k}_kx"),
                             getattr(s, f"{k}_ky"), self._i, y)

    def min_with(self, spec, x: float, y: float) -> None:
        s = self._s
        k = self._k
        curve_min_with(getattr(s, f"{k}_x0"), getattr(s, f"{k}_y0"),
                       getattr(s, f"{k}_m1"), getattr(s, f"{k}_dx"),
                       getattr(s, f"{k}_m2"), getattr(s, f"{k}_ky"),
                       self._i, spec.m1, spec.d, spec.m2, x, y)

    def rebase(self, x: float) -> None:
        i = self._i
        x0a = self._arr("x0")
        step = x - x0a[i]
        if step <= 0.0:
            return
        y0a = self._arr("y0")
        m1a = self._arr("m1")
        dxa = self._arr("dx")
        m2a = self._arr("m2")
        if step < dxa[i]:
            y0a[i] += m1a[i] * step
            dxa[i] -= step
        else:
            y0a[i] += m1a[i] * dxa[i] + m2a[i] * (step - dxa[i])
            m1a[i] = m2a[i]
            dxa[i] = 0.0
        x0a[i] = x
        self._arr("ky")[i] = NAN

    def shift_x(self, delta: float) -> None:
        self._arr("x0")[self._i] += delta
        self._arr("ky")[self._i] = NAN

    def to_doc(self) -> Tuple[float, float, float, float, float]:
        return (self.x0, self.y0, self.m1, self.dx, self.m2)

    def copy(self):
        from repro.core.runtime_curves import RuntimeCurve
        return RuntimeCurve(self.x0, self.y0, self.m1, self.dx, self.m2)

    def __repr__(self) -> str:
        return (
            f"RuntimeCurve(x0={self.x0:g}, y0={self.y0:g}, m1={self.m1:g}, "
            f"dx={self.dx:g}, m2={self.m2:g})"
        )


class HeapView:
    """IndexedHeap-compatible window onto one parent's flat sibling heap.

    ``side_min=True`` is the virtual-time min-heap, ``False`` the negated
    max-heap.  Items are the child façade objects (``state.obj``), so
    existing callers -- snapshot order lists, ``virtual_times()``,
    invariant checks, tests -- see exactly the seed API.
    """

    __slots__ = ("_s", "_p", "_min")

    def __init__(self, state: FlatState, parent_slot: int, side_min: bool):
        self._s = state
        self._p = parent_slot
        self._min = side_min

    def _tri(self):
        s = self._s
        p = self._p
        if self._min:
            return s.hmin_key[p], s.hmin_seq[p], s.hmin_slot[p], s.hmin_pos
        return s.hmax_key[p], s.hmax_seq[p], s.hmax_slot[p], s.hmax_pos

    def __len__(self) -> int:
        return len(self._tri()[0])

    def __bool__(self) -> bool:
        return bool(self._tri()[0])

    def __contains__(self, item: Any) -> bool:
        state = self._s
        slot = item.slot
        if item.state is not state or state.parent[slot] != self._p:
            return False
        pos = state.hmin_pos if self._min else state.hmax_pos
        return pos[slot] != -1

    def __iter__(self) -> Iterator[Any]:
        obj = self._s.obj
        return (obj[slot] for slot in self._tri()[2])

    def key_of(self, item: Any) -> float:
        keys, _seqs, _slots, pos = self._tri()
        if item not in self:
            raise KeyError(item)
        return keys[pos[item.slot]]

    def peek_key(self) -> float:
        keys = self._tri()[0]
        if not keys:
            raise IndexError("peek from empty heap")
        return keys[0]

    def peek_item(self) -> Any:
        _keys, _seqs, slots, _pos = self._tri()
        if not slots:
            raise IndexError("peek from empty heap")
        return self._s.obj[slots[0]]

    def min_is_tied(self) -> bool:
        keys = self._tri()[0]
        key = keys[0]
        if len(keys) > 1 and keys[1] == key:
            return True
        return len(keys) > 2 and keys[2] == key

    def push(self, item: Any, key: float) -> None:
        heap_push(self._s, self._min, self._p, item.slot, key)

    def update(self, item: Any, key: float) -> None:
        heap_update(self._s, self._min, self._p, item.slot, key)

    def remove(self, item: Any) -> float:
        return heap_remove(self._s, self._min, self._p, item.slot)

    def clear(self) -> None:
        keys, seqs, slots, pos = self._tri()
        for slot in slots:
            pos[slot] = -1
        keys.clear()
        seqs.clear()
        slots.clear()
        ctr = self._s.hmin_ctr if self._min else self._s.hmax_ctr
        ctr[self._p] = 0

    def iter_sorted(self) -> Iterator[Tuple[float, Any]]:
        keys, seqs, slots, _pos = self._tri()
        obj = self._s.obj
        return ((key, obj[slot]) for key, slot in
                heap_iter_sorted(keys, seqs, slots))

    def iter_insertion(self) -> Iterator[Any]:
        keys, seqs, slots, _pos = self._tri()
        obj = self._s.obj
        order = sorted(range(len(seqs)), key=seqs.__getitem__)
        return (obj[slots[i]] for i in order)


# -- compiled fast-path selection -------------------------------------------
#
# repro._fastpath (a hand-built C extension, see repro/_fastpath/) can
# replace the hot kernels wholesale.  Selection happens once at import;
# REPRO_NO_COMPILED=1 forces the pure-Python definitions above.  The C
# kernels operate on the same FlatState arrays through the buffer
# protocol and mirror the Python expressions exactly, so the choice is
# digest-invisible (CI runs the golden suite under both).

COMPILED = False

try:  # pragma: no cover - exercised via the compiled CI leg
    from repro._fastpath import load as _load_fastpath

    _fast = _load_fastpath()
    if _fast is not None:
        serve_commit = _fast.serve_commit  # noqa: F811
        serve_step = _fast.serve_step  # noqa: F811
        activate = _fast.activate  # noqa: F811
        activate_step = _fast.activate_step  # noqa: F811
        activate_ls = _fast.activate_ls  # noqa: F811
        passivate_ls = _fast.passivate_ls  # noqa: F811
        ls_descend = _fast.ls_descend  # noqa: F811
        elig_insert = _fast.elig_insert  # noqa: F811
        elig_remove = _fast.elig_remove  # noqa: F811
        elig_update = _fast.elig_update  # noqa: F811
        elig_requeue = _fast.elig_requeue  # noqa: F811
        elig_query = _fast.elig_query  # noqa: F811
        COMPILED = True
except Exception:  # noqa: BLE001 - any failure means "stay pure Python"
    COMPILED = False
