"""Service-curve algebra (Sections II and V of the paper).

A *service curve* ``S`` is a non-decreasing function with ``S(0) = 0``: a
session (or class) is guaranteed curve ``S`` if during any backlogged period
starting at ``t1`` it receives at least ``S(t2 - t1)`` service by every
``t2`` (eq. 1 of the paper).  Following Section V, user-facing curves are
**two-piece linear**, described by slope ``m1`` for the first ``d`` time
units and slope ``m2`` afterwards:

* ``m1 > m2`` -- *concave* curve: a burst served quickly, then a long-term
  rate.  Gives low delay decoupled from the rate (priority service).
* ``m1 < m2`` -- *convex* curve: service deferred, then a high rate.
* ``m1 == m2`` -- linear curve: plain rate guarantee (what WFQ/virtual
  clock provide).

:class:`ServiceCurve` is the immutable spec.  :class:`PiecewiseLinearCurve`
is a general non-decreasing piecewise-linear function with exact ``min``,
``sum``, ``shift`` and inverse operations; it serves as the reference
implementation against which the O(1) runtime curves of
:mod:`repro.core.runtime_curves` are property-tested, and as the engine for
admission control (sum of leaf curves <= server curve).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError

INFINITY = float("inf")

#: Relative tolerance used when comparing curve values assembled through
#: different float operation orders.
REL_TOL = 1e-9


@dataclass(frozen=True)
class ServiceCurve:
    """Two-piece linear service curve through the origin (Fig. 7).

    ``value(x) = m1 * x`` for ``0 <= x <= d`` and
    ``value(x) = m1 * d + m2 * (x - d)`` for ``x > d``.

    Slopes are in service units per time unit (the library convention is
    bytes per second), ``d`` is in time units.
    """

    m1: float
    d: float
    m2: float

    def __post_init__(self) -> None:
        if self.m1 < 0 or self.m2 < 0:
            raise ConfigurationError("service curve slopes must be non-negative")
        if self.d < 0:
            raise ConfigurationError("service curve break point must be non-negative")
        if math.isinf(self.m1) or math.isinf(self.m2) or math.isinf(self.d):
            raise ConfigurationError("service curve parameters must be finite")

    # -- constructors ------------------------------------------------------

    @classmethod
    def linear(cls, rate: float) -> "ServiceCurve":
        """A linear curve: plain bandwidth guarantee of ``rate``."""
        return cls(rate, 0.0, rate)

    @classmethod
    def from_delay(cls, umax: float, dmax: float, rate: float) -> "ServiceCurve":
        """Build the curve of Fig. 7 from the paper's session parameters.

        ``umax`` is the largest unit of work (e.g. maximum packet or frame
        size, in bytes) for which the session requires a delay guarantee,
        ``dmax`` the guaranteed delay for that unit (seconds), and ``rate``
        the session's long-term rate (bytes/second).

        If ``umax / dmax > rate`` the session wants its bursts served faster
        than its average rate: the curve is concave with first slope
        ``umax / dmax`` up to ``x = dmax`` (Fig. 7a).  Otherwise the curve
        is convex with a first segment parallel to the x-axis until
        ``x = dmax - umax / rate`` (Fig. 7b) -- the only convex shape closed
        under the deadline-curve update (Section V).
        """
        if umax <= 0 or dmax <= 0 or rate <= 0:
            raise ConfigurationError("umax, dmax and rate must be positive")
        burst_rate = umax / dmax
        if burst_rate > rate:
            return cls(burst_rate, dmax, rate)
        return cls(0.0, dmax - umax / rate, rate)

    # -- classification ----------------------------------------------------

    @property
    def is_linear(self) -> bool:
        return self.m1 == self.m2 or self.d == 0.0

    @property
    def is_concave(self) -> bool:
        """True when the slope never increases (includes linear curves)."""
        return self.is_linear or self.m1 >= self.m2

    @property
    def is_convex(self) -> bool:
        """True when the slope never decreases (includes linear curves)."""
        return self.is_linear or self.m1 <= self.m2

    @property
    def rate(self) -> float:
        """Long-term (asymptotic) rate of the curve."""
        return self.m2

    @property
    def knee_y(self) -> float:
        """Service amount at the slope change point."""
        return self.m1 * self.d

    # -- evaluation --------------------------------------------------------

    def value(self, x: float) -> float:
        """``S(x)`` for ``x >= 0`` (0 for negative x, matching eq. 1 usage)."""
        if x <= 0:
            return 0.0
        if x <= self.d:
            return self.m1 * x
        return self.m1 * self.d + self.m2 * (x - self.d)

    def inverse(self, y: float) -> float:
        """Smallest ``x`` with ``S(x) >= y`` (``inf`` if never reached)."""
        if y <= 0:
            return 0.0
        knee = self.knee_y
        if y <= knee:
            # m1 > 0 here because knee > 0.
            return y / self.m1
        if self.m2 == 0:
            return INFINITY
        return self.d + (y - knee) / self.m2

    def scaled(self, factor: float) -> "ServiceCurve":
        """Curve with both slopes multiplied by ``factor`` (same break)."""
        if factor < 0:
            raise ConfigurationError("scale factor must be non-negative")
        return ServiceCurve(self.m1 * factor, self.d, self.m2 * factor)

    def to_piecewise(self) -> "PiecewiseLinearCurve":
        """Exact piecewise-linear representation anchored at the origin."""
        if self.is_linear:
            return PiecewiseLinearCurve([(0.0, 0.0)], self.m2)
        return PiecewiseLinearCurve([(0.0, 0.0), (self.d, self.knee_y)], self.m2)

    def __add__(self, other: "ServiceCurve") -> "PiecewiseLinearCurve":
        return self.to_piecewise().sum_with(other.to_piecewise())


class PiecewiseLinearCurve:
    """A non-decreasing piecewise-linear function on ``[x0, inf)``.

    Represented by breakpoints ``[(x0, y0), (x1, y1), ...]`` (strictly
    increasing in x, non-decreasing in y, linear between consecutive points)
    plus the slope beyond the last breakpoint.  All the algebra needed by
    the paper -- pointwise ``min``, pointwise ``sum``, shifting, inverse,
    domination tests -- is implemented exactly, making this the ground truth
    for the runtime curves and the admission-control engine.
    """

    __slots__ = ("points", "final_slope")

    def __init__(self, points: Sequence[Tuple[float, float]], final_slope: float):
        if not points:
            raise ConfigurationError("curve needs at least one breakpoint")
        if final_slope < 0:
            raise ConfigurationError("final slope must be non-negative")
        cleaned: List[Tuple[float, float]] = [
            (float(points[0][0]), float(points[0][1]))
        ]
        for x, y in points[1:]:
            last_x, last_y = cleaned[-1]
            if x < last_x:
                raise ConfigurationError("breakpoints must be x-sorted")
            if x == last_x:
                if abs(y - last_y) > _tol(y, last_y):
                    raise ConfigurationError("duplicate x with different y")
                continue
            if y < last_y - _tol(y, last_y):
                raise ConfigurationError("curve must be non-decreasing")
            cleaned.append((float(x), max(float(y), last_y)))
        self.points: Tuple[Tuple[float, float], ...] = tuple(
            _drop_collinear(cleaned, final_slope)
        )
        self.final_slope = float(final_slope)

    # -- constructors ------------------------------------------------------

    @classmethod
    def constant(cls, x0: float, y0: float) -> "PiecewiseLinearCurve":
        return cls([(x0, y0)], 0.0)

    @classmethod
    def line(cls, x0: float, y0: float, slope: float) -> "PiecewiseLinearCurve":
        return cls([(x0, y0)], slope)

    @classmethod
    def from_service_curve(
        cls, curve: ServiceCurve, x0: float = 0.0, y0: float = 0.0
    ) -> "PiecewiseLinearCurve":
        """The spec shifted so that it starts at ``(x0, y0)``."""
        return curve.to_piecewise().shifted(x0, y0)

    # -- basic properties ---------------------------------------------------

    @property
    def x_start(self) -> float:
        return self.points[0][0]

    @property
    def y_start(self) -> float:
        return self.points[0][1]

    def slopes(self) -> List[float]:
        """Slope of every segment, left to right (last is final_slope)."""
        result = []
        for (x1, y1), (x2, y2) in zip(self.points, self.points[1:]):
            result.append((y2 - y1) / (x2 - x1))
        result.append(self.final_slope)
        return result

    def is_concave(self) -> bool:
        slopes = self.slopes()
        return all(a >= b - _tol(a, b) for a, b in zip(slopes, slopes[1:]))

    def is_convex(self) -> bool:
        slopes = self.slopes()
        return all(a <= b + _tol(a, b) for a, b in zip(slopes, slopes[1:]))

    # -- evaluation ---------------------------------------------------------

    def value(self, x: float) -> float:
        """Curve value at ``x`` (clamped to the start for ``x < x_start``)."""
        points = self.points
        if x <= points[0][0]:
            return points[0][1]
        last_x, last_y = points[-1]
        if x >= last_x:
            return last_y + self.final_slope * (x - last_x)
        lo, hi = 0, len(points) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if points[mid][0] <= x:
                lo = mid
            else:
                hi = mid
        x1, y1 = points[lo]
        x2, y2 = points[hi]
        return y1 + (y2 - y1) * (x - x1) / (x2 - x1)

    def inverse(self, y: float) -> float:
        """Smallest ``x >= x_start`` with ``value(x) >= y`` (inf if never)."""
        points = self.points
        if y <= points[0][1]:
            return points[0][0]
        last_x, last_y = points[-1]
        if y > last_y:
            if self.final_slope == 0:
                return INFINITY
            return last_x + (y - last_y) / self.final_slope
        lo, hi = 0, len(points) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if points[mid][1] >= y:
                hi = mid
            else:
                lo = mid
        x1, y1 = points[lo]
        x2, y2 = points[hi]
        if y2 == y1:
            return x1
        return x1 + (x2 - x1) * (y - y1) / (y2 - y1)

    # -- algebra ------------------------------------------------------------

    def shifted(self, dx: float, dy: float) -> "PiecewiseLinearCurve":
        return PiecewiseLinearCurve(
            [(x + dx, y + dy) for x, y in self.points], self.final_slope
        )

    def sum_with(self, other: "PiecewiseLinearCurve") -> "PiecewiseLinearCurve":
        """Pointwise sum on the union of the two domains.

        Outside its own domain each curve contributes its clamped start
        value, matching how per-class curves through the origin are summed
        for admission control.
        """
        xs = sorted({x for x, _ in self.points} | {x for x, _ in other.points})
        points = [(x, self.value(x) + other.value(x)) for x in xs]
        return PiecewiseLinearCurve(points, self.final_slope + other.final_slope)

    def min_with(self, other: "PiecewiseLinearCurve") -> "PiecewiseLinearCurve":
        """Exact pointwise minimum (breakpoints at crossings included)."""
        xs = sorted({x for x, _ in self.points} | {x for x, _ in other.points})
        # Insert crossing points between consecutive knots.
        enriched: List[float] = []
        for x1, x2 in zip(xs, xs[1:]):
            enriched.append(x1)
            cross = _segment_crossing(self, other, x1, x2)
            if cross is not None:
                enriched.append(cross)
        enriched.append(xs[-1])
        # A final crossing may exist beyond the last knot.
        tail_cross = _tail_crossing(self, other, xs[-1])
        if tail_cross is not None:
            enriched.append(tail_cross)
        points = [(x, min(self.value(x), other.value(x))) for x in enriched]
        final = min(self.final_slope, other.final_slope)
        # Whoever is lower at (and beyond) the last knot dictates the final
        # slope; with a crossing appended, both agree there.
        x_last = enriched[-1]
        probe = x_last + 1.0
        if self.value(probe) < other.value(probe):
            final = self.final_slope
        elif other.value(probe) < self.value(probe):
            final = other.final_slope
        return PiecewiseLinearCurve(points, final)

    def dominates(self, other: "PiecewiseLinearCurve", rel_tol: float = REL_TOL) -> bool:
        """True when ``self(x) >= other(x)`` for every x in both domains."""
        xs = sorted({x for x, _ in self.points} | {x for x, _ in other.points})
        for x in xs:
            a, b = self.value(x), other.value(x)
            if a < b - _tol(a, b, rel_tol):
                return False
        if self.final_slope < other.final_slope - _tol(
            self.final_slope, other.final_slope, rel_tol
        ):
            return False
        # Beyond the last knot the comparison is between two lines; check a
        # far probe point to catch a late crossing.
        probe = xs[-1] + 1e6
        a, b = self.value(probe), other.value(probe)
        return a >= b - _tol(a, b, max(rel_tol, 1e-7))

    def equals(self, other: "PiecewiseLinearCurve", rel_tol: float = REL_TOL) -> bool:
        return self.dominates(other, rel_tol) and other.dominates(self, rel_tol)

    def __repr__(self) -> str:
        pts = ", ".join(f"({x:g}, {y:g})" for x, y in self.points)
        return f"PiecewiseLinearCurve([{pts}], final_slope={self.final_slope:g})"


def sum_curves(curves: Iterable[PiecewiseLinearCurve]) -> PiecewiseLinearCurve:
    """Pointwise sum of an iterable of curves (at least one required)."""
    iterator = iter(curves)
    try:
        total = next(iterator)
    except StopIteration:
        raise ConfigurationError("sum_curves requires at least one curve") from None
    for curve in iterator:
        total = total.sum_with(curve)
    return total


def is_admissible(
    leaf_curves: Sequence[ServiceCurve], server_rate: float, rel_tol: float = 1e-9
) -> bool:
    """Admissibility condition of Section II.

    SCED (and therefore H-FSC's real-time criterion) can guarantee all
    service curves iff ``sum_i S_i(t) <= R * t`` for all ``t``, where ``R``
    is the (linear) server rate.
    """
    if not leaf_curves:
        return True
    total = sum_curves([c.to_piecewise() for c in leaf_curves])
    server = PiecewiseLinearCurve.line(0.0, 0.0, server_rate)
    return server.dominates(total, rel_tol)


# -- helpers ---------------------------------------------------------------


def _tol(a: float, b: float, rel_tol: float = REL_TOL) -> float:
    return rel_tol * max(1.0, abs(a), abs(b))


def _drop_collinear(
    points: List[Tuple[float, float]], final_slope: float
) -> List[Tuple[float, float]]:
    """Remove interior breakpoints that do not change the slope."""
    if len(points) <= 1:
        return points
    result = [points[0]]
    for i in range(1, len(points)):
        x, y = points[i]
        if i < len(points) - 1:
            nx, ny = points[i + 1]
            slope_out = (ny - y) / (nx - x)
        else:
            slope_out = final_slope
        px, py = result[-1]
        slope_in = (y - py) / (x - px)
        if abs(slope_in - slope_out) <= _tol(slope_in, slope_out):
            continue
        result.append((x, y))
    return result


def _segment_crossing(
    a: PiecewiseLinearCurve, b: PiecewiseLinearCurve, x1: float, x2: float
) -> Optional[float]:
    """Interior x in (x1, x2) where the two (locally linear) curves cross."""
    d1 = a.value(x1) - b.value(x1)
    d2 = a.value(x2) - b.value(x2)
    if d1 == 0.0 or d2 == 0.0 or (d1 > 0) == (d2 > 0):
        return None
    # Linear interpolation of the difference is exact between shared knots.
    return x1 + (x2 - x1) * (-d1) / (d2 - d1)


def _tail_crossing(
    a: PiecewiseLinearCurve, b: PiecewiseLinearCurve, x_last: float
) -> Optional[float]:
    """Crossing beyond the final knot, where both curves are single lines."""
    d0 = a.value(x_last) - b.value(x_last)
    dslope = a.final_slope - b.final_slope
    if d0 == 0.0 or dslope == 0.0 or (d0 > 0) == (dslope > 0):
        return None
    return x_last + (-d0) / dslope
