"""Calendar queue (R. Brown, 1988) -- reference [4] of the paper.

A calendar queue spreads timestamped entries over an array of buckets
("days"), each covering a fixed time width; extracting in time order walks
the calendar the way one walks a desk diary.  With a well-chosen bucket
count and width, enqueue and dequeue are O(1) amortized, which is why
Section V of the paper suggests it for tracking eligible times.

This implementation supports:

* ``insert(time, item)`` / ``remove(item)`` / ``pop_min()`` / ``peek_min()``
* ``pop_due(now)`` -- remove and return all items with time <= now, in time
  order (how the H-FSC eligible set drains matured requests).
* automatic resizing (doubling/halving the bucket count) driven by load,
  with the bucket width re-estimated from a sample of the queue, following
  Brown's original recipe.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

ItemT = TypeVar("ItemT", bound=Hashable)


class CalendarQueue(Generic[ItemT]):
    """Priority queue over (time, item) pairs, optimized for clock-like use."""

    _MIN_BUCKETS = 4

    def __init__(self, bucket_width: float = 1.0, buckets: int = 8) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        if buckets < 1:
            raise ValueError("buckets must be >= 1")
        self._width = float(bucket_width)
        self._nbuckets = max(self._MIN_BUCKETS, buckets)
        self._buckets: List[List[Tuple[float, int, ItemT]]] = [
            [] for _ in range(self._nbuckets)
        ]
        self._index: Dict[ItemT, Tuple[float, int]] = {}
        self._seq = 0
        self._size = 0
        # Cursor state: the current "day" and the time at which it ends.
        self._last_time = 0.0
        self._resize_enabled = True

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, item: ItemT) -> bool:
        return item in self._index

    def time_of(self, item: ItemT) -> float:
        return self._index[item][0]

    def insert(self, item: ItemT, time: float) -> None:
        if item in self._index:
            raise ValueError(f"item already present: {item!r}")
        seq = self._seq
        self._seq += 1
        self._index[item] = (time, seq)
        bucket = self._bucket_for(time)
        self._buckets[bucket].append((time, seq, item))
        self._size += 1
        if time < self._last_time:
            # The cursor tracks the current minimum; an insertion behind it
            # (legal for eligible times, unlike pure event queues) must pull
            # it back or the year-scan can surface a later entry first.
            self._last_time = time
        if self._resize_enabled and self._size > 2 * self._nbuckets:
            self._resize(2 * self._nbuckets)

    def remove(self, item: ItemT) -> float:
        time, seq = self._index.pop(item)
        bucket = self._buckets[self._bucket_for(time)]
        bucket.remove((time, seq, item))
        self._size -= 1
        if (
            self._resize_enabled
            and self._nbuckets > self._MIN_BUCKETS
            and self._size < self._nbuckets // 2
        ):
            self._resize(max(self._MIN_BUCKETS, self._nbuckets // 2))
        return time

    def update(self, item: ItemT, time: float) -> None:
        if item in self._index:
            self.remove(item)
        self.insert(item, time)

    def peek_min(self) -> Tuple[ItemT, float]:
        """Return ``(item, time)`` with the smallest time (IndexError if empty)."""
        entry = self._find_min()
        if entry is None:
            raise IndexError("peek from empty calendar queue")
        time, _seq, item = entry
        return item, time

    def pop_min(self) -> Tuple[ItemT, float]:
        item, time = self.peek_min()
        self.remove(item)
        return item, time

    def pop_due(self, now: float) -> Iterator[Tuple[ItemT, float]]:
        """Yield and remove every entry with time <= now, in time order."""
        while self._size:
            entry = self._find_min()
            assert entry is not None
            time, _seq, item = entry
            if time > now:
                return
            self.remove(item)
            yield item, time

    def min_time(self) -> Optional[float]:
        entry = self._find_min()
        return None if entry is None else entry[0]

    # -- internals --------------------------------------------------------

    def _bucket_for(self, time: float) -> int:
        return int(time / self._width) % self._nbuckets

    def _find_min(self) -> Optional[Tuple[float, int, ItemT]]:
        """Locate the globally smallest entry.

        Scans at most one full "year" of buckets starting from the bucket of
        the smallest previously seen time; falls back to a direct scan of
        non-empty buckets if the year-scan finds only entries far in the
        future (Brown's "direct search" case).
        """
        if self._size == 0:
            return None
        start_day = int(self._last_time / self._width)
        best: Optional[Tuple[float, int, ItemT]] = None
        for offset in range(self._nbuckets):
            day = start_day + offset
            bucket = self._buckets[day % self._nbuckets]
            year_end = (day + 1) * self._width
            candidate: Optional[Tuple[float, int, ItemT]] = None
            for entry in bucket:
                if entry[0] <= year_end and (candidate is None or entry < candidate):
                    candidate = entry
            if candidate is not None:
                best = candidate
                break
        if best is None:
            # All entries lie beyond the scanned year: direct search.
            for bucket in self._buckets:
                for entry in bucket:
                    if best is None or entry < best:
                        best = entry
        assert best is not None
        self._last_time = best[0]
        return best

    def _resize(self, nbuckets: int) -> None:
        entries = [entry for bucket in self._buckets for entry in bucket]
        # Re-estimate the bucket width from the average gap between the
        # timestamps of a sample of entries (Brown's heuristic).
        sample = sorted(entry[0] for entry in entries[: max(8, len(entries) // 4)])
        gaps = [b - a for a, b in zip(sample, sample[1:]) if b > a]
        if gaps:
            avg_gap = sum(gaps) / len(gaps)
            if avg_gap > 0:
                self._width = 2.0 * avg_gap
        self._nbuckets = nbuckets
        self._buckets = [[] for _ in range(nbuckets)]
        for time, seq, item in entries:
            self._buckets[self._bucket_for(time)].append((time, seq, item))

    def check_invariants(self) -> None:
        seen = 0
        for bucket_id, bucket in enumerate(self._buckets):
            for time, seq, item in bucket:
                assert self._bucket_for(time) == bucket_id, "entry in wrong bucket"
                assert self._index[item] == (time, seq), "index mismatch"
                seen += 1
        assert seen == self._size == len(self._index), "size mismatch"
