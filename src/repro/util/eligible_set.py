"""Pluggable backends for the H-FSC real-time request set.

Section V offers two implementations for tracking (eligible, deadline)
requests: the augmented binary tree of [16]
(:class:`repro.util.eligible_tree.EligibleTree`) and "a calendar queue
[4] for keeping track of the eligible times in conjunction with a heap
for maintaining the requests' deadlines", noting the latter is "slightly
faster on average".  This module defines the small protocol both satisfy
and implements the calendar+heap variant; ``HFSC(eligible_backend=...)``
selects between them, and ``benchmarks/bench_ablation.py`` compares them.
"""

from __future__ import annotations

from typing import Generic, Hashable, Optional, Tuple, TypeVar

from repro.util.calendar_queue import CalendarQueue
from repro.util.eligible_tree import EligibleTree
from repro.util.heap import IndexedHeap

ItemT = TypeVar("ItemT", bound=Hashable)


class CalendarEligibleSet(Generic[ItemT]):
    """Calendar queue of future eligible times + deadline heap of matured.

    Requests whose eligible time has not yet arrived sit in the calendar;
    a query at time ``now`` first matures everything due, then answers
    from the deadline heap.  Since simulation time only advances, matured
    requests never need to move back.
    """

    def __init__(self, bucket_width: float = 0.001) -> None:
        self._future: CalendarQueue[ItemT] = CalendarQueue(bucket_width)
        self._ready: IndexedHeap[ItemT] = IndexedHeap()
        # item -> (eligible, deadline); single source of truth for update.
        self._requests: dict = {}

    def __len__(self) -> int:
        return len(self._requests)

    def __bool__(self) -> bool:
        return bool(self._requests)

    def __contains__(self, item: ItemT) -> bool:
        return item in self._requests

    def insert(self, item: ItemT, eligible: float, deadline: float) -> None:
        if item in self._requests:
            raise ValueError(f"item already present: {item!r}")
        self._requests[item] = (eligible, deadline)
        self._future.insert(item, eligible)

    def remove(self, item: ItemT) -> None:
        del self._requests[item]
        if item in self._future:
            self._future.remove(item)
        else:
            self._ready.remove(item)

    def update(self, item: ItemT, eligible: float, deadline: float) -> None:
        self.remove(item)
        self.insert(item, eligible, deadline)

    def min_eligible(self) -> Optional[float]:
        if self._ready:
            # Matured requests are eligible "now"; report the smallest
            # recorded eligible time for parity with the tree backend.
            return min(self._requests[item][0] for item in self._ready)
        return self._future.min_time()

    def min_deadline_eligible(
        self, now: float
    ) -> Optional[Tuple[ItemT, float, float]]:
        for item, _time in self._future.pop_due(now):
            self._ready.push(item, self._requests[item][1])
        if not self._ready:
            return None
        item, deadline = self._ready.peek()
        eligible = self._requests[item][0]
        return item, eligible, deadline


def make_eligible_set(backend: str):
    """Factory used by :class:`repro.core.hfsc.HFSC`.

    The third backend, ``"heap"`` (the default), stores its requests in
    the scheduler's shared flat arrays and is therefore constructed by
    the scheduler itself (:class:`repro.core.flatstate.FlatEligibleSet`)
    rather than here.
    """
    if backend == "tree":
        return EligibleTree()
    if backend == "calendar":
        return CalendarEligibleSet()
    raise ValueError(
        f"unknown eligible-set backend: {backend!r} "
        "(expected 'heap', 'tree' or 'calendar')"
    )
