"""Indexed binary min-heap with arbitrary update and removal.

The schedulers need priority queues whose entries move: a class's virtual
time advances every time it is served, and its deadline changes whenever the
packet at the head of its queue changes.  A plain ``heapq`` cannot update an
entry in place, so this module provides a binary heap that keeps a position
map from item to heap slot, giving O(log n) ``push``, ``pop``, ``update``
and ``remove``.

Ties are broken by insertion sequence number so that iteration order is
deterministic, which both the schedulers (FIFO order within a class) and the
tests rely on.

This sits on the per-packet hot path (two heaps per interior class, several
operations per serve), so the sift loops are written hole-style with the
comparisons inlined: the moving entry is held out, parents/children shift
into the hole, and keys are compared directly (key first, sequence only on
ties) instead of building tuples or calling helpers.  The resulting heap
layout is identical to the classic swap formulation.
"""

from __future__ import annotations

import heapq as _heapq
from typing import Any, Dict, Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

ItemT = TypeVar("ItemT", bound=Hashable)


class IndexedHeap(Generic[ItemT]):
    """A binary min-heap over hashable items with updatable keys.

    Keys may be any totally ordered value (floats, tuples, ...).  Each item
    may appear at most once; pushing an item already present raises
    ``ValueError`` (use :meth:`update` instead, or :meth:`push_or_update`).
    """

    __slots__ = ("_entries", "_pos", "_seq")

    def __init__(self) -> None:
        # Each entry is [key, seq, item]; ``seq`` breaks key ties FIFO.
        self._entries: List[List[Any]] = []
        self._pos: Dict[ItemT, int] = {}
        self._seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, item: ItemT) -> bool:
        return item in self._pos

    def __iter__(self) -> Iterator[ItemT]:
        """Iterate over items in arbitrary (heap) order."""
        return (entry[2] for entry in self._entries)

    def key_of(self, item: ItemT) -> Any:
        """Return the current key of ``item`` (KeyError if absent)."""
        return self._entries[self._pos[item]][0]

    def push(self, item: ItemT, key: Any) -> None:
        """Insert ``item`` with ``key``; the item must not be present."""
        if item in self._pos:
            raise ValueError(f"item already in heap: {item!r}")
        entry = [key, self._seq, item]
        self._seq += 1
        entries = self._entries
        entries.append(entry)
        self._pos[item] = len(entries) - 1
        self._sift_up(len(entries) - 1)

    def push_or_update(self, item: ItemT, key: Any) -> None:
        """Insert ``item`` or, if already present, change its key."""
        if item in self._pos:
            self.update(item, key)
        else:
            self.push(item, key)

    def update(self, item: ItemT, key: Any) -> None:
        """Change the key of ``item`` (KeyError if absent)."""
        index = self._pos[item]
        entry = self._entries[index]
        old_key = entry[0]
        entry[0] = key
        if key < old_key:
            self._sift_up(index)
        else:
            self._sift_down(index)

    def remove(self, item: ItemT) -> Any:
        """Remove ``item`` and return its key (KeyError if absent)."""
        pos = self._pos
        entries = self._entries
        index = pos.pop(item)
        entry = entries[index]
        last = entries.pop()
        if index < len(entries):
            entries[index] = last
            pos[last[2]] = index
            # The moved entry may need to travel either direction.
            self._sift_up(index)
            self._sift_down(pos[last[2]])
        return entry[0]

    def peek(self) -> Tuple[ItemT, Any]:
        """Return ``(item, key)`` with the smallest key without removing it."""
        if not self._entries:
            raise IndexError("peek from empty heap")
        entry = self._entries[0]
        return entry[2], entry[0]

    def peek_item(self) -> ItemT:
        if not self._entries:
            raise IndexError("peek from empty heap")
        return self._entries[0][2]

    def peek_key(self) -> Any:
        if not self._entries:
            raise IndexError("peek from empty heap")
        return self._entries[0][0]

    def pop(self) -> Tuple[ItemT, Any]:
        """Remove and return ``(item, key)`` with the smallest key."""
        item, key = self.peek()
        self.remove(item)
        return item, key

    def clear(self) -> None:
        self._entries.clear()
        self._pos.clear()

    def min_key(self) -> Optional[Any]:
        """Smallest key, or ``None`` when empty (convenience for schedulers)."""
        if not self._entries:
            return None
        return self._entries[0][0]

    def min_is_tied(self) -> bool:
        """True when more than one entry holds the minimal key.

        O(1): by the heap property any entry with the root's key has
        root-keyed ancestors all the way up, so a duplicate of the minimum
        must sit at index 1 or 2.
        """
        entries = self._entries
        key = entries[0][0]
        if len(entries) > 1 and entries[1][0] == key:
            return True
        return len(entries) > 2 and entries[2][0] == key

    def iter_sorted(self) -> Iterator[Tuple[Any, ItemT]]:
        """Yield ``(key, item)`` in ascending (key, seq) order, lazily.

        Reads the heap without mutating it by exploring entries through
        their heap-children, so taking the first few items of an n-entry
        heap costs O(s log s) for s items consumed -- this is what makes
        the H-FSC link-sharing descent's fit-time skip-scan sub-linear.
        The order is independent of the internal array layout (ties are
        broken by insertion sequence, which is a total order).
        """
        entries = self._entries
        if not entries:
            return
        heappush = _heapq.heappush
        heappop = _heapq.heappop
        first = entries[0]
        frontier: List[Tuple[Any, int, int]] = [(first[0], first[1], 0)]
        size = len(entries)
        while frontier:
            key, _seq, index = heappop(frontier)
            yield key, entries[index][2]
            child = 2 * index + 1
            if child < size:
                e = entries[child]
                heappush(frontier, (e[0], e[1], child))
                child += 1
                if child < size:
                    e = entries[child]
                    heappush(frontier, (e[0], e[1], child))

    def iter_insertion(self) -> Iterator[ItemT]:
        """Yield items in ascending insertion-sequence order.

        :meth:`update` keeps an entry's original sequence number, so two
        members whose keys later converge to an exact tie break that tie
        by *push* order, not by their current key order.  Snapshot/restore
        relies on this iterator: re-pushing members in insertion order
        onto a fresh heap assigns the same relative sequence numbers, so
        future exact-key ties resolve identically to the original run.
        """
        return (entry[2] for entry in sorted(self._entries, key=lambda e: e[1]))

    # -- internals --------------------------------------------------------

    def _sift_up(self, index: int) -> None:
        entries = self._entries
        pos = self._pos
        entry = entries[index]
        key = entry[0]
        seq = entry[1]
        while index > 0:
            parent_index = (index - 1) >> 1
            parent = entries[parent_index]
            parent_key = parent[0]
            if key < parent_key or (key == parent_key and seq < parent[1]):
                entries[index] = parent
                pos[parent[2]] = index
                index = parent_index
            else:
                break
        entries[index] = entry
        pos[entry[2]] = index

    def _sift_down(self, index: int) -> None:
        entries = self._entries
        pos = self._pos
        size = len(entries)
        entry = entries[index]
        key = entry[0]
        seq = entry[1]
        child = 2 * index + 1
        while child < size:
            candidate = entries[child]
            right = child + 1
            if right < size:
                other = entries[right]
                other_key = other[0]
                candidate_key = candidate[0]
                if other_key < candidate_key or (
                    other_key == candidate_key and other[1] < candidate[1]
                ):
                    child = right
                    candidate = other
            candidate_key = candidate[0]
            if candidate_key < key or (
                candidate_key == key and candidate[1] < seq
            ):
                entries[index] = candidate
                pos[candidate[2]] = index
                index = child
                child = 2 * index + 1
            else:
                break
        entries[index] = entry
        pos[entry[2]] = index

    def check_invariants(self) -> None:
        """Verify heap order and the position map (used by tests)."""
        entries = self._entries
        for index in range(1, len(entries)):
            parent = (index - 1) >> 1
            ek, es = entries[index][0], entries[index][1]
            pk, ps = entries[parent][0], entries[parent][1]
            if ek < pk or (ek == pk and es < ps):
                raise AssertionError(f"heap order violated at {index}")
        for item, index in self._pos.items():
            if entries[index][2] is not item and entries[index][2] != item:
                raise AssertionError(f"position map stale for {item!r}")
        if len(self._pos) != len(entries):
            raise AssertionError("position map size mismatch")
