"""Indexed binary min-heap with arbitrary update and removal.

The schedulers need priority queues whose entries move: a class's virtual
time advances every time it is served, and its deadline changes whenever the
packet at the head of its queue changes.  A plain ``heapq`` cannot update an
entry in place, so this module provides a binary heap that keeps a position
map from item to heap slot, giving O(log n) ``push``, ``pop``, ``update``
and ``remove``.

Ties are broken by insertion sequence number so that iteration order is
deterministic, which both the schedulers (FIFO order within a class) and the
tests rely on.
"""

from __future__ import annotations

from typing import Any, Dict, Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

ItemT = TypeVar("ItemT", bound=Hashable)


class IndexedHeap(Generic[ItemT]):
    """A binary min-heap over hashable items with updatable keys.

    Keys may be any totally ordered value (floats, tuples, ...).  Each item
    may appear at most once; pushing an item already present raises
    ``ValueError`` (use :meth:`update` instead, or :meth:`push_or_update`).
    """

    __slots__ = ("_entries", "_pos", "_seq")

    def __init__(self) -> None:
        # Each entry is [key, seq, item]; ``seq`` breaks key ties FIFO.
        self._entries: List[List[Any]] = []
        self._pos: Dict[ItemT, int] = {}
        self._seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, item: ItemT) -> bool:
        return item in self._pos

    def __iter__(self) -> Iterator[ItemT]:
        """Iterate over items in arbitrary (heap) order."""
        return (entry[2] for entry in self._entries)

    def key_of(self, item: ItemT) -> Any:
        """Return the current key of ``item`` (KeyError if absent)."""
        return self._entries[self._pos[item]][0]

    def push(self, item: ItemT, key: Any) -> None:
        """Insert ``item`` with ``key``; the item must not be present."""
        if item in self._pos:
            raise ValueError(f"item already in heap: {item!r}")
        entry = [key, self._seq, item]
        self._seq += 1
        self._entries.append(entry)
        self._pos[item] = len(self._entries) - 1
        self._sift_up(len(self._entries) - 1)

    def push_or_update(self, item: ItemT, key: Any) -> None:
        """Insert ``item`` or, if already present, change its key."""
        if item in self._pos:
            self.update(item, key)
        else:
            self.push(item, key)

    def update(self, item: ItemT, key: Any) -> None:
        """Change the key of ``item`` (KeyError if absent)."""
        index = self._pos[item]
        old_key = self._entries[index][0]
        self._entries[index][0] = key
        if key < old_key:
            self._sift_up(index)
        else:
            self._sift_down(index)

    def remove(self, item: ItemT) -> Any:
        """Remove ``item`` and return its key (KeyError if absent)."""
        index = self._pos.pop(item)
        entry = self._entries[index]
        last = self._entries.pop()
        if index < len(self._entries):
            self._entries[index] = last
            self._pos[last[2]] = index
            # The moved entry may need to travel either direction.
            self._sift_up(index)
            self._sift_down(self._pos[last[2]])
        return entry[0]

    def peek(self) -> Tuple[ItemT, Any]:
        """Return ``(item, key)`` with the smallest key without removing it."""
        if not self._entries:
            raise IndexError("peek from empty heap")
        entry = self._entries[0]
        return entry[2], entry[0]

    def peek_item(self) -> ItemT:
        return self.peek()[0]

    def peek_key(self) -> Any:
        return self.peek()[1]

    def pop(self) -> Tuple[ItemT, Any]:
        """Remove and return ``(item, key)`` with the smallest key."""
        item, key = self.peek()
        self.remove(item)
        return item, key

    def clear(self) -> None:
        self._entries.clear()
        self._pos.clear()

    def min_key(self) -> Optional[Any]:
        """Smallest key, or ``None`` when empty (convenience for schedulers)."""
        if not self._entries:
            return None
        return self._entries[0][0]

    # -- internals --------------------------------------------------------

    def _less(self, a: int, b: int) -> bool:
        ea, eb = self._entries[a], self._entries[b]
        return (ea[0], ea[1]) < (eb[0], eb[1])

    def _swap(self, a: int, b: int) -> None:
        entries = self._entries
        entries[a], entries[b] = entries[b], entries[a]
        self._pos[entries[a][2]] = a
        self._pos[entries[b][2]] = b

    def _sift_up(self, index: int) -> None:
        while index > 0:
            parent = (index - 1) >> 1
            if self._less(index, parent):
                self._swap(index, parent)
                index = parent
            else:
                break

    def _sift_down(self, index: int) -> None:
        size = len(self._entries)
        while True:
            left = 2 * index + 1
            right = left + 1
            smallest = index
            if left < size and self._less(left, smallest):
                smallest = left
            if right < size and self._less(right, smallest):
                smallest = right
            if smallest == index:
                return
            self._swap(index, smallest)
            index = smallest

    def check_invariants(self) -> None:
        """Verify heap order and the position map (used by tests)."""
        for index in range(1, len(self._entries)):
            parent = (index - 1) >> 1
            if self._less(index, parent):
                raise AssertionError(f"heap order violated at {index}")
        for item, index in self._pos.items():
            if self._entries[index][2] is not item and self._entries[index][2] != item:
                raise AssertionError(f"position map stale for {item!r}")
        if len(self._pos) != len(self._entries):
            raise AssertionError("position map size mismatch")
