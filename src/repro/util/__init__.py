"""Supporting data structures for the schedulers and the simulator.

The paper (Section V) maintains two request sets per link: the *real-time*
requests, ordered by eligible time and deadline, and the *link-sharing*
requests, ordered by virtual time.  This package provides the containers
those sets are built from:

* :class:`~repro.util.heap.IndexedHeap` -- a binary heap with an item
  position index, supporting O(log n) arbitrary update and removal.
* :class:`~repro.util.eligible_tree.EligibleTree` -- the augmented balanced
  tree of [16]: given the current time, returns the request with the
  smallest deadline among those whose eligible time has passed.
* :class:`~repro.util.calendar_queue.CalendarQueue` -- the calendar queue
  of [4], the alternative backend the paper notes is "slightly faster on
  average".
"""

from repro.util.calendar_queue import CalendarQueue
from repro.util.eligible_tree import EligibleTree
from repro.util.heap import IndexedHeap
from repro.util.rng import make_rng

__all__ = ["IndexedHeap", "EligibleTree", "CalendarQueue", "make_rng"]
