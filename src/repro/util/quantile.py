"""Streaming quantile estimation: the P-squared (P²) algorithm.

Jain & Chlamtac's P² algorithm (CACM 1985) estimates a single quantile of
a stream in O(1) space: five markers track the minimum, the maximum, the
target quantile and two intermediate quantiles, and each observation
nudges the middle markers toward their desired positions with a
piecewise-parabolic interpolation.

Long soak runs cannot afford to retain every delay sample, yet the
evaluation reports tail percentiles (p99/p999); :class:`P2Quantile` is
what :class:`repro.sim.stats.ClassStats` and the telemetry subsystem use
when sample retention is off.  Typical relative error is well under 1%
once a few hundred observations have been absorbed.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List


class P2Quantile:
    """O(1)-space estimator for one quantile ``p`` in (0, 1)."""

    __slots__ = ("p", "_q", "_n", "_np", "_dn", "count")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError("quantile p must be in (0, 1)")
        self.p = p
        self._q: List[float] = []  # marker heights (first 5: raw samples)
        self._n = [1.0, 2.0, 3.0, 4.0, 5.0]  # marker positions
        self._np = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self.count = 0

    def observe(self, x: float) -> None:
        self.count += 1
        q = self._q
        if self.count <= 5:
            q.append(x)
            if self.count == 5:
                q.sort()
            return
        n = self._n
        np_ = self._np
        # Locate the cell, updating the extreme markers.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        elif x < q[1]:
            k = 0
        elif x < q[2]:
            k = 1
        elif x < q[3]:
            k = 2
        else:
            k = 3
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            np_[i] += self._dn[i]
        # Adjust the three middle markers if they drifted off position.
        for i in (1, 2, 3):
            d = np_[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                d = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, d)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, d)
                q[i] = candidate
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def state_doc(self) -> Dict[str, Any]:
        """Full estimator state as a JSON-able document.

        The five marker heights/positions plus the observation count are
        the estimator's entire state, so ``from_state(state_doc())``
        continues the stream bit-exactly.
        """
        return {
            "p": self.p,
            "q": list(self._q),
            "n": list(self._n),
            "np": list(self._np),
            "dn": list(self._dn),
            "count": self.count,
        }

    @classmethod
    def from_state(cls, doc: Dict[str, Any]) -> "P2Quantile":
        est = cls(doc["p"])
        est._q = [float(v) for v in doc["q"]]
        est._n = [float(v) for v in doc["n"]]
        est._np = [float(v) for v in doc["np"]]
        est._dn = [float(v) for v in doc["dn"]]
        est.count = int(doc["count"])
        return est

    def value(self) -> float:
        """Current estimate (0.0 before any observation).

        With fewer than five observations the estimate is the exact
        sample quantile of what has been seen so far.
        """
        if self.count == 0:
            return 0.0
        if self.count < 5:
            ordered = sorted(self._q)
            index = max(0, min(len(ordered) - 1,
                               int(math.ceil(self.p * len(ordered))) - 1))
            return ordered[index]
        return self._q[2]
