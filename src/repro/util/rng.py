"""Deterministic random number generation for simulations.

Every stochastic component (traffic sources, treap priorities, workload
generators) draws from a ``random.Random`` created here so that experiments
are exactly reproducible from a run seed.  Sub-streams are derived by
hashing the parent seed with a label, which keeps sources statistically
independent without coordinating state.
"""

from __future__ import annotations

import hashlib
import random


def make_rng(seed: int, *labels: object) -> random.Random:
    """Return a ``random.Random`` derived from ``seed`` and a label path.

    ``make_rng(7, "source", 3)`` always yields the same stream, and streams
    with different labels are independent for practical purposes.
    """
    digest = hashlib.sha256(repr((seed,) + labels).encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))
