"""Deterministic random number generation for simulations.

Every stochastic component (traffic sources, treap priorities, workload
generators) draws from a ``random.Random`` created here so that experiments
are exactly reproducible from a run seed.  Sub-streams are derived by
hashing the parent seed with a label, which keeps sources statistically
independent without coordinating state.

For crash-safe checkpointing (:mod:`repro.persist`), :func:`make_rng`
returns a :class:`SeededStream` -- a ``random.Random`` that remembers its
``(seed, labels)`` derivation so a snapshot can record *which* sub-stream
a saved generator state belongs to, and a restore can refuse to load a
state into the wrong stream.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, Optional, Tuple


def _derive(seed: int, labels: Tuple[object, ...]) -> int:
    digest = hashlib.sha256(repr((seed,) + labels).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SeededStream(random.Random):
    """A ``random.Random`` carrying its ``(seed, labels)`` identity.

    Behaves exactly like the generator :func:`make_rng` has always
    returned (same derived seed, same draw sequence); the extra
    attributes exist only so snapshots can validate stream identity.
    """

    def __init__(self, seed: int, labels: Tuple[object, ...] = ()):
        self.stream_seed = seed
        self.stream_labels = tuple(labels)
        super().__init__(_derive(seed, self.stream_labels))

    def identity_doc(self) -> Dict[str, Any]:
        """JSON-able identity: the derivation path of this sub-stream."""
        return {
            "seed": self.stream_seed,
            "labels": [repr(label) for label in self.stream_labels],
        }


def make_rng(seed: int, *labels: object) -> SeededStream:
    """Return a ``random.Random`` derived from ``seed`` and a label path.

    ``make_rng(7, "source", 3)`` always yields the same stream, and streams
    with different labels are independent for practical purposes.
    """
    return SeededStream(seed, labels)


def rng_state_doc(rng: random.Random) -> Dict[str, Any]:
    """Serialize a generator's position (and identity, if it has one).

    ``random.Random.getstate()`` is ``(version, tuple_of_ints, gauss_next)``
    -- all JSON-representable.  The document restores bit-exactly via
    :func:`restore_rng_state`.
    """
    version, internal, gauss_next = rng.getstate()
    doc: Dict[str, Any] = {
        "version": version,
        "internal": list(internal),
        "gauss_next": gauss_next,
    }
    if isinstance(rng, SeededStream):
        doc["stream"] = rng.identity_doc()
    else:
        doc["stream"] = None
    return doc


def restore_rng_state(rng: random.Random, doc: Dict[str, Any]) -> None:
    """Load a :func:`rng_state_doc` into ``rng``.

    Raises ``ValueError`` when the document's stream identity does not
    match ``rng``'s (restoring a state into the wrong sub-stream would
    silently desynchronize every later draw); callers in
    :mod:`repro.persist` convert that into a structured ``SnapshotError``.
    """
    stream = doc.get("stream")
    if stream is not None and isinstance(rng, SeededStream):
        if stream != rng.identity_doc():
            raise ValueError(
                f"rng stream identity mismatch: snapshot {stream!r} "
                f"vs live {rng.identity_doc()!r}"
            )
    rng.setstate((doc["version"], tuple(doc["internal"]), doc["gauss_next"]))
