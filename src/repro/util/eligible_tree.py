"""Augmented balanced tree for the real-time request set.

Section V of the paper: *"For maintaining the real-time requests we can use
either an augmented binary tree data structure as the one described in [16],
or a calendar queue [4] for keeping track of the eligible times in
conjunction with a heap for maintaining the requests' deadlines."*

This module implements the first option.  Each request is a pair
``(eligible_time, deadline)`` attached to an item (a leaf class).  The tree
is a treap keyed by ``(eligible_time, seq)`` where every node is augmented
with the minimum deadline in its subtree.  The scheduler's query --
*"among requests with eligible time <= now, which has the smallest
deadline?"* -- runs in O(log n), as do insertion, removal and deadline
update.
"""

from __future__ import annotations

import random
from typing import Dict, Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

ItemT = TypeVar("ItemT", bound=Hashable)

_INF = float("inf")


class _Node(Generic[ItemT]):
    __slots__ = (
        "eligible",
        "seq",
        "deadline",
        "item",
        "priority",
        "left",
        "right",
        "min_deadline",
    )

    def __init__(self, eligible: float, seq: int, deadline: float, item: ItemT, priority: float):
        self.eligible = eligible
        self.seq = seq
        self.deadline = deadline
        self.item = item
        self.priority = priority
        self.left: Optional["_Node[ItemT]"] = None
        self.right: Optional["_Node[ItemT]"] = None
        self.min_deadline = deadline

    def key(self) -> Tuple[float, int]:
        return (self.eligible, self.seq)

    def refresh(self) -> None:
        best = self.deadline
        if self.left is not None and self.left.min_deadline < best:
            best = self.left.min_deadline
        if self.right is not None and self.right.min_deadline < best:
            best = self.right.min_deadline
        self.min_deadline = best


class EligibleTree(Generic[ItemT]):
    """Set of (eligible, deadline) requests with an eligible-prefix min query.

    Items are hashable and unique.  The main query is
    :meth:`min_deadline_eligible`, which returns the item with the smallest
    deadline among requests whose eligible time is <= ``now`` (the paper's
    real-time criterion).  ``min_eligible`` exposes the earliest eligible
    time, which the simulator can use to know when the next request matures.
    """

    def __init__(self, seed: int = 0x5EED) -> None:
        self._root: Optional[_Node[ItemT]] = None
        self._index: Dict[ItemT, _Node[ItemT]] = {}
        self._seq = 0
        self._rng = random.Random(seed)

    def __len__(self) -> int:
        return len(self._index)

    def __bool__(self) -> bool:
        return bool(self._index)

    def __contains__(self, item: ItemT) -> bool:
        return item in self._index

    def eligible_of(self, item: ItemT) -> float:
        return self._index[item].eligible

    def deadline_of(self, item: ItemT) -> float:
        return self._index[item].deadline

    def insert(self, item: ItemT, eligible: float, deadline: float) -> None:
        """Add a request (item must not already be present)."""
        if item in self._index:
            raise ValueError(f"item already present: {item!r}")
        node = _Node(eligible, self._seq, deadline, item, self._rng.random())
        self._seq += 1
        self._index[item] = node
        self._insert(node)

    def remove(self, item: ItemT) -> None:
        """Remove the request for ``item`` (KeyError if absent)."""
        node = self._index.pop(item)
        self._remove(node)

    def update(self, item: ItemT, eligible: float, deadline: float) -> None:
        """Change the request for ``item`` (re-keys the tree if needed)."""
        node = self._index[item]
        if node.eligible == eligible:
            # Deadline-only change: fix augmented values along the path.
            node.deadline = deadline
            self._refresh_path(node.key())
        else:
            self.remove(item)
            self.insert(item, eligible, deadline)

    def update_deadline(self, item: ItemT, deadline: float) -> None:
        node = self._index[item]
        self.update(item, node.eligible, deadline)

    def min_eligible(self) -> Optional[float]:
        """Earliest eligible time in the set, or None when empty."""
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            node = node.left
        return node.eligible

    def min_deadline_eligible(self, now: float) -> Optional[Tuple[ItemT, float, float]]:
        """Request with the smallest deadline among those eligible at ``now``.

        Returns ``(item, eligible, deadline)`` or ``None`` when no request is
        eligible.  Ties on deadline go to the earliest-inserted request.
        """
        best_deadline = self._min_deadline_prefix(self._root, now)
        if best_deadline == _INF:
            return None
        node = self._locate(self._root, now, best_deadline)
        assert node is not None
        return node.item, node.eligible, node.deadline

    def items(self) -> Iterator[Tuple[ItemT, float, float]]:
        """All requests in eligible-time order (mainly for tests)."""
        stack: List[_Node[ItemT]] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.item, node.eligible, node.deadline
            node = node.right

    # -- internals --------------------------------------------------------

    def _insert(self, node: _Node[ItemT]) -> None:
        """Iterative treap insert (descend, attach, rotate back up).

        The shape produced is the canonical treap for the (key, priority)
        pairs, identical to the classic recursive formulation; iterating
        avoids a Python frame plus two key-tuple allocations per level.
        """
        cur = self._root
        if cur is None:
            self._root = node
            return
        eligible = node.eligible
        seq = node.seq
        path: List[_Node[ItemT]] = []
        while cur is not None:
            path.append(cur)
            if eligible < cur.eligible or (
                eligible == cur.eligible and seq < cur.seq
            ):
                cur = cur.left
            else:
                cur = cur.right
        # ``sub`` is the root of the rebuilt subtree; rotations happen for
        # a contiguous run from the attachment point upward, exactly while
        # the new node's priority beats the ancestor's.
        sub = node
        priority = node.priority
        i = len(path) - 1
        while i >= 0 and priority < path[i].priority:
            parent = path[i]
            if eligible < parent.eligible or (
                eligible == parent.eligible and seq < parent.seq
            ):
                parent.left = sub.right
                sub.right = parent
            else:
                parent.right = sub.left
                sub.left = parent
            parent.refresh()
            i -= 1
        sub.refresh()
        if i < 0:
            self._root = sub
            return
        parent = path[i]
        if eligible < parent.eligible or (
            eligible == parent.eligible and seq < parent.seq
        ):
            parent.left = sub
        else:
            parent.right = sub
        while i >= 0:
            path[i].refresh()
            i -= 1

    def _remove(self, node: _Node[ItemT]) -> None:
        """Iterative treap remove: rotate ``node`` down, splice it out."""
        eligible = node.eligible
        seq = node.seq
        path: List[_Node[ItemT]] = []
        cur = self._root
        while cur is not None and cur is not node:
            path.append(cur)
            if eligible < cur.eligible or (
                eligible == cur.eligible and seq < cur.seq
            ):
                cur = cur.left
            else:
                cur = cur.right
        if cur is None:
            raise KeyError((eligible, seq))
        parent = path[-1] if path else None
        while cur.left is not None and cur.right is not None:
            # Rotate the smaller-priority child above ``cur``.
            left = cur.left
            right = cur.right
            if left.priority < right.priority:
                cur.left = left.right
                left.right = cur
                riser = left
            else:
                cur.right = right.left
                right.left = cur
                riser = right
            if parent is None:
                self._root = riser
            elif parent.left is cur:
                parent.left = riser
            else:
                parent.right = riser
            path.append(riser)
            parent = riser
        replacement = cur.left if cur.left is not None else cur.right
        if parent is None:
            self._root = replacement
        elif parent.left is cur:
            parent.left = replacement
        else:
            parent.right = replacement
        for entry in reversed(path):
            entry.refresh()

    def _refresh_path(self, key: Tuple[float, int]) -> None:
        eligible, seq = key
        path: List[_Node[ItemT]] = []
        node = self._root
        while node is not None:
            path.append(node)
            if eligible == node.eligible and seq == node.seq:
                break
            if eligible < node.eligible or (
                eligible == node.eligible and seq < node.seq
            ):
                node = node.left
            else:
                node = node.right
        for entry in reversed(path):
            entry.refresh()

    def _min_deadline_prefix(self, node: Optional[_Node[ItemT]], now: float) -> float:
        """Min deadline over all requests with eligible time <= now."""
        best = _INF
        while node is not None:
            if node.eligible <= now:
                # Whole left subtree qualifies; consider it wholesale.
                if node.left is not None and node.left.min_deadline < best:
                    best = node.left.min_deadline
                if node.deadline < best:
                    best = node.deadline
                node = node.right
            else:
                node = node.left
        return best

    def _locate(
        self, node: Optional[_Node[ItemT]], now: float, deadline: float
    ) -> Optional[_Node[ItemT]]:
        """Find the earliest-keyed eligible node with the given deadline."""
        if node is None:
            return None
        # Prefer left subtree (earlier keys), then the node, then right.
        if node.left is not None and node.left.min_deadline <= deadline:
            found = self._locate(node.left, now, deadline)
            if found is not None:
                return found
        if node.eligible <= now and node.deadline == deadline:
            return node
        if node.eligible <= now:
            return self._locate(node.right, now, deadline)
        return None

    def check_invariants(self) -> None:
        """Verify ordering, heap priorities and augmentation (for tests)."""

        def walk(node: Optional[_Node[ItemT]]) -> Tuple[float, Tuple, Tuple]:
            if node is None:
                return _INF, (_INF, _INF), (-_INF, -_INF)
            left_min, left_lo, left_hi = walk(node.left)
            right_min, right_lo, right_hi = walk(node.right)
            if node.left is not None:
                assert left_hi <= node.key(), "BST order violated (left)"
                assert node.left.priority >= node.priority, "treap priority violated"
            if node.right is not None:
                assert right_lo >= node.key(), "BST order violated (right)"
                assert node.right.priority >= node.priority, "treap priority violated"
            expect = min(node.deadline, left_min, right_min)
            assert node.min_deadline == expect, "augmentation stale"
            lo = min(node.key(), left_lo if node.left else node.key())
            hi = max(node.key(), right_hi if node.right else node.key())
            return expect, lo, hi

        walk(self._root)
        count = sum(1 for _ in self.items())
        assert count == len(self._index), "index size mismatch"
