"""CLI entry points for checkpoint/restore runs and chaos replay.

``python -m repro run`` dispatches here when the target is a
checkpointable scenario (:data:`~repro.persist.scenarios.DRIVE_SETUPS` /
:data:`~repro.persist.scenarios.RUNTIME_SETUPS`) or when any of the
checkpoint flags are present::

    python -m repro run e4_phases --checkpoint-every 2000 --checkpoint ck.json
    python -m repro run e4_phases --resume ck.json --digest-out digest.txt
    python -m repro run eventloop_mixed --crash-at event:500 --checkpoint ck.json

Exit codes: 0 = run completed; 3 = run stopped at a crash point or a
signal-requested checkpoint with the snapshot written (resume with
``--resume``); 2 = usage error.  ``python -m repro chaos --replay
REPORT.json`` re-runs the failing runs recorded in a prior ``--report``
file and compares departure-schedule digests.
"""

from __future__ import annotations

import json
import sys
from typing import Any, List, Optional, Tuple

from repro.core.errors import SnapshotError
from repro.persist.codec import load_snapshot, save_snapshot
from repro.persist.harness import (
    DriveRun,
    Row,
    SignalCheckpointRequest,
    run_checkpointed,
    schedule_digest,
)
from repro.persist.scenarios import DRIVE_SETUPS, RUNTIME_SETUPS
from repro.sim.faults import CrashPoint

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_CHECKPOINTED = 3


def scenario_names() -> List[str]:
    return sorted(DRIVE_SETUPS) + sorted(RUNTIME_SETUPS)


def _emit_digest(rows: List[Row], path: Optional[str]) -> str:
    digest = schedule_digest(rows)
    if path:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(digest + "\n")
    return digest


def _run_drive(name: str, args) -> int:
    setup = DRIVE_SETUPS[name]
    sched, arrivals, until = setup(args.backend)
    if args.resume:
        run = DriveRun.restore(load_snapshot(args.resume), arrivals)
        if run.until != until:
            raise SnapshotError(
                "snapshot horizon does not match the scenario",
                reason="scenario-mismatch",
            )
        print(f"resumed {name!r} at t={run.now:g} "
              f"({run.served_count} packets already served)")
    else:
        run = DriveRun(sched, arrivals, until)

    crash_packet = None
    if args.crash_at:
        crash = CrashPoint.parse(args.crash_at)
        if crash.at_event is None or not args.crash_at.startswith("packet:"):
            print("drive scenarios only support packet:K crash points "
                  "(the drive loop has no event clock)", file=sys.stderr)
            return EXIT_USAGE
        crash_packet = crash.at_event

    every = args.checkpoint_every

    def write_checkpoint() -> None:
        if args.checkpoint:
            save_snapshot(args.checkpoint, run.snapshot_body())

    signal_request = None
    if args.checkpoint and every:
        # Signals are only honoured at chunk boundaries, so they need a
        # checkpoint cadence to create boundaries in the first place.
        signal_request = SignalCheckpointRequest().install()
    try:
        while True:
            targets = []
            if every:
                targets.append((run.served_count // every + 1) * every)
            if crash_packet is not None and crash_packet > run.served_count:
                targets.append(crash_packet)
            finished = run.run(max_served=min(targets) if targets else None)
            write_checkpoint()
            if finished:
                break
            if crash_packet is not None and run.served_count >= crash_packet:
                if not args.checkpoint:
                    print("--crash-at without --checkpoint loses the run",
                          file=sys.stderr)
                    return EXIT_USAGE
                digest = _emit_digest(run.rows, None)
                print(f"crashed {name!r} after {run.served_count} packets; "
                      f"checkpoint written to {args.checkpoint} "
                      f"(partial digest {digest[:16]}...)")
                return EXIT_CHECKPOINTED
            if signal_request is not None and signal_request.requested:
                print(f"signal: stopped {name!r} after {run.served_count} "
                      f"packets; checkpoint written to {args.checkpoint}")
                return EXIT_CHECKPOINTED
    finally:
        if signal_request is not None:
            signal_request.uninstall()

    digest = _emit_digest(run.rows, args.digest_out)
    print(f"{name!r} finished: {run.served_count} packets, "
          f"digest {digest}")
    return EXIT_OK


def _runtime_recorder_rows(ctx) -> List[Row]:
    try:
        recorder = ctx.component("recorder")
    except KeyError:
        return []
    return [
        (r.class_id, r.size, r.departed, r.via_realtime)
        for r in recorder.records
    ]


def _run_runtime(name: str, args) -> int:
    setup = RUNTIME_SETUPS[name]
    ctx, until = setup(args.backend)
    if args.resume:
        ctx.restore_body(load_snapshot(args.resume))
        print(f"resumed {name!r} at t={ctx.loop.now:g} "
              f"({ctx.loop.events_processed} events already processed)")
    crash = CrashPoint.parse(args.crash_at) if args.crash_at else None
    if (crash or args.checkpoint_every) and not args.checkpoint:
        print("--crash-at/--checkpoint-every need --checkpoint PATH",
              file=sys.stderr)
        return EXIT_USAGE
    signal_request = None
    if args.checkpoint:
        signal_request = SignalCheckpointRequest().install()
    try:
        finished = run_checkpointed(
            ctx,
            until,
            checkpoint_path=args.checkpoint,
            every_events=args.checkpoint_every,
            crash=crash,
            signal_request=signal_request,
        )
    finally:
        if signal_request is not None:
            signal_request.uninstall()
    rows = _runtime_recorder_rows(ctx)
    if not finished:
        digest = schedule_digest(rows)
        print(f"stopped {name!r} at event {ctx.loop.events_processed} "
              f"(t={ctx.loop.now:g}); checkpoint written to "
              f"{args.checkpoint} (partial digest {digest[:16]}...)")
        return EXIT_CHECKPOINTED
    digest = _emit_digest(rows, args.digest_out)
    print(f"{name!r} finished: {len(rows)} packets recorded, "
          f"{ctx.loop.events_processed} events, digest {digest}")
    return EXIT_OK


def run_scenario_command(args) -> int:
    """``repro run`` for checkpointable scenarios."""
    name = args.experiment
    try:
        if name in DRIVE_SETUPS:
            return _run_drive(name, args)
        if name in RUNTIME_SETUPS:
            return _run_runtime(name, args)
    except SnapshotError as exc:
        print(f"snapshot refused [{exc.reason}]: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(
        f"unknown checkpointable scenario {name!r}; "
        f"expected one of {', '.join(scenario_names())}",
        file=sys.stderr,
    )
    return EXIT_USAGE


# -- chaos replay ------------------------------------------------------------


def _replay_counterexamples(docs: List[Any]) -> int:
    """Replay verifier counterexamples through the real scheduler."""
    from repro.core.errors import ConfigurationError
    from repro.verify.bridge import replay_counterexample

    exit_code = EXIT_OK
    for doc in docs:
        try:
            outcome = replay_counterexample(doc)
        except (ConfigurationError, KeyError, TypeError, ValueError) as exc:
            print(f"  malformed counterexample: {exc}", file=sys.stderr)
            exit_code = 1
            continue
        status = "ok" if outcome["reproduced"] else "FAIL"
        if status == "FAIL":
            exit_code = 1
        print(f"replay {outcome['property']:28} "
              f"scenario={outcome['scenario']:10} {status}  "
              f"measured={outcome['measured']:g} "
              f"predicted={outcome['predicted']:g} "
              f"(tolerance {outcome['tolerance']:g})")
        if status == "FAIL":
            print(f"  {outcome['detail']}", file=sys.stderr)
    return exit_code


def replay_chaos_command(args) -> int:
    """``repro chaos --replay FILE.json``: re-run recorded failures.

    Accepts two kinds of file.  A chaos ``--report`` file re-runs the
    failing runs (all runs when none failed) with the stored
    seed/policy/duration and compares the departure-schedule digest --
    a deterministic repro of exactly the run that failed, without
    hunting for its seed.  A verifier counterexample file (schema
    ``repro-verify-counterexample/v1``, single document or a
    ``{"counterexamples": [...]}`` bundle, as written by ``repro verify
    --emit-fixture``) replays the solver-found arrival trace through
    the real scheduler and checks the predicted violation reproduces.
    """
    from repro.sim.faults import run_chaos

    try:
        with open(args.replay, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read chaos report {args.replay!r}: {exc}",
              file=sys.stderr)
        return EXIT_USAGE
    if isinstance(data, dict):
        if data.get("schema") == "repro-verify-counterexample/v1":
            return _replay_counterexamples([data])
        if isinstance(data.get("counterexamples"), list):
            return _replay_counterexamples(data["counterexamples"])
    runs = data.get("runs") if isinstance(data, dict) else None
    if not isinstance(runs, list) or not runs:
        print(f"{args.replay!r} has no 'runs' list; was it written by "
              "'repro chaos --report' or 'repro verify --emit-fixture'?",
              file=sys.stderr)
        return EXIT_USAGE

    def run_failed(report: Any) -> bool:
        return bool(report.get("violations")) or not report.get(
            "conservation", {}).get("ok", True)

    targets = [r for r in runs if run_failed(r)]
    if targets:
        print(f"replaying {len(targets)} failing run(s) of {len(runs)}")
    else:
        targets = runs
        print(f"no failing runs recorded; replaying all {len(runs)}")

    exit_code = EXIT_OK
    for report in targets:
        try:
            seed = report["seed"]
            policy = report["policy"]
            duration = report["duration"]
            stored_digest = report["schedule_digest"]
        except (KeyError, TypeError):
            print("  malformed run entry (missing seed/policy/duration/"
                  "schedule_digest)", file=sys.stderr)
            exit_code = 1
            continue
        result = run_chaos(seed, duration=duration, policy=policy)
        fresh = result.to_report()
        digest_ok = fresh["schedule_digest"] == stored_digest
        still_failing = run_failed(fresh)
        status = "ok" if digest_ok and not still_failing else "FAIL"
        if status == "FAIL":
            exit_code = 1
        print(f"replay seed={seed} policy={policy:15} {status}  "
              f"digest={'match' if digest_ok else 'MISMATCH'} "
              f"violations={len(fresh['violations'])}")
        if not digest_ok:
            print(f"  stored  {stored_digest}", file=sys.stderr)
            print(f"  replay  {fresh['schedule_digest']}", file=sys.stderr)
        for violation in fresh["violations"]:
            print(f"  - [{violation['kind']}] t={violation['time']:g} "
                  f"{violation['detail']}", file=sys.stderr)
    return exit_code
