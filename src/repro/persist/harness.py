"""Crash-injection harness: checkpoint, kill, restore, compare.

The correctness oracle for the whole persistence layer is
*crash-equivalence*: for any scenario and any crash point, running to
the crash, snapshotting, throwing the process state away, restoring
into a freshly built context and continuing must produce a departure
schedule byte-identical to the uninterrupted run
(:func:`schedule_digest` compares full-precision ``repr`` rows, so a
single ulp of drift fails the digest).

Two execution models are covered:

* :class:`DriveRun` -- a resumable re-expression of
  :func:`repro.sim.drive.drive` (same loop body, one transmission per
  step) whose state between steps is exactly (scheduler, arrival
  index, clock, served rows);
* :func:`run_checkpointed` -- chunked :meth:`EventLoop.run` for live
  :class:`~repro.persist.runtime.RunContext` scenarios, with
  checkpoint-every-N-events, :class:`~repro.sim.faults.CrashPoint`
  injection, and snapshot-on-signal (SIGTERM/SIGUSR1 request a
  checkpoint at the next chunk boundary instead of losing the run).

One caveat is inherent to event-indexed crash points: stopping the
loop parks it *between* chunks, so a transmission completion that the
uninterrupted run executed inline (the link's busy-serve
``try_advance`` fast path) is re-scheduled as a real heap event on
resume, consuming a sequence number the uninterrupted run never
allocated.  Sequence numbers only break *exact same-time ties*; the
golden scenarios are tie-free by construction, so their digests are
unaffected -- but a workload with deliberate deadline ties may order a
tied pair differently after a resume.  Time-indexed crash points do
not move sequence allocation at all.
"""

from __future__ import annotations

import hashlib
import signal
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import SnapshotError
from repro.persist.codec import (
    PacketTable,
    load_snapshot,
    restore_packets,
    save_snapshot,
)
from repro.persist.runtime import RunContext
from repro.persist.schedulers import restore_scheduler, snapshot_scheduler
from repro.sim.drive import Arrival
from repro.sim.faults import CrashPoint

Row = Tuple[Any, float, float, Any]

_BIG_BUDGET = 1 << 62


def schedule_digest(rows: List[Row]) -> str:
    """SHA-256 over (class_id, size, departed, via_realtime) rows.

    ``repr`` of the floats keeps full precision, so two schedules hash
    equal only when departure times agree bit-for-bit.
    """
    h = hashlib.sha256()
    for class_id, size, departed, via_rt in rows:
        h.update(f"{class_id}|{size!r}|{departed!r}|{via_rt}\n".encode())
    return h.hexdigest()


def _arrivals_digest(arrivals: List[Arrival]) -> str:
    h = hashlib.sha256()
    for time, class_id, size in arrivals:
        h.update(f"{time!r}|{class_id}|{size!r}\n".encode())
    return h.hexdigest()


class DriveRun:
    """Resumable equivalent of :func:`repro.sim.drive.drive`.

    One :meth:`step` performs one iteration of ``drive``'s loop body
    (deliver due arrivals, transmit one packet or advance the clock),
    so between any two steps the complete run state is the scheduler,
    the arrival cursor, the clock and the served rows -- all of which
    snapshot.  An uninterrupted ``DriveRun`` produces rows identical to
    ``drive`` (asserted against the pinned golden digests in
    ``tests/test_persist_crash.py``).
    """

    _BODY_KEYS = frozenset(
        {"kind", "scheduler", "index", "now", "until", "rate",
         "served", "arrivals_digest", "packets"}
    )

    def __init__(self, scheduler: Any, arrivals: List[Arrival], until: float,
                 rate: Optional[float] = None):
        from repro.sim.packet import Packet  # local: keep module import light

        self._packet_cls = Packet
        self.scheduler = scheduler
        self.pending = sorted(arrivals, key=lambda a: a[0])
        self.until = until
        self.rate = rate if rate is not None else scheduler.link_rate
        self.index = 0
        self.now = 0.0
        self.rows: List[Row] = []
        self.done = False

    @property
    def served_count(self) -> int:
        return len(self.rows)

    def step(self) -> bool:
        """One drive iteration; returns False when the run is finished."""
        if self.done or self.now >= self.until:
            self.done = True
            return False
        pending, index, now = self.pending, self.index, self.now
        scheduler = self.scheduler
        while index < len(pending) and pending[index][0] <= now + 1e-12:
            time, class_id, size = pending[index]
            scheduler.enqueue(
                self._packet_cls(class_id, size, created=time), time
            )
            index += 1
        self.index = index
        packet = scheduler.dequeue(now) if len(scheduler) else None
        if packet is not None:
            packet.departed = now + packet.size / self.rate
            self.rows.append(
                (packet.class_id, packet.size, packet.departed, packet.via_realtime)
            )
            self.now = packet.departed
            return True
        candidates = []
        if index < len(pending):
            candidates.append(pending[index][0])
        ready = scheduler.next_ready_time(now)
        if ready is not None:
            candidates.append(ready)
        if not candidates:
            self.done = True
            return False
        self.now = max(now, min(candidates))
        return True

    def run(self, max_served: Optional[int] = None) -> bool:
        """Run until finished, or until ``max_served`` rows exist.

        Returns True when the drive completed, False when it stopped at
        the serve bound (the crash point).
        """
        while not self.done:
            if max_served is not None and len(self.rows) >= max_served:
                return False
            self.step()
        return True

    # -- snapshot/restore --------------------------------------------------

    def snapshot_body(self) -> Dict[str, Any]:
        table = PacketTable()
        return {
            "kind": "drive",
            "scheduler": snapshot_scheduler(self.scheduler, table.add),
            "index": self.index,
            "now": self.now,
            "until": self.until,
            "rate": self.rate,
            "served": [list(row) for row in self.rows],
            "arrivals_digest": _arrivals_digest(self.pending),
            "packets": table.to_doc(),
        }

    @classmethod
    def restore(cls, body: Dict[str, Any], arrivals: List[Arrival]) -> "DriveRun":
        """Rebuild a run from a snapshot plus the scenario's arrival list.

        The arrivals are *not* stored (they are the scenario definition,
        reproducible from the builder); their digest is, and a resume
        against a different arrival list is refused -- continuing the
        wrong scenario would silently produce a plausible-looking but
        meaningless schedule.
        """
        if set(body) != cls._BODY_KEYS:
            extra = sorted(set(map(str, body)) - set(map(str, cls._BODY_KEYS)))
            raise SnapshotError(
                "malformed drive snapshot document",
                reason="unknown-field" if extra else "missing-field",
            )
        if body["kind"] != "drive":
            raise SnapshotError(
                f"snapshot kind {body['kind']!r} is not a drive snapshot",
                reason="bad-format",
            )
        get_packet = restore_packets(body["packets"])
        scheduler = restore_scheduler(body["scheduler"], get_packet)
        run = cls(scheduler, arrivals, body["until"], rate=body["rate"])
        stored = body["arrivals_digest"]
        actual = _arrivals_digest(run.pending)
        if stored != actual:
            raise SnapshotError(
                "snapshot was taken against a different arrival list",
                reason="scenario-mismatch",
                context={"stored": stored, "computed": actual},
            )
        if not 0 <= body["index"] <= len(run.pending):
            raise SnapshotError(
                "arrival cursor out of range", reason="bad-format"
            )
        run.index = body["index"]
        run.now = body["now"]
        run.rows = [tuple(row) for row in body["served"]]
        return run


# -- event-loop checkpointing ------------------------------------------------


class SignalCheckpointRequest:
    """Snapshot-on-signal flag: arms handlers, remembers the request.

    The handler only sets a flag; :func:`run_checkpointed` checks it at
    chunk boundaries, writes the checkpoint and stops cleanly -- no
    snapshot is ever taken from inside a signal frame mid-event.
    """

    def __init__(self) -> None:
        self.requested = False
        self._previous: List[Tuple[int, Any]] = []

    def _handler(self, signum, frame) -> None:  # pragma: no cover - signal frame
        self.requested = True

    def install(self, *signums: int) -> "SignalCheckpointRequest":
        for signum in signums or (signal.SIGTERM, signal.SIGUSR1):
            self._previous.append((signum, signal.signal(signum, self._handler)))
        return self

    def uninstall(self) -> None:
        while self._previous:
            signum, previous = self._previous.pop()
            signal.signal(signum, previous)


def run_checkpointed(
    ctx: RunContext,
    until: float,
    checkpoint_path: Optional[str] = None,
    every_events: Optional[int] = None,
    crash: Optional[CrashPoint] = None,
    signal_request: Optional[SignalCheckpointRequest] = None,
    on_checkpoint: Optional[Callable[[int], None]] = None,
) -> bool:
    """Drive ``ctx.loop`` to ``until`` in checkpointable chunks.

    Returns True when the run completed, False when it stopped early at
    a crash point or a signal-requested checkpoint (with the snapshot
    written, if a path was given).  Without ``every_events``, ``crash``
    and ``signal_request`` this is a single uninterrupted
    ``loop.run(until)`` -- checkpointing off adds no per-event work.
    """
    loop = ctx.loop
    crash_event = crash.at_event if crash is not None else None
    crash_time = crash.at_time if crash is not None else None
    horizon = until if crash_time is None else min(until, crash_time)

    def write(processed: int) -> None:
        if checkpoint_path is not None:
            save_snapshot(checkpoint_path, ctx.snapshot_body())
        if on_checkpoint is not None:
            on_checkpoint(processed)

    while True:
        targets = []
        if every_events:
            targets.append(
                (loop.events_processed // every_events + 1) * every_events
            )
        if crash_event is not None and crash_event > loop.events_processed:
            targets.append(crash_event)
        budget = (min(targets) - loop.events_processed) if targets else _BIG_BUDGET
        finished = loop.run(
            until=horizon, max_events=budget, stop_on_budget=True
        )
        processed = loop.events_processed
        if finished:
            if crash_time is not None and horizon < until:
                # The clock reached the crash time with the queue quiet
                # up to it: this is the kill point.
                write(processed)
                return False
            write(processed)
            return True
        if crash_event is not None and processed >= crash_event:
            write(processed)
            return False
        write(processed)
        if signal_request is not None and signal_request.requested:
            return False


# -- crash-equivalence oracle ------------------------------------------------


def drive_rows(name: str, backend: str) -> List[Row]:
    """Uninterrupted rows for a drive scenario, via :class:`DriveRun`."""
    from repro.persist.scenarios import DRIVE_SETUPS

    sched, arrivals, until = DRIVE_SETUPS[name](backend)
    run = DriveRun(sched, arrivals, until)
    run.run()
    return run.rows


def runtime_rows(name: str, backend: str) -> List[Row]:
    """Uninterrupted rows for an event-driven scenario."""
    from repro.persist.scenarios import RUNTIME_SETUPS

    ctx, until = RUNTIME_SETUPS[name](backend)
    ctx.loop.run(until=until)
    return [
        (r.class_id, r.size, r.departed, r.via_realtime)
        for r in ctx.component("recorder").records
    ]


def crash_and_resume_drive(
    name: str, backend: str, crash_index: int
) -> List[Row]:
    """Run a drive scenario, kill it after ``crash_index`` departures,
    restore into a fresh context and continue to the end.

    The snapshot round-trips through the full envelope codec (dump,
    checksum, parse), exactly what an on-disk checkpoint experiences.
    """
    from repro.persist.codec import dumps_snapshot, loads_snapshot
    from repro.persist.scenarios import DRIVE_SETUPS

    setup = DRIVE_SETUPS[name]
    sched, arrivals, until = setup(backend)
    run = DriveRun(sched, arrivals, until)
    finished = run.run(max_served=crash_index)
    text = dumps_snapshot(run.snapshot_body())
    if finished:
        # Crash index beyond the schedule: the snapshot is of the final
        # state; restoring and continuing must be a no-op.
        pass
    del run, sched, arrivals
    fresh_sched, fresh_arrivals, fresh_until = setup(backend)
    del fresh_sched  # the snapshot supplies the scheduler state
    resumed = DriveRun.restore(loads_snapshot(text), fresh_arrivals)
    if resumed.until != fresh_until:
        raise SnapshotError(
            "snapshot horizon does not match the scenario",
            reason="scenario-mismatch",
        )
    resumed.run()
    return resumed.rows


def crash_and_resume_runtime(
    name: str, backend: str, crash: CrashPoint
) -> List[Row]:
    """Crash/restore/continue for an event-driven scenario."""
    from repro.persist.codec import dumps_snapshot, loads_snapshot
    from repro.persist.scenarios import RUNTIME_SETUPS

    setup = RUNTIME_SETUPS[name]
    ctx, until = setup(backend)
    bodies: List[str] = []
    run_checkpointed(
        ctx,
        until,
        crash=crash,
        on_checkpoint=lambda _: bodies.append(
            dumps_snapshot(ctx.snapshot_body())
        ),
    )
    text = bodies[-1]
    del ctx
    fresh_ctx, fresh_until = setup(backend)
    fresh_ctx.restore_body(loads_snapshot(text))
    fresh_ctx.loop.run(until=fresh_until)
    return [
        (r.class_id, r.size, r.departed, r.via_realtime)
        for r in fresh_ctx.component("recorder").records
    ]
