"""Snapshot document codec: envelope, integrity checksum, packet table.

A snapshot is a single self-describing JSON document::

    {"format": "repro-snapshot", "schema": 1,
     "checksum": "sha256:...", "body": {...}}

The ``body`` is produced by the scheduler / runtime codecs
(:mod:`repro.persist.schedulers`, :mod:`repro.persist.runtime`); this
module owns everything around it:

* **versioning** -- ``schema`` is bumped whenever the body layout
  changes; a loader refuses documents from a different schema rather
  than guessing (``SnapshotError(reason="schema-version")``);
* **integrity** -- ``checksum`` is the SHA-256 of the body's canonical
  serialization (sorted keys, no whitespace); any bit flip inside the
  body is caught before a single field is applied;
* **strictness** -- unknown envelope fields are rejected, as is every
  unknown field further down (each codec validates its own level), so
  a snapshot written by a newer minor revision cannot be half-applied;
* **float exactness** -- Python's ``json`` round-trips floats through
  ``repr`` (shortest round-trip), so every timestamp, virtual time and
  curve parameter survives bit-for-bit.  ``inf`` sentinels ride along
  as JSON ``Infinity`` literals (the Python dialect; snapshots are a
  private format, not an interchange one);
* **atomic writes** -- :func:`save_snapshot` writes a temp file and
  ``os.replace``\\ s it, so a crash mid-write never corrupts an
  existing checkpoint.

Restores are atomic by construction: every codec builds fresh objects
and only hands them over on success, so a refused document leaves no
half-applied state anywhere.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Callable, Dict

import repro.sim.packet as _packet_mod
from repro.core.errors import SnapshotError
from repro.sim.packet import Packet

FORMAT = "repro-snapshot"
SCHEMA_VERSION = 1

_ENVELOPE_KEYS = frozenset({"format", "schema", "checksum", "body"})

#: Packet-table entry layout (positional, in this order).
_PACKET_FIELDS = (
    "class_id",
    "size",
    "created",
    "enqueued",
    "dequeued",
    "departed",
    "deadline",
    "via_realtime",
)


def body_checksum(body: Dict[str, Any]) -> str:
    """SHA-256 over the canonical serialization of ``body``."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def dumps_snapshot(body: Dict[str, Any]) -> str:
    """Wrap ``body`` in the versioned, checksummed envelope."""
    envelope = {
        "format": FORMAT,
        "schema": SCHEMA_VERSION,
        "checksum": body_checksum(body),
        "body": body,
    }
    return json.dumps(envelope, sort_keys=True)


def loads_snapshot(text: str) -> Dict[str, Any]:
    """Parse and verify an envelope; returns the body.

    Refuses -- with a structured :class:`SnapshotError`, never a partial
    result -- anything that is not a JSON object, carries unknown
    envelope fields, claims a different format or schema version, or
    fails the checksum.
    """
    try:
        envelope = json.loads(text)
    except ValueError as exc:
        raise SnapshotError(
            f"snapshot is not valid JSON: {exc}", reason="bad-json"
        ) from exc
    if not isinstance(envelope, dict):
        raise SnapshotError(
            "snapshot envelope is not a JSON object", reason="bad-format"
        )
    if set(envelope) != _ENVELOPE_KEYS:
        extra = sorted(map(str, set(envelope) - _ENVELOPE_KEYS))
        missing = sorted(_ENVELOPE_KEYS - set(envelope))
        raise SnapshotError(
            "malformed snapshot envelope",
            reason="unknown-field" if extra else "missing-field",
            context={"extra": extra, "missing": missing},
        )
    if envelope["format"] != FORMAT:
        raise SnapshotError(
            f"not a repro snapshot (format={envelope['format']!r})",
            reason="bad-format",
        )
    if envelope["schema"] != SCHEMA_VERSION:
        raise SnapshotError(
            f"snapshot schema version {envelope['schema']!r} is not "
            f"supported (this build reads version {SCHEMA_VERSION})",
            reason="schema-version",
            context={"stored": envelope["schema"], "supported": SCHEMA_VERSION},
        )
    body = envelope["body"]
    if not isinstance(body, dict):
        raise SnapshotError("snapshot body is not a JSON object", reason="bad-format")
    expected = envelope["checksum"]
    actual = body_checksum(body)
    if expected != actual:
        raise SnapshotError(
            "snapshot checksum mismatch: the document is corrupted",
            reason="checksum-mismatch",
            context={"stored": expected, "computed": actual},
        )
    return body


def save_snapshot(path: str, body: Dict[str, Any]) -> None:
    """Atomically write ``body`` (enveloped) to ``path``.

    The document lands under a temporary name first and is
    ``os.replace``\\ d into place, so an interrupted write -- the whole
    point of checkpointing -- can never corrupt the previous snapshot.
    """
    text = dumps_snapshot(body)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def load_snapshot(path: str) -> Dict[str, Any]:
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise SnapshotError(
            f"cannot read snapshot {path!r}: {exc}", reason="io-error"
        ) from exc
    return loads_snapshot(text)


# -- packet table ------------------------------------------------------------


class PacketTable:
    """Interns packets referenced anywhere in a snapshot body.

    Queues, in-flight transmission state and pending events all point at
    the same :class:`Packet` objects; the table stores each packet once,
    keyed by its ``uid``, and the referencing codecs store bare uids --
    so object identity survives the round trip (a packet queued *and*
    referenced by a pending event is one object again after restore).
    """

    def __init__(self) -> None:
        self._by_uid: Dict[int, Packet] = {}

    def add(self, packet: Packet) -> int:
        if packet.payload is not None:
            raise SnapshotError(
                f"packet {packet.uid} carries a non-serializable payload",
                reason="unsupported-payload",
                context={"class_id": str(packet.class_id)},
            )
        if not isinstance(packet.class_id, (str, int)):
            raise SnapshotError(
                f"packet class id {packet.class_id!r} is not JSON-safe",
                reason="unsupported-name",
            )
        existing = self._by_uid.get(packet.uid)
        if existing is not None and existing is not packet:
            raise SnapshotError(
                f"two distinct packets share uid {packet.uid}",
                reason="uid-collision",
            )
        self._by_uid[packet.uid] = packet
        return packet.uid

    def __len__(self) -> int:
        return len(self._by_uid)

    def to_doc(self) -> Dict[str, Any]:
        return {
            str(uid): [getattr(p, field) for field in _PACKET_FIELDS]
            for uid, p in self._by_uid.items()
        }


def restore_packets(doc: Dict[str, Any]) -> Callable[[int], Packet]:
    """Rebuild the packet table; returns the ``get_packet`` resolver.

    The process-global uid counter is advanced past every restored uid
    so packets created *after* the restore can never collide with a
    restored one -- a second checkpoint taken later in the resumed run
    must key its table unambiguously.
    """
    import itertools

    by_uid: Dict[int, Packet] = {}
    max_uid = -1
    for key, fields in doc.items():
        try:
            uid = int(key)
        except ValueError:
            raise SnapshotError(
                f"malformed packet uid {key!r}", reason="bad-packet"
            ) from None
        if not isinstance(fields, list) or len(fields) != len(_PACKET_FIELDS):
            raise SnapshotError(
                f"malformed packet record for uid {uid}", reason="bad-packet"
            )
        class_id, size, created = fields[0], fields[1], fields[2]
        try:
            packet = Packet(class_id, size, created=created)
        except (TypeError, ValueError) as exc:
            raise SnapshotError(
                f"invalid packet record for uid {uid}: {exc}", reason="bad-packet"
            ) from exc
        packet.uid = uid
        packet.enqueued = fields[3]
        packet.dequeued = fields[4]
        packet.departed = fields[5]
        packet.deadline = fields[6]
        packet.via_realtime = fields[7]
        by_uid[uid] = packet
        if uid > max_uid:
            max_uid = uid
    _packet_mod._packet_ids = itertools.count(max_uid + 1)

    def get_packet(uid: int) -> Packet:
        try:
            return by_uid[uid]
        except KeyError:
            raise SnapshotError(
                f"snapshot references unknown packet uid {uid}",
                reason="unknown-packet",
            ) from None

    return get_packet
