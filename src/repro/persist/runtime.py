"""Whole-simulation snapshot/restore: the :class:`RunContext`.

A live run is more than its scheduler: the event loop holds pending
callbacks (source ticks, transmission completions, periodic tasks), the
link holds an in-flight packet, sources hold RNG positions and
counters, collectors hold statistics.  A :class:`RunContext` names each
of those parts once, at build time, and then:

* :meth:`RunContext.snapshot_body` serializes everything into one JSON
  body (shared :class:`~repro.persist.codec.PacketTable`, events stored
  as ``(time, seq, owner-key, method, args)`` tuples);
* :meth:`RunContext.restore_body` overlays a body onto a **freshly
  built** context -- the same builder that made the crashed run makes
  the new one, and the restore only rebinds runtime state: pending
  events keep their original ``(time, seq)`` keys so same-time ordering
  resumes exactly, periodic tasks adopt their saved next tick
  (no missed-tick burst), RNG streams refuse to load into a stream with
  a different seed/label identity.

Callbacks themselves are never serialized.  An event is stored as the
*name* of a registered component plus a method name; restore resolves
the name against the fresh context and refuses documents that
reference components the builder did not recreate
(``SnapshotError(reason="context-mismatch")``).  That is the
process-equivalence contract: a snapshot can only be restored into a
context wired the same way as the one that wrote it.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.errors import SnapshotError
from repro.persist.codec import PacketTable, restore_packets
from repro.persist.schedulers import restore_scheduler, snapshot_scheduler
from repro.sim.engine import Event, EventLoop, PeriodicTask
from repro.sim.link import Link
from repro.sim.packet import Packet
from repro.sim.sources import OnOffSource, Source, VideoFrameSource
from repro.sim.stats import (
    BacklogMeter,
    ClassStats,
    StatsCollector,
    ThroughputMeter,
)
from repro.sim.trace import TraceRecord, TraceRecorder
from repro.util.rng import restore_rng_state, rng_state_doc

_BODY_KEYS = frozenset(
    {"kind", "clock", "scheduler", "link", "events", "tasks", "components", "packets"}
)


def _check_keys(doc: Dict[str, Any], expected: frozenset, what: str) -> None:
    if set(doc) != expected:
        extra = sorted(map(str, set(doc) - expected))
        missing = sorted(map(str, expected - set(doc)))
        raise SnapshotError(
            f"malformed {what} document",
            reason="unknown-field" if extra else "missing-field",
            context={"extra": extra, "missing": missing},
        )


# -- component codecs --------------------------------------------------------
#
# Each supported component type stores its runtime state (counters, RNG
# position, accumulated records); configuration is *not* stored -- the
# fresh builder supplies it, and cheap identity fields (class_id, type
# name) are cross-checked so a snapshot cannot land on the wrong part.


def _source_state(source: Source) -> Dict[str, Any]:
    state: Dict[str, Any] = {
        "class_id": source.class_id,
        "packets_sent": source.packets_sent,
        "bytes_sent": source.bytes_sent,
        "rng": (
            rng_state_doc(source.rng)
            if getattr(source, "rng", None) is not None
            else None
        ),
    }
    if isinstance(source, OnOffSource):
        state["on_until"] = source._on_until
    if isinstance(source, VideoFrameSource):
        state["frames_sent"] = source.frames_sent
    return state


def _restore_source(source: Source, state: Dict[str, Any]) -> None:
    if state["class_id"] != source.class_id:
        raise SnapshotError(
            f"source class id mismatch: snapshot has "
            f"{state['class_id']!r}, context has {source.class_id!r}",
            reason="context-mismatch",
        )
    source.packets_sent = state["packets_sent"]
    source.bytes_sent = state["bytes_sent"]
    rng_doc = state["rng"]
    live_rng = getattr(source, "rng", None)
    if (rng_doc is None) != (live_rng is None):
        raise SnapshotError(
            "source RNG presence differs between snapshot and context",
            reason="context-mismatch",
        )
    if rng_doc is not None:
        try:
            restore_rng_state(live_rng, rng_doc)
        except (ValueError, TypeError, KeyError) as exc:
            raise SnapshotError(
                f"cannot restore RNG stream: {exc}", reason="rng-mismatch"
            ) from exc
    if isinstance(source, OnOffSource):
        source._on_until = state["on_until"]
    if isinstance(source, VideoFrameSource):
        source.frames_sent = state["frames_sent"]


def _component_doc(obj: Any) -> Dict[str, Any]:
    if isinstance(obj, Source):
        state = _source_state(obj)
    elif isinstance(obj, StatsCollector):
        state = {
            "total_packets": obj.total_packets,
            "total_bytes": obj.total_bytes,
            "classes": [stats.state_doc() for stats in obj.per_class.values()],
        }
    elif isinstance(obj, TraceRecorder):
        state = {
            "records": [
                [r.departed, r.class_id, r.size, r.enqueued, r.deadline, r.via_realtime]
                for r in obj.records
            ]
        }
    elif isinstance(obj, BacklogMeter):
        state = {"samples": [list(sample) for sample in obj.samples]}
    elif isinstance(obj, ThroughputMeter):
        state = {
            "buckets": [
                [class_id, sorted(per_bucket.items())]
                for class_id, per_bucket in obj._bytes.items()
            ]
        }
    else:
        raise SnapshotError(
            f"component type {type(obj).__name__} has no snapshot codec",
            reason="unsupported-component",
        )
    return {"type": type(obj).__name__, "state": state}


def _restore_component(obj: Any, doc: Dict[str, Any]) -> None:
    _check_keys(doc, frozenset({"type", "state"}), "component")
    if doc["type"] != type(obj).__name__:
        raise SnapshotError(
            f"component type mismatch: snapshot has {doc['type']!r}, "
            f"context has {type(obj).__name__!r}",
            reason="context-mismatch",
        )
    state = doc["state"]
    if isinstance(obj, Source):
        _restore_source(obj, state)
    elif isinstance(obj, StatsCollector):
        obj.total_packets = state["total_packets"]
        obj.total_bytes = state["total_bytes"]
        obj.per_class = {}
        for sub in state["classes"]:
            stats = ClassStats.from_state(sub)
            obj.per_class[stats.class_id] = stats
    elif isinstance(obj, TraceRecorder):
        obj.records[:] = [TraceRecord(*row) for row in state["records"]]
    elif isinstance(obj, BacklogMeter):
        obj.samples[:] = [tuple(sample) for sample in state["samples"]]
    elif isinstance(obj, ThroughputMeter):
        obj._bytes = {
            class_id: {int(b): v for b, v in buckets}
            for class_id, buckets in state["buckets"]
        }
    else:  # pragma: no cover -- _component_doc already refused this type
        raise SnapshotError(
            f"component type {type(obj).__name__} has no snapshot codec",
            reason="unsupported-component",
        )


# -- the run context ---------------------------------------------------------


class RunContext:
    """Names the parts of a live simulation so they can round-trip.

    Build the simulation, registering every component that either owns
    pending events or accumulates state::

        ctx = RunContext(loop, link)
        ctx.register("src.voice", CBRSource(loop, link, "voice", ...))
        ctx.register("recorder", TraceRecorder(link))
        ctx.task("meter", loop.every(0.1, meter.tick))

    A resumed run re-executes the same builder, then calls
    :meth:`restore_body` on the fresh context.
    """

    def __init__(self, loop: EventLoop, link: Link):
        self.loop = loop
        self.link = link
        self.scheduler = link.scheduler
        self._components: Dict[str, Any] = {}
        self._tasks: Dict[str, PeriodicTask] = {}

    def register(self, key: str, component: Any) -> Any:
        if key in self._components or key in ("link",):
            raise SnapshotError(
                f"duplicate component key {key!r}", reason="context-mismatch"
            )
        self._components[key] = component
        return component

    def task(self, key: str, task: PeriodicTask) -> PeriodicTask:
        if key in self._tasks:
            raise SnapshotError(
                f"duplicate task key {key!r}", reason="context-mismatch"
            )
        self._tasks[key] = task
        return task

    def component(self, key: str) -> Any:
        return self._components[key]

    # -- snapshot ---------------------------------------------------------

    def _owner_keys(self) -> Dict[int, str]:
        owners: Dict[int, str] = {id(self.link): "link"}
        for key, component in self._components.items():
            owners[id(component)] = key
        for key, task in self._tasks.items():
            owners[id(task)] = f"task:{key}"
        return owners

    def _encode_event(
        self, event: Event, owners: Dict[int, str], table: PacketTable
    ) -> Dict[str, Any]:
        fn = event[2]
        owner = getattr(fn, "__self__", None)
        key = owners.get(id(owner)) if owner is not None else None
        if key is None:
            raise SnapshotError(
                f"pending event at t={event[0]:g} is owned by an "
                f"unregistered component ({fn!r}); register it on the "
                "RunContext or cancel it before checkpointing",
                reason="unsupported-event",
            )
        args: List[Any] = []
        for arg in event[3]:
            if isinstance(arg, Packet):
                args.append(["p", table.add(arg)])
            elif arg is None or isinstance(arg, (bool, int, float, str)):
                args.append(["v", arg])
            else:
                raise SnapshotError(
                    f"pending event argument {arg!r} is not serializable",
                    reason="unsupported-event",
                )
        return {
            "time": event[0],
            "seq": event[1],
            "owner": key,
            "method": fn.__name__,
            "args": args,
        }

    def snapshot_body(self) -> Dict[str, Any]:
        table = PacketTable()
        owners = self._owner_keys()
        events = [
            self._encode_event(event, owners, table)
            for event in sorted(self.loop.pending_events(), key=lambda e: (e[0], e[1]))
        ]
        tasks = {}
        for key, task in self._tasks.items():
            pending = task._event
            if pending is not None and pending.cancelled:
                pending = None
            tasks[key] = {
                "event": None if pending is None else pending[1],
                "fired": task.fired,
                "period": task.period,
                "until": None if task.until == float("inf") else task.until,
            }
        return {
            "kind": "runtime",
            "clock": self.loop.snapshot_clock(),
            "scheduler": snapshot_scheduler(self.scheduler, table.add),
            "link": self.link.snapshot_state(table.add),
            "events": events,
            "tasks": tasks,
            "components": {
                key: _component_doc(component)
                for key, component in self._components.items()
            },
            "packets": table.to_doc(),
        }

    # -- restore ----------------------------------------------------------

    def _rebind_scheduler(self, scheduler: Any) -> None:
        old = self.scheduler
        self.scheduler = scheduler
        self.link.scheduler = scheduler
        for component in self._components.values():
            if getattr(component, "scheduler", None) is old:
                component.scheduler = scheduler

    def restore_body(self, body: Dict[str, Any]) -> None:
        """Overlay a :meth:`snapshot_body` document onto this fresh context.

        Validation happens up front (key sets, component identities,
        event owners); the mutating phase only starts once the whole
        document has resolved, so a refused restore leaves the fresh
        context untouched except for having never run.
        """
        _check_keys(body, _BODY_KEYS, "runtime snapshot")
        if body["kind"] != "runtime":
            raise SnapshotError(
                f"snapshot kind {body['kind']!r} is not a runtime snapshot",
                reason="bad-format",
            )
        if set(body["components"]) != set(self._components):
            raise SnapshotError(
                "snapshot components do not match the rebuilt context",
                reason="context-mismatch",
                context={
                    "snapshot": sorted(body["components"]),
                    "context": sorted(self._components),
                },
            )
        if set(body["tasks"]) != set(self._tasks):
            raise SnapshotError(
                "snapshot periodic tasks do not match the rebuilt context",
                reason="context-mismatch",
                context={
                    "snapshot": sorted(body["tasks"]),
                    "context": sorted(self._tasks),
                },
            )
        # Component and task docs are shape-checked up front so a refusal
        # cannot land after the mutating phase has started below.
        for key, component in self._components.items():
            cdoc = body["components"][key]
            _check_keys(dict(cdoc), frozenset({"type", "state"}), "component")
            if cdoc["type"] != type(component).__name__:
                raise SnapshotError(
                    f"component type mismatch at {key!r}: snapshot has "
                    f"{cdoc['type']!r}, context has {type(component).__name__!r}",
                    reason="context-mismatch",
                )
        for key in self._tasks:
            _check_keys(
                dict(body["tasks"][key]),
                frozenset({"event", "fired", "period", "until"}),
                "task",
            )
        get_packet = restore_packets(body["packets"])
        scheduler = restore_scheduler(body["scheduler"], get_packet)

        # Resolve every event against the fresh wiring before mutating
        # anything.
        resolvable: Dict[str, Any] = {"link": self.link}
        resolvable.update(self._components)
        for key, task in self._tasks.items():
            resolvable[f"task:{key}"] = task
        events: List[Event] = []
        by_seq: Dict[int, Event] = {}
        clock = body["clock"]
        _check_keys(dict(clock), frozenset({"now", "seq", "processed"}), "clock")
        for edoc in body["events"]:
            _check_keys(
                dict(edoc),
                frozenset({"time", "seq", "owner", "method", "args"}),
                "event",
            )
            owner = resolvable.get(edoc["owner"])
            if owner is None:
                raise SnapshotError(
                    f"event owner {edoc['owner']!r} is not part of the "
                    "rebuilt context",
                    reason="context-mismatch",
                )
            fn = getattr(owner, edoc["method"], None)
            if not callable(fn):
                raise SnapshotError(
                    f"event method {edoc['owner']}.{edoc['method']} does "
                    "not exist on the rebuilt context",
                    reason="unsupported-event",
                )
            args = []
            for tag_value in edoc["args"]:
                tag, value = tag_value
                if tag == "p":
                    args.append(get_packet(value))
                elif tag == "v":
                    args.append(value)
                else:
                    raise SnapshotError(
                        f"unknown event argument tag {tag!r}",
                        reason="unsupported-event",
                    )
            if edoc["seq"] >= clock["seq"]:
                raise SnapshotError(
                    "event sequence number runs ahead of the stored clock",
                    reason="bad-format",
                )
            event = Event((edoc["time"], edoc["seq"], fn, tuple(args)))
            events.append(event)
            if edoc["seq"] in by_seq:
                raise SnapshotError(
                    f"duplicate event sequence number {edoc['seq']}",
                    reason="bad-format",
                )
            by_seq[edoc["seq"]] = event

        def get_event(seq: int) -> Event:
            try:
                return by_seq[seq]
            except KeyError:
                raise SnapshotError(
                    f"snapshot references unknown event seq {seq}",
                    reason="bad-format",
                ) from None

        # -- mutate: everything below only runs on a fully resolved doc.
        self._rebind_scheduler(scheduler)
        self.loop.restore_clock(clock)
        self.loop.adopt_events(events)
        self.link.restore_state(body["link"], get_packet, get_event)
        for key, task in self._tasks.items():
            tdoc = body["tasks"][key]
            _check_keys(
                dict(tdoc), frozenset({"event", "fired", "period", "until"}), "task"
            )
            task.adopt_tick(
                None if tdoc["event"] is None else get_event(tdoc["event"]),
                tdoc["fired"],
                tdoc["period"],
                tdoc["until"],
            )
        for key, component in self._components.items():
            _restore_component(component, body["components"][key])
