"""Scheduler snapshot dispatch.

Every scheduler that supports checkpointing implements the
``snapshot_state`` / ``restore_state`` protocol declared on
:class:`repro.schedulers.base.Scheduler`; this module is just the typed
registry that turns a stored ``type`` tag back into the right class.
The per-scheduler codecs live next to their schedulers -- the split of
what is *stored* versus *re-derived and cross-checked* is scheduler
internals, not persistence policy (see the codec docstrings in
``repro/core/hfsc.py`` and ``repro/schedulers/*.py``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Type

from repro.core.errors import SnapshotError
from repro.core.hfsc import HFSC
from repro.schedulers.base import Scheduler
from repro.schedulers.cbq import CBQScheduler
from repro.schedulers.drr import DRRScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.hls import HLSScheduler
from repro.schedulers.hpfq import HPFQScheduler
from repro.sim.packet import Packet

SCHEDULER_TYPES: Dict[str, Type[Scheduler]] = {
    "HFSC": HFSC,
    "HPFQ": HPFQScheduler,
    "CBQ": CBQScheduler,
    "FIFO": FIFOScheduler,
    "DRR": DRRScheduler,
    "HLS": HLSScheduler,
}


def snapshot_scheduler(
    scheduler: Scheduler, add_packet: Callable[[Packet], int]
) -> Dict[str, Any]:
    """Serialize ``scheduler``; raises for types without a codec."""
    return scheduler.snapshot_state(add_packet)


def restore_scheduler(
    doc: Dict[str, Any], get_packet: Callable[[int], Packet]
) -> Scheduler:
    """Dispatch on the stored ``type`` tag and rebuild the scheduler."""
    if not isinstance(doc, dict) or "type" not in doc:
        raise SnapshotError(
            "scheduler document carries no type tag", reason="bad-format"
        )
    kind = doc["type"]
    cls = SCHEDULER_TYPES.get(kind)
    if cls is None:
        raise SnapshotError(
            f"unknown scheduler type {kind!r} in snapshot",
            reason="unknown-scheduler",
            context={"known": sorted(SCHEDULER_TYPES)},
        )
    return cls.restore_state(doc, get_packet)
