"""Multi-envelope snapshot manifest for the sharded cluster.

A sharded ``repro serve`` run checkpoints as *one snapshot per worker*
(each a normal PR-4 envelope -- versioned, checksummed, atomic) plus one
``manifest.json`` binding them together.  The manifest records what a
resume must agree on before any worker touches an envelope:

* the **placement identity** -- shard count, ring replicas, hash salt --
  because restoring shard 2-of-4's queues into a 5-shard ring would
  scatter restored flows across wrong workers;
* the **aggregate configuration** -- backend and aggregate link rate --
  so the per-shard rate (``link_rate / shards``) is re-derived, never
  guessed;
* each envelope's **stored checksum**, so a swapped or truncated shard
  file is refused at manifest load, before a single worker forks.

The manifest is plain JSON (not an envelope itself): it carries only
pointers and identity, and each pointed-at file self-verifies.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from repro.core.errors import SnapshotError

MANIFEST_FORMAT = "repro-cluster-manifest"
MANIFEST_SCHEMA = 1
MANIFEST_NAME = "manifest.json"

#: Sidecar flock target serializing concurrent per-shard manifest
#: updates (N workers checkpoint on independent cadences).
MANIFEST_LOCK_NAME = "manifest.lock"


def shard_snapshot_name(index: int) -> str:
    return f"shard-{index}.snap"


def _envelope_checksum(path: str) -> str:
    """The stored body checksum of the envelope at ``path``.

    Only the envelope's own claim is read here; the full body-vs-claim
    verification happens when the worker loads its envelope.  The
    manifest pins claim-at-write-time so a later file swap is caught.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            envelope = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SnapshotError(
            f"cannot read shard snapshot {path!r}: {exc}", reason="io-error"
        ) from exc
    checksum = envelope.get("checksum") if isinstance(envelope, dict) else None
    if not isinstance(checksum, str):
        raise SnapshotError(
            f"shard snapshot {path!r} has no envelope checksum",
            reason="bad-format",
        )
    return checksum


def write_manifest(
    directory: str,
    *,
    ring_params: Dict[str, Any],
    backend: str,
    link_rate: float,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Bind the ``shard-<i>.snap`` envelopes in ``directory`` together.

    Every shard the ring names must already have written its envelope;
    a missing one fails the write (a partial cluster checkpoint must
    not look like a complete one).  Returns the manifest path.
    """
    shards = int(ring_params["shards"])
    snapshots: List[Dict[str, Any]] = []
    for index in range(shards):
        name = shard_snapshot_name(index)
        path = os.path.join(directory, name)
        if not os.path.exists(path):
            raise SnapshotError(
                f"shard {index} never wrote its snapshot ({path!r} missing)",
                reason="io-error",
                context={"shard": index, "path": path},
            )
        snapshots.append({
            "shard": index,
            "path": name,
            "checksum": _envelope_checksum(path),
        })
    doc: Dict[str, Any] = {
        "format": MANIFEST_FORMAT,
        "schema": MANIFEST_SCHEMA,
        "ring": dict(ring_params),
        "backend": backend,
        "link_rate": float(link_rate),
        "snapshots": snapshots,
    }
    if extra:
        doc["extra"] = extra
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    _atomic_write_doc(manifest_path, doc)
    return manifest_path


def _atomic_write_doc(manifest_path: str, doc: Dict[str, Any]) -> None:
    tmp = f"{manifest_path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, manifest_path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def update_manifest_shard(
    directory: str,
    index: int,
    *,
    ring_params: Dict[str, Any],
    backend: str,
    link_rate: float,
) -> str:
    """Re-pin one shard's envelope checksum in the manifest, atomically.

    This is the periodic-checkpoint path: each worker snapshots on its
    own cadence and re-binds *only its own* entry, under an ``flock`` on
    a sidecar lock file so concurrent workers never lose each other's
    updates.  The envelope must already be fully written (its checksum
    claim is read here), so the ordering *envelope first, manifest
    second* guarantees every crash window leaves a manifest whose pinned
    checksum matches a real file -- either the fresh envelope or, if the
    crash hit between the snapshot rotation and this update, the
    ``.prev`` rotation target the supervisor falls back to.

    A manifest from a different placement (ring params changed) is
    discarded and rebuilt rather than mixed with stale entries.
    Partially-populated manifests intentionally fail the strict
    :func:`load_manifest` (a partial cluster checkpoint must not look
    complete); they converge to complete after every shard's first
    cadence.
    """
    name = shard_snapshot_name(index)
    path = os.path.join(directory, name)
    checksum = _envelope_checksum(path)
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    lock_path = os.path.join(directory, MANIFEST_LOCK_NAME)
    with open(lock_path, "a") as lock:
        if fcntl is not None:
            fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
        try:
            try:
                with open(manifest_path, encoding="utf-8") as handle:
                    doc = json.load(handle)
            except (OSError, ValueError):
                doc = None
            if (
                not isinstance(doc, dict)
                or doc.get("format") != MANIFEST_FORMAT
                or doc.get("schema") != MANIFEST_SCHEMA
                or doc.get("ring") != dict(ring_params)
            ):
                doc = {
                    "format": MANIFEST_FORMAT,
                    "schema": MANIFEST_SCHEMA,
                    "ring": dict(ring_params),
                    "snapshots": [],
                }
            doc["backend"] = backend
            doc["link_rate"] = float(link_rate)
            snapshots = [
                entry for entry in doc.get("snapshots", [])
                if isinstance(entry, dict) and entry.get("shard") != index
            ]
            snapshots.append({"shard": index, "path": name,
                              "checksum": checksum})
            doc["snapshots"] = sorted(snapshots, key=lambda e: e["shard"])
            _atomic_write_doc(manifest_path, doc)
        finally:
            if fcntl is not None:
                fcntl.flock(lock.fileno(), fcntl.LOCK_UN)
    return manifest_path


def read_manifest_doc(directory: str) -> Optional[Dict[str, Any]]:
    """Best-effort manifest read: no checksum or completeness checks.

    The supervisor uses this to learn which envelope checksum the
    manifest pins for one shard before deciding what a restarted worker
    may resume from; a missing/corrupt/foreign manifest is simply
    ``None`` (the caller then refuses unvouched-for envelopes or starts
    fresh) rather than an error -- restart must never be wedged by a
    torn manifest.  Full-cluster resume keeps the strict
    :func:`load_manifest`.
    """
    if os.path.basename(directory) == MANIFEST_NAME:
        manifest_path = directory
    else:
        manifest_path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict) or doc.get("format") != MANIFEST_FORMAT:
        return None
    return doc


def manifest_entry(
    doc: Optional[Dict[str, Any]], index: int
) -> Optional[Dict[str, Any]]:
    """The snapshot entry for ``index`` in a (lenient) manifest doc."""
    if not isinstance(doc, dict):
        return None
    for entry in doc.get("snapshots") or []:
        if isinstance(entry, dict) and entry.get("shard") == index:
            return entry
    return None


def load_manifest(directory: str) -> Dict[str, Any]:
    """Load and verify a cluster manifest; returns the manifest doc.

    Verifies the manifest's own shape, that every listed envelope still
    exists, and that each envelope's stored checksum matches the one
    pinned at write time.  Each snapshot entry gains an ``abspath`` key
    for the caller.  Full body verification stays with the worker that
    loads the envelope.
    """
    # Accept the snapshot directory or the manifest file itself --
    # `--resume snaps/` and `--resume snaps/manifest.json` mean the same.
    if os.path.basename(directory) == MANIFEST_NAME:
        manifest_path = directory
        directory = os.path.dirname(directory) or "."
    else:
        manifest_path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SnapshotError(
            f"cannot read cluster manifest {manifest_path!r}: {exc}",
            reason="io-error",
        ) from exc
    if not isinstance(doc, dict) or doc.get("format") != MANIFEST_FORMAT:
        raise SnapshotError(
            f"{manifest_path!r} is not a cluster manifest", reason="bad-format"
        )
    if doc.get("schema") != MANIFEST_SCHEMA:
        raise SnapshotError(
            f"cluster manifest schema {doc.get('schema')!r} is not supported "
            f"(this build reads version {MANIFEST_SCHEMA})",
            reason="schema-version",
            context={"stored": doc.get("schema"), "supported": MANIFEST_SCHEMA},
        )
    ring = doc.get("ring")
    snapshots = doc.get("snapshots")
    if not isinstance(ring, dict) or not isinstance(snapshots, list):
        raise SnapshotError(
            "cluster manifest is missing 'ring' or 'snapshots'",
            reason="missing-field",
        )
    if len(snapshots) != int(ring.get("shards", -1)):
        raise SnapshotError(
            f"cluster manifest lists {len(snapshots)} snapshots for "
            f"{ring.get('shards')!r} shards",
            reason="bad-format",
        )
    for entry in snapshots:
        path = os.path.join(directory, entry["path"])
        stored = entry.get("checksum")
        actual = _envelope_checksum(path)
        if stored != actual:
            raise SnapshotError(
                f"shard {entry.get('shard')} snapshot changed since the "
                f"manifest was written",
                reason="checksum-mismatch",
                context={"path": path, "stored": stored, "computed": actual},
            )
        entry["abspath"] = path
    return doc
