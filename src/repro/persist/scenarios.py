"""Checkpointable reference scenarios.

These are the *setup* halves of the golden-schedule scenarios in
``tests/golden_scenarios.py``: each drive-based setup returns the
``(scheduler, arrivals, until)`` triple that
:func:`repro.sim.drive.drive` (or the resumable
:class:`repro.persist.harness.DriveRun`) consumes, and the event-driven
scenario returns a fully wired :class:`~repro.persist.runtime.RunContext`.
The golden tests import these setups, so the workloads whose digests are
pinned in ``tests/golden/golden_schedules.json`` and the workloads the
crash/resume oracle replays are **the same objects** -- crash-equivalence
is asserted against exactly the schedules the seed implementation pinned.

Living in ``src`` (not ``tests``) keeps the dependency direction clean:
the ``repro run --checkpoint-every/--resume`` CLI runs these scenarios
without importing the test tree.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.core.curves import ServiceCurve
from repro.core.hfsc import HFSC
from repro.persist.runtime import RunContext
from repro.schedulers.drr import DRRScheduler
from repro.schedulers.hls import HLSScheduler
from repro.sim.drive import Arrival
from repro.sim.engine import EventLoop
from repro.sim.link import Link
from repro.sim.sources import CBRSource, PoissonSource
from repro.sim.trace import TraceRecorder
from repro.util.rng import make_rng

lin = ServiceCurve.linear

DriveSetup = Tuple[Any, List[Arrival], float]


def _cbr(arrivals: List[Arrival], cid: Any, rate: float, size: float,
         start: float, stop: float) -> None:
    interval = size / rate
    t = start
    while t < stop:
        arrivals.append((t, cid, size))
        t += interval


def e4_phases_setup(backend: str) -> DriveSetup:
    """The Fig. 1 CMU / U.Pitt hierarchy through three activity phases."""
    link = 1_250_000.0
    tree = [
        ("cmu", None, 25.0 / 45.0),
        ("pitt", None, 20.0 / 45.0),
        ("cmu.av", "cmu", 12.0 / 45.0),
        ("cmu.data", "cmu", 12.9 / 45.0),
        ("pitt.av", "pitt", 12.2 / 45.0),
        ("pitt.data", "pitt", 7.7 / 45.0),
    ]
    leaves = {"cmu.av", "cmu.data", "pitt.av", "pitt.data"}
    sched = HFSC(link, eligible_backend=backend)
    for name, parent, frac in tree:
        curve = lin(frac * link)
        if name in leaves:
            sched.add_class(name, parent=parent or "__root__", sc=curve)
        else:
            sched.add_class(name, parent=parent or "__root__", ls_sc=curve)
    arrivals: List[Arrival] = []
    _cbr(arrivals, "cmu.av", 1.05 * 12.0 / 45.0 * link, 1000.0, 0.0, 3.0)
    _cbr(arrivals, "cmu.av", 1.05 * 25.0 / 45.0 * link, 1000.0, 3.0, 6.0)
    _cbr(arrivals, "cmu.data", 1.05 * 12.9 / 45.0 * link, 1000.0, 0.0, 3.0)
    _cbr(arrivals, "pitt.av", 1.05 * 12.2 / 45.0 * link, 1000.0, 0.0, 6.0)
    _cbr(arrivals, "pitt.av", 1.05 * 12.2 / 20.0 * link, 1000.0, 6.0, 8.0)
    _cbr(arrivals, "pitt.data", 1.05 * 7.7 / 45.0 * link, 1000.0, 0.0, 6.0)
    _cbr(arrivals, "pitt.data", 1.05 * 7.7 / 20.0 * link, 1000.0, 6.0, 8.0)
    return sched, arrivals, 8.0


def e5_decoupling_setup(backend: str) -> DriveSetup:
    """Audio + video + greedy ftp with concave curves (the E5 workload)."""
    link = 1_250_000.0
    audio_sc = ServiceCurve.from_delay(160.0, 0.005, 8_000.0)
    video_sc = ServiceCurve.from_delay(8_000.0, 0.010, 125_000.0)
    sched = HFSC(link, eligible_backend=backend)
    sched.add_class("audio", sc=audio_sc)
    sched.add_class("video", sc=video_sc)
    sched.add_class(
        "ftp",
        rt_sc=lin(link - audio_sc.m1 - video_sc.m1 - 10_000.0),
        ls_sc=lin(link - 8_000.0 - 125_000.0),
    )
    arrivals: List[Arrival] = []
    _cbr(arrivals, "audio", 8_000.0, 160.0, 0.0, 4.0)
    t = 0.0
    while t < 4.0:
        for _ in range(8):
            arrivals.append((t, "video", 1000.0))
        t += 1.0 / 15.0
    arrivals += [(0.0, "ftp", 1500.0)] * int(link * 4.0 / 1500.0)
    return sched, arrivals, 6.0


def ul_caps_setup(backend: str) -> DriveSetup:
    """Upper-limited classes among plain siblings (non-work-conserving)."""
    link = 100_000.0
    sched = HFSC(link, admission_control=False, eligible_backend=backend)
    sched.add_class("agency", ls_sc=lin(0.61 * link))
    sched.add_class("rest", ls_sc=lin(0.39 * link))
    sched.add_class("a.capped", parent="agency", ls_sc=lin(0.31 * link),
                    ul_sc=ServiceCurve(0.22 * link, 0.13, 0.11 * link))
    sched.add_class("a.free", parent="agency", ls_sc=lin(0.29 * link))
    sched.add_class("r.capped", parent="rest", ls_sc=lin(0.23 * link),
                    ul_sc=lin(0.07 * link))
    sched.add_class("r.free", parent="rest", ls_sc=lin(0.17 * link))
    arrivals: List[Arrival] = []
    _cbr(arrivals, "a.capped", 0.41 * link, 500.0, 0.000, 6.0)
    _cbr(arrivals, "a.free", 0.37 * link, 700.0, 0.011, 6.0)
    _cbr(arrivals, "r.capped", 0.29 * link, 300.0, 0.023, 6.0)
    _cbr(arrivals, "r.free", 0.31 * link, 900.0, 0.037, 3.0)
    # A late second burst after everything drains: reactivation paths.
    _cbr(arrivals, "r.free", 0.83 * link, 900.0, 8.0, 9.0)
    _cbr(arrivals, "a.capped", 0.47 * link, 500.0, 8.3, 9.0)
    return sched, arrivals, 14.0


def rt_only_setup(backend: str) -> DriveSetup:
    """Real-time-only leaves: the scheduler declines while ineligible."""
    link = 10_000.0
    sched = HFSC(link, admission_control=False, eligible_backend=backend)
    sched.add_class("slow", rt_sc=ServiceCurve(0.0, 0.07, 1_100.0))
    sched.add_class("fast", rt_sc=ServiceCurve(2_900.0, 0.05, 1_300.0))
    sched.add_class("bulk", sc=lin(3_700.0))
    arrivals: List[Arrival] = []
    _cbr(arrivals, "slow", 1_500.0, 250.0, 0.0, 4.0)
    _cbr(arrivals, "fast", 1_700.0, 410.0, 0.005, 4.0)
    _cbr(arrivals, "bulk", 5_100.0, 730.0, 0.013, 2.0)
    return sched, arrivals, 8.0


def hls_campus_setup(backend: str) -> DriveSetup:
    """The Fig. 1 campus tree on the HLS round-robin backend.

    ``backend`` selects the H-FSC eligible-set implementation and does
    not apply to HLS; the crash matrix still sweeps it, which pins that
    the HLS schedule is backend-independent (all three digests equal).
    The workload replays the e4 phase structure plus a full drain and a
    late re-activation burst, so the crash points land on ring joins,
    rotations and departures alike.
    """
    link = 1_250_000.0
    tree = [
        ("cmu", None, 25.0),
        ("pitt", None, 20.0),
        ("cmu.av", "cmu", 12.0),
        ("cmu.data", "cmu", 12.9),
        ("pitt.av", "pitt", 12.2),
        ("pitt.data", "pitt", 7.7),
    ]
    sched = HLSScheduler(link)
    for name, parent, weight in tree:
        sched.add_class(name, parent=parent or "__root__", rate=weight)
    arrivals: List[Arrival] = []
    _cbr(arrivals, "cmu.av", 1.05 * 12.0 / 45.0 * link, 1000.0, 0.0, 3.0)
    _cbr(arrivals, "cmu.av", 1.05 * 25.0 / 45.0 * link, 1000.0, 3.0, 6.0)
    _cbr(arrivals, "cmu.data", 1.05 * 12.9 / 45.0 * link, 640.0, 0.0, 3.0)
    _cbr(arrivals, "pitt.av", 1.05 * 12.2 / 45.0 * link, 1000.0, 0.0, 6.0)
    _cbr(arrivals, "pitt.data", 1.05 * 7.7 / 45.0 * link, 300.0, 0.0, 6.0)
    # Drain, then a two-leaf reactivation burst: fresh ring joins late in
    # the run, which is where restored rotation state would go wrong.
    _cbr(arrivals, "cmu.data", 0.9 * link, 640.0, 7.0, 7.5)
    _cbr(arrivals, "pitt.av", 0.4 * link, 1000.0, 7.1, 7.6)
    return sched, arrivals, 9.0


def drr_leaves_setup(backend: str) -> DriveSetup:
    """Skewed-quanta DRR over the e4 leaves (flat; ``backend`` ignored).

    Mixed packet sizes against skewed quanta exercise the
    deficit-carrying path (head does not fit, flow yields with balance)
    -- the state the DRR codec must round-trip exactly.
    """
    link = 1_250_000.0
    sched = DRRScheduler(link)
    for flow, quantum in (
        ("cmu.av", 3000.0),
        ("cmu.data", 4500.0),
        ("pitt.av", 1500.0),
        ("pitt.data", 1000.0),
    ):
        sched.add_flow(flow, quantum=quantum)
    arrivals: List[Arrival] = []
    _cbr(arrivals, "cmu.av", 0.45 * link, 1400.0, 0.0, 4.0)
    _cbr(arrivals, "cmu.data", 0.55 * link, 900.0, 0.013, 4.0)
    _cbr(arrivals, "pitt.av", 0.25 * link, 1200.0, 0.007, 4.0)
    _cbr(arrivals, "pitt.data", 0.15 * link, 500.0, 0.019, 4.0)
    # Late single-flow burst after the backlog clears: ring re-entry.
    _cbr(arrivals, "pitt.data", 0.8 * link, 500.0, 6.5, 7.0)
    return sched, arrivals, 8.0


def eventloop_mixed_context(backend: str) -> Tuple[RunContext, float]:
    """Full event-driven run: EventLoop + Link + stochastic sources.

    Every component that owns pending events or accumulates state is
    registered on the returned context, so the run can be checkpointed
    at any event index and restored into a fresh call of this builder.
    """
    loop = EventLoop()
    link_rate = 50_000.0
    sched = HFSC(link_rate, admission_control=False, eligible_backend=backend)
    sched.add_class("voice", sc=ServiceCurve.from_delay(120.0, 0.004, 6_100.0))
    sched.add_class("video", sc=ServiceCurve(23_000.0, 0.017, 11_000.0))
    sched.add_class("data", rt_sc=ServiceCurve(0.0, 0.03, 7_900.0),
                    ls_sc=lin(29_000.0))
    link = Link(loop, sched)
    ctx = RunContext(loop, link)
    ctx.register("recorder", TraceRecorder(link))
    ctx.register("src.voice", CBRSource(
        loop, link, "voice", rate=6_100.0, packet_size=122.0, stop=5.0))
    ctx.register("src.video", PoissonSource(
        loop, link, "video", rate=13_000.0, packet_size=640.0,
        rng=make_rng(42, "video"), stop=5.0))
    ctx.register("src.data", PoissonSource(
        loop, link, "data", rate=31_000.0, packet_size=970.0,
        rng=make_rng(42, "data"), stop=5.0))
    return ctx, 9.0


#: Drive-based checkpointable scenarios (name -> setup).
DRIVE_SETUPS: Dict[str, Callable[[str], DriveSetup]] = {
    "e4_phases": e4_phases_setup,
    "e5_decoupling": e5_decoupling_setup,
    "ul_caps": ul_caps_setup,
    "rt_only": rt_only_setup,
    "hls_campus": hls_campus_setup,
    "drr_leaves": drr_leaves_setup,
}

#: Event-driven checkpointable scenarios (name -> context builder).
RUNTIME_SETUPS: Dict[str, Callable[[str], Tuple[RunContext, float]]] = {
    "eventloop_mixed": eventloop_mixed_context,
}
