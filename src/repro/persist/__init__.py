"""Crash-safe checkpoint/restore with deterministic resume.

Public surface:

* :mod:`repro.persist.codec` -- versioned, checksummed snapshot
  envelope; packet table; atomic file IO;
* :mod:`repro.persist.schedulers` -- scheduler codec dispatch (H-FSC,
  H-PFQ, CBQ, FIFO, DRR);
* :mod:`repro.persist.runtime` -- :class:`RunContext`, whole-simulation
  snapshot/restore (event loop, link, sources, collectors, RNG streams);
* :mod:`repro.persist.manifest` -- the multi-envelope manifest binding a
  sharded cluster's per-worker snapshots together;
* :mod:`repro.persist.harness` -- crash-injection harness and the
  crash-equivalence oracle;
* :mod:`repro.persist.scenarios` -- the checkpointable reference
  scenarios shared with the golden-schedule tests.

Attribute access is lazy (PEP 562) so importing ``repro.persist`` from
core modules can never create an import cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "FORMAT": "repro.persist.codec",
    "SCHEMA_VERSION": "repro.persist.codec",
    "PacketTable": "repro.persist.codec",
    "body_checksum": "repro.persist.codec",
    "dumps_snapshot": "repro.persist.codec",
    "loads_snapshot": "repro.persist.codec",
    "save_snapshot": "repro.persist.codec",
    "load_snapshot": "repro.persist.codec",
    "restore_packets": "repro.persist.codec",
    "SCHEDULER_TYPES": "repro.persist.schedulers",
    "snapshot_scheduler": "repro.persist.schedulers",
    "restore_scheduler": "repro.persist.schedulers",
    "MANIFEST_NAME": "repro.persist.manifest",
    "shard_snapshot_name": "repro.persist.manifest",
    "write_manifest": "repro.persist.manifest",
    "load_manifest": "repro.persist.manifest",
    "RunContext": "repro.persist.runtime",
    "DriveRun": "repro.persist.harness",
    "SignalCheckpointRequest": "repro.persist.harness",
    "run_checkpointed": "repro.persist.harness",
    "schedule_digest": "repro.persist.harness",
    "crash_and_resume_drive": "repro.persist.harness",
    "crash_and_resume_runtime": "repro.persist.harness",
    "drive_rows": "repro.persist.harness",
    "runtime_rows": "repro.persist.harness",
    "DRIVE_SETUPS": "repro.persist.scenarios",
    "RUNTIME_SETUPS": "repro.persist.scenarios",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.persist' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return __all__
