"""H-PFQ: hierarchical packet fair queueing (Bennett & Zhang, ref. [3]).

The paper's main comparator: a class hierarchy where **every node is a PFQ
server** treating its children as sessions.  We use WF2Q+ as the node
algorithm (the choice reference [3] recommends, and the one whose fairness
makes hierarchical composition accurate).

Contrast with H-FSC (Section IV-A of the paper):

* H-PFQ supports only **linear** service curves (rates), so delay is
  coupled to bandwidth;
* scheduling is purely hierarchical -- the selection recurses from the
  root, so a leaf's delay bound **grows with its depth**, whereas H-FSC's
  real-time criterion looks at leaves directly (experiment E7).

Implementation notes.  Each class is simultaneously a *session* at its
parent node (with WF2Q+ start/finish tags) and a *server node* for its own
children.  A session's packet length at an interior node is the length of
the packet its subtree would transmit next; tags are recomputed whenever
that head packet changes (after each service, and on arrivals that change
a subtree head), mirroring the deadline update of H-FSC's Fig. 5(b).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError, SnapshotError
from repro.schedulers.base import Scheduler
from repro.sim.packet import Packet
from repro.util.heap import IndexedHeap

ROOT = "__root__"


class HPFQClass:
    """A node of the H-PFQ tree (session at its parent, server for children)."""

    __slots__ = (
        "name",
        "parent",
        "children",
        "rate",
        "queue",
        "backlog_count",
        "start",
        "finish",
        "last_finish",
        "tagged_size",
        "backlogged",
        "vtime",
        "waiting",
        "eligible",
        "bytes_served",
    )

    def __init__(self, name: Any, parent: Optional["HPFQClass"], rate: float):
        self.name = name
        self.parent = parent
        self.children: List["HPFQClass"] = []
        self.rate = rate
        self.queue: Deque[Packet] = deque()
        self.backlog_count = 0  # packets queued anywhere in this subtree
        # Session state at the parent node.
        self.start = 0.0
        self.finish = 0.0
        self.last_finish = 0.0
        self.tagged_size = 0.0
        self.backlogged = False
        # Server state for the children.
        self.vtime = 0.0
        self.waiting: IndexedHeap["HPFQClass"] = IndexedHeap()
        self.eligible: IndexedHeap["HPFQClass"] = IndexedHeap()
        self.bytes_served = 0.0

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def depth(self) -> int:
        node, depth = self, 0
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def __repr__(self) -> str:
        return f"HPFQClass({self.name!r})"


class HPFQScheduler(Scheduler):
    """Hierarchy of PFQ servers.

    ``node_policy`` selects the per-node packet fair queueing algorithm:

    * ``"wf2q"`` (default) -- WF2Q+: SEFF, smallest finish tag among
      children whose start tag has been reached (the accurate choice the
      H-PFQ paper [3] recommends, H-WF2Q+);
    * ``"sfq"`` -- start-time fair queueing: smallest start tag,
      no eligibility gate (cheaper, looser delay; H-SFQ).
    """

    def __init__(self, link_rate: float, node_policy: str = "wf2q"):
        super().__init__(link_rate)
        if node_policy not in ("wf2q", "sfq"):
            raise ConfigurationError(f"unknown node_policy: {node_policy!r}")
        self.node_policy = node_policy
        self.root = HPFQClass(ROOT, None, link_rate)
        self._classes: Dict[Any, HPFQClass] = {ROOT: self.root}

    # -- hierarchy construction ---------------------------------------------

    def add_class(self, name: Any, parent: Any = ROOT, rate: float = 0.0) -> HPFQClass:
        if name in self._classes:
            raise ConfigurationError(f"duplicate class name: {name!r}")
        if rate <= 0:
            raise ConfigurationError(f"class {name!r} needs a positive rate")
        try:
            parent_cls = self._classes[parent]
        except KeyError:
            raise ConfigurationError(f"unknown parent class: {parent!r}") from None
        if parent_cls.queue:
            raise ConfigurationError(
                f"cannot add child to {parent!r}: it has queued packets"
            )
        cls = HPFQClass(name, parent_cls, rate)
        parent_cls.children.append(cls)
        self._classes[name] = cls
        return cls

    def __getitem__(self, name: Any) -> HPFQClass:
        return self._classes[name]

    # -- scheduler interface ---------------------------------------------------

    def enqueue(self, packet: Packet, now: float) -> None:
        try:
            leaf = self._classes[packet.class_id]
        except KeyError:
            raise ConfigurationError(
                f"packet for unknown class {packet.class_id!r}"
            ) from None
        if not leaf.is_leaf or leaf.is_root:
            raise ConfigurationError(
                f"packets may only be queued on leaf classes, not {leaf.name!r}"
            )
        self._note_enqueue(packet, now)
        leaf.queue.append(packet)
        node: Optional[HPFQClass] = leaf
        while node is not None:
            node.backlog_count += 1
            node = node.parent
        self._propagate_backlog(leaf)

    def dequeue(self, now: float) -> Optional[Packet]:
        if self.root.backlog_count == 0:
            return None
        # Top-down selection: at every node, SEFF among the children.
        path: List[Tuple[HPFQClass, HPFQClass]] = []
        node = self.root
        while not node.is_leaf:
            child = self._select(node)
            path.append((node, child))
            node = child
        leaf = node
        packet = leaf.queue.popleft()
        self._note_dequeue(packet, now)
        walker: Optional[HPFQClass] = leaf
        while walker is not None:
            walker.backlog_count -= 1
            walker.bytes_served += packet.size
            walker = walker.parent
        # Bottom-up tag updates so that each parent retags with the child's
        # *new* next-packet length.
        for parent, child in reversed(path):
            self._remove_session(parent, child)
            child.last_finish = child.finish
            parent.vtime += packet.size / parent.rate
            if child.backlog_count > 0:
                self._tag_session(parent, child, chained=True)
            else:
                child.backlogged = False
        return packet

    # -- measurement hooks -------------------------------------------------------

    def work_of(self, name: Any) -> float:
        """Total bytes transmitted from the subtree rooted at ``name``."""
        return self._classes[name].bytes_served

    # -- snapshot/restore (repro.persist) -----------------------------------
    #
    # Stored: per-class WF2Q+ tags, node virtual times, queues and which
    # heap each backlogged child sits in (the lazy ``_promote`` split of
    # waiting vs eligible is genuine history -- it cannot be re-derived
    # from the tags alone).  Re-derived and validated: ``backlog_count``
    # and the backlogged flags, from the restored queues.

    def _node_doc(self, cls: HPFQClass) -> Dict[str, Any]:
        return {
            "vtime": cls.vtime,
            "bytes_served": cls.bytes_served,
            "backlog_count": cls.backlog_count,
            # Insertion order (see IndexedHeap.iter_insertion): re-pushing
            # in this order preserves how future exact-key ties will break.
            "waiting_order": [
                child.name for child in cls.waiting.iter_insertion()
            ],
            "eligible_order": [
                child.name for child in cls.eligible.iter_insertion()
            ],
        }

    def snapshot_state(self, add_packet: Callable[[Packet], int]) -> Dict[str, Any]:
        classes = []
        for cls in self._classes.values():
            if cls.is_root:
                continue
            in_waiting = cls in cls.parent.waiting
            in_eligible = cls in cls.parent.eligible
            classes.append({
                "name": cls.name,
                "parent": cls.parent.name,
                "rate": cls.rate,
                "queue": [add_packet(p) for p in cls.queue],
                "start": cls.start,
                "finish": cls.finish,
                "last_finish": cls.last_finish,
                "tagged_size": cls.tagged_size,
                "backlogged": cls.backlogged,
                "heap": (
                    "waiting" if in_waiting
                    else "eligible" if in_eligible
                    else None
                ),
                "node": self._node_doc(cls),
            })
        return {
            "type": "HPFQ",
            "config": {
                "link_rate": self.link_rate,
                "node_policy": self.node_policy,
            },
            "counters": self._counters_doc(),
            "root": self._node_doc(self.root),
            "classes": classes,
        }

    _CLASS_DOC_KEYS = frozenset((
        "name", "parent", "rate", "queue", "start", "finish", "last_finish",
        "tagged_size", "backlogged", "heap", "node",
    ))
    _NODE_DOC_KEYS = frozenset((
        "vtime", "bytes_served", "backlog_count", "waiting_order",
        "eligible_order",
    ))

    @classmethod
    def restore_state(
        cls, doc: Dict[str, Any], get_packet: Callable[[int], Packet]
    ) -> "HPFQScheduler":
        def check_keys(mapping, keys, what):
            if not isinstance(mapping, dict) or set(mapping) != set(keys):
                raise SnapshotError(
                    f"{what}: malformed document (fields "
                    f"{sorted(map(str, mapping)) if isinstance(mapping, dict) else mapping!r})",
                    reason="unknown-field",
                )

        check_keys(doc, ("type", "config", "counters", "root", "classes"),
                   "HPFQ snapshot")
        if doc["type"] != "HPFQ":
            raise SnapshotError(
                f"scheduler type mismatch: expected 'HPFQ', got {doc['type']!r}",
                reason="scheduler-type",
            )
        config = doc["config"]
        check_keys(config, ("link_rate", "node_policy"), "HPFQ config")
        try:
            sched = cls(config["link_rate"], node_policy=config["node_policy"])
        except (ConfigurationError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot carries an invalid configuration: {exc}",
                reason="bad-config",
            ) from exc
        node_docs: Dict[Any, Dict[str, Any]] = {}
        for cdoc in doc["classes"]:
            check_keys(cdoc, cls._CLASS_DOC_KEYS, f"class {cdoc.get('name')!r}")
            check_keys(cdoc["node"], cls._NODE_DOC_KEYS,
                       f"class {cdoc.get('name')!r} node")
            try:
                node = sched.add_class(cdoc["name"], parent=cdoc["parent"],
                                       rate=cdoc["rate"])
            except ConfigurationError as exc:
                raise SnapshotError(
                    f"snapshot hierarchy is not constructible: {exc}",
                    reason="bad-hierarchy",
                ) from exc
            node.queue.extend(get_packet(uid) for uid in cdoc["queue"])
            node.start = cdoc["start"]
            node.finish = cdoc["finish"]
            node.last_finish = cdoc["last_finish"]
            node.tagged_size = cdoc["tagged_size"]
            node.vtime = cdoc["node"]["vtime"]
            node.bytes_served = cdoc["node"]["bytes_served"]
            node_docs[node.name] = cdoc
        check_keys(doc["root"], cls._NODE_DOC_KEYS, "HPFQ root")
        sched.root.vtime = doc["root"]["vtime"]
        sched.root.bytes_served = doc["root"]["bytes_served"]
        # Re-derive backlog counts / flags from the queues; validate the
        # stored values and rebuild each node's heaps in stored order.
        derived: Dict[Any, int] = {}
        for node in reversed(list(sched._classes.values())):
            count = len(node.queue) + sum(
                derived[child.name] for child in node.children
            )
            derived[node.name] = count
            stored = (doc["root"]["backlog_count"] if node.is_root
                      else node_docs[node.name]["node"]["backlog_count"])
            if stored != count:
                raise SnapshotError(
                    f"stored backlog_count of {node.name!r} disagrees with "
                    "the restored queues",
                    reason="backlog-mismatch",
                    context={"class": str(node.name), "stored": stored,
                             "derived": count},
                )
            node.backlog_count = count
            if not node.is_root:
                cdoc = node_docs[node.name]
                backlogged = count > 0
                if cdoc["backlogged"] != backlogged or (
                    (cdoc["heap"] is not None) != backlogged
                ):
                    raise SnapshotError(
                        f"stored backlog flags of {node.name!r} disagree with "
                        "the restored queues",
                        reason="backlog-mismatch",
                        context={"class": str(node.name)},
                    )
                node.backlogged = backlogged
        for node in sched._classes.values():
            ndoc = (doc["root"] if node.is_root else node_docs[node.name]["node"])
            members = set(ndoc["waiting_order"]) | set(ndoc["eligible_order"])
            expected = {c.name for c in node.children if c.backlogged}
            if members != expected or (
                len(ndoc["waiting_order"]) + len(ndoc["eligible_order"])
                != len(expected)
            ):
                raise SnapshotError(
                    f"stored heap orders of {node.name!r} disagree with the "
                    "re-derived backlogged children",
                    reason="heap-mismatch",
                    context={"class": str(node.name)},
                )
            for name in ndoc["waiting_order"]:
                child = sched._classes[name]
                if node_docs[name]["heap"] != "waiting":
                    raise SnapshotError(
                        f"class {name!r} heap tag disagrees with its parent's "
                        "waiting order",
                        reason="heap-mismatch",
                    )
                node.waiting.push(child, child.start)
            for name in ndoc["eligible_order"]:
                child = sched._classes[name]
                if node_docs[name]["heap"] != "eligible":
                    raise SnapshotError(
                        f"class {name!r} heap tag disagrees with its parent's "
                        "eligible order",
                        reason="heap-mismatch",
                    )
                node.eligible.push(child, child.finish)
        sched._backlog_packets = sched.root.backlog_count
        sched._backlog_bytes = sum(
            p.size
            for node in sched._classes.values()
            for p in node.queue
        )
        sched._restore_counters(doc["counters"])
        return sched

    # -- internals ----------------------------------------------------------------

    def _next_size(self, cls: HPFQClass) -> float:
        """Length of the packet this subtree would transmit next."""
        node = cls
        while not node.is_leaf:
            node = self._select(node)
        return node.queue[0].size

    def _select(self, node: HPFQClass) -> HPFQClass:
        """Child choice among the node's backlogged children.

        WF2Q+ nodes: SEFF with the virtual time floor.  SFQ nodes: the
        smallest start tag wins outright (children are kept in ``waiting``
        keyed by start; the ``eligible`` heap is unused).
        """
        if self.node_policy == "sfq":
            child = node.waiting.peek_item()
            node.vtime = child.start
            return child
        self._promote(node)
        if not node.eligible:
            # Virtual time floor: V = max(V, min start among backlogged).
            node.vtime = node.waiting.peek_key()
            self._promote(node)
        return node.eligible.peek_item()

    def _promote(self, node: HPFQClass) -> None:
        while node.waiting:
            child, start = node.waiting.peek()
            if start > node.vtime:
                break
            node.waiting.pop()
            node.eligible.push(child, child.finish)

    def _tag_session(self, parent: HPFQClass, child: HPFQClass, chained: bool) -> None:
        size = self._next_size(child)
        if chained:
            child.start = child.last_finish
        else:
            child.start = max(parent.vtime, child.last_finish)
        child.finish = child.start + size / child.rate
        child.tagged_size = size
        child.backlogged = True
        if self.node_policy == "sfq":
            parent.waiting.push(child, child.start)
        elif child.start <= parent.vtime:
            parent.eligible.push(child, child.finish)
        else:
            parent.waiting.push(child, child.start)

    def _remove_session(self, parent: HPFQClass, child: HPFQClass) -> None:
        if child in parent.eligible:
            parent.eligible.remove(child)
        else:
            parent.waiting.remove(child)

    def _propagate_backlog(self, leaf: HPFQClass) -> None:
        """After an arrival: activate newly backlogged ancestors, refresh tags.

        Walking from the leaf towards the root: a child that was idle gets
        fresh tags at its parent; a child that was already backlogged may
        have a new subtree head (the arrival pre-empted the old head in the
        child's own ordering), in which case only its finish tag is
        recomputed, as in H-FSC's Fig. 5(b) deadline update.
        """
        node = leaf
        while not node.is_root:
            parent = node.parent
            assert parent is not None
            if not node.backlogged:
                self._tag_session(parent, node, chained=False)
                node = parent
                continue
            size = self._next_size(node)
            if size != node.tagged_size:
                node.finish = node.start + size / node.rate
                node.tagged_size = size
                if node in parent.eligible:
                    parent.eligible.update(node, node.finish)
                # SFQ nodes key on the (unchanged) start tag: nothing to do.
            # The parent was already backlogged (it had this active child);
            # ancestors can still see a head change, so continue walking.
            node = parent
