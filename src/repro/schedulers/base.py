"""The scheduler interface the simulator's link drives.

A scheduler is a passive object: the link calls ``enqueue`` when a packet
arrives and ``dequeue`` whenever the output becomes free.  Schedulers never
interact with the event loop directly, which keeps every algorithm unit
testable by hand-feeding it packets and times.

Work-conserving schedulers (everything in this library except a class with
an upper-limit curve) must return a packet from ``dequeue`` whenever their
backlog is non-empty.  Non-work-conserving behaviour is expressed by
returning ``None`` together with a ``next_ready_time`` hint so the link can
re-poll at the right moment.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.core.errors import SnapshotError
from repro.obs.core import TELEMETRY as _TELEM
from repro.sim.packet import Packet


class Scheduler(ABC):
    """Abstract base class for output-link packet schedulers."""

    def __init__(self, link_rate: float):
        if link_rate <= 0:
            raise ValueError("link rate must be positive")
        self.link_rate = float(link_rate)
        self._backlog_packets = 0
        self._backlog_bytes = 0.0
        self.total_enqueued = 0
        self.total_dequeued = 0
        # Packets handed back to the caller without being served (forced
        # class removal under live reconfiguration).  Packet conservation:
        # total_enqueued == total_dequeued + total_returned + backlog.
        self.total_returned = 0

    # -- interface ----------------------------------------------------------

    @abstractmethod
    def enqueue(self, packet: Packet, now: float) -> None:
        """Accept ``packet`` at time ``now``."""

    @abstractmethod
    def dequeue(self, now: float) -> Optional[Packet]:
        """Select the next packet to transmit at time ``now``."""

    def next_ready_time(self, now: float) -> Optional[float]:
        """Earliest time a packet may become transmittable.

        Only meaningful when ``dequeue`` returned ``None`` while backlogged
        (non-work-conserving schedulers).  ``None`` means "whenever the next
        packet arrives".
        """
        return None

    # -- batched hot path -----------------------------------------------------
    #
    # The batch calls are the amortized entry points of the serving and
    # bench hot paths: one Python call carries many packets, so method
    # dispatch, telemetry guards and counter updates are paid per batch
    # instead of per packet.  They are *semantically* defined as the
    # per-packet loop below -- an override may hoist and inline, but must
    # stay call-for-call equivalent (same per-packet accounting, same
    # telemetry events in the same order, same error behaviour), which the
    # golden-schedule digest suite enforces.

    def enqueue_batch(self, packets: Iterable[Packet], now: float) -> None:
        """Accept several packets that all arrive at the same instant.

        Equivalent to calling :meth:`enqueue` once per packet in order.
        An exception from one packet (admission control) propagates with
        the earlier packets already enqueued, exactly as a caller's own
        per-packet loop would leave them.
        """
        enqueue = self.enqueue
        for packet in packets:
            enqueue(packet, now)

    def dequeue_batch(self, now: float, max_packets: int) -> List[Packet]:
        """Select up to ``max_packets`` back-to-back at the same instant.

        Equivalent to calling :meth:`dequeue` repeatedly at ``now`` until
        it declines (``None``) or the budget is spent; returns the packets
        in selection order (possibly empty).  Note the clock does not
        advance between selections -- this is the burst-serve primitive
        for callers that account transmission time themselves.
        """
        served: List[Packet] = []
        if max_packets > 0:
            dequeue = self.dequeue
            append = served.append
            while len(served) < max_packets:
                packet = dequeue(now)
                if packet is None:
                    break
                append(packet)
        return served

    # -- snapshot/restore protocol (repro.persist) ---------------------------

    def snapshot_state(self, add_packet: Callable[[Packet], int]) -> Dict[str, Any]:
        """Serialize full runtime state to a JSON-able document.

        ``add_packet`` interns queued packets into the snapshot's shared
        packet table and returns their ids.  Schedulers that keep
        cross-packet state must override this (H-FSC, H-PFQ, CBQ, FIFO
        and DRR do); the default refuses with a structured error rather
        than silently dropping state.
        """
        raise SnapshotError(
            f"scheduler {type(self).__name__} does not support snapshots",
            reason="unsupported-scheduler",
            context={"scheduler": type(self).__name__},
        )

    @classmethod
    def restore_state(
        cls, doc: Dict[str, Any], get_packet: Callable[[int], Packet]
    ) -> "Scheduler":
        """Build a fresh scheduler from :meth:`snapshot_state` output.

        Restores are atomic: implementations construct and validate a new
        instance and only return it on success, so a failed restore
        leaves no half-applied state anywhere.
        """
        raise SnapshotError(
            f"scheduler {cls.__name__} does not support snapshots",
            reason="unsupported-scheduler",
            context={"scheduler": cls.__name__},
        )

    def _counters_doc(self) -> Dict[str, Any]:
        """The base-class conservation counters, for subclass snapshots."""
        return {
            "backlog_packets": self._backlog_packets,
            "backlog_bytes": self._backlog_bytes,
            "enqueued": self.total_enqueued,
            "dequeued": self.total_dequeued,
            "returned": self.total_returned,
        }

    def _restore_counters(self, doc: Dict[str, Any]) -> None:
        """Load counters saved by :meth:`_counters_doc`, cross-validated.

        The stored backlog must equal what the restored queues actually
        hold -- a mismatch means the document lies about its own state.
        """
        expected = set(self._counters_doc())
        if set(doc) != expected:
            raise SnapshotError(
                f"malformed counters document: {sorted(map(str, doc))}",
                reason="unknown-field",
            )
        if self._backlog_packets != doc["backlog_packets"] or (
            abs(self._backlog_bytes - doc["backlog_bytes"]) > 1e-6
        ):
            raise SnapshotError(
                "stored backlog counters disagree with the restored queues",
                reason="counter-mismatch",
                context={
                    "stored": [doc["backlog_packets"], doc["backlog_bytes"]],
                    "derived": [self._backlog_packets, self._backlog_bytes],
                },
            )
        self._backlog_packets = doc["backlog_packets"]
        self._backlog_bytes = doc["backlog_bytes"]
        self.total_enqueued = doc["enqueued"]
        self.total_dequeued = doc["dequeued"]
        self.total_returned = doc["returned"]

    # -- shared bookkeeping ---------------------------------------------------

    def __len__(self) -> int:
        return self._backlog_packets

    @property
    def backlog_packets(self) -> int:
        return self._backlog_packets

    @property
    def backlog_bytes(self) -> float:
        return self._backlog_bytes

    def _note_enqueue(self, packet: Packet, now: float) -> None:
        packet.enqueued = now
        self._backlog_packets += 1
        self._backlog_bytes += packet.size
        self.total_enqueued += 1
        if _TELEM.enabled:
            _TELEM.on_enqueue(packet.class_id, packet.size, now)

    def _note_return(self, packet: Packet) -> None:
        """Account a queued packet handed back (not served) to the caller."""
        self._backlog_packets -= 1
        self._backlog_bytes -= packet.size
        self.total_returned += 1
        if self._backlog_packets < 0:
            raise RuntimeError("scheduler backlog accounting underflow")
        if _TELEM.enabled:
            _TELEM.on_return(packet.class_id, packet.size)

    def _note_dequeue(self, packet: Packet, now: float) -> None:
        packet.dequeued = now
        self._backlog_packets -= 1
        self._backlog_bytes -= packet.size
        self.total_dequeued += 1
        if self._backlog_packets < 0:
            raise RuntimeError("scheduler backlog accounting underflow")
        if _TELEM.enabled:
            _TELEM.on_dequeue(packet.class_id, packet.size, now)
