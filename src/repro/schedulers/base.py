"""The scheduler interface the simulator's link drives.

A scheduler is a passive object: the link calls ``enqueue`` when a packet
arrives and ``dequeue`` whenever the output becomes free.  Schedulers never
interact with the event loop directly, which keeps every algorithm unit
testable by hand-feeding it packets and times.

Work-conserving schedulers (everything in this library except a class with
an upper-limit curve) must return a packet from ``dequeue`` whenever their
backlog is non-empty.  Non-work-conserving behaviour is expressed by
returning ``None`` together with a ``next_ready_time`` hint so the link can
re-poll at the right moment.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional

from repro.obs.core import TELEMETRY as _TELEM
from repro.sim.packet import Packet


class Scheduler(ABC):
    """Abstract base class for output-link packet schedulers."""

    def __init__(self, link_rate: float):
        if link_rate <= 0:
            raise ValueError("link rate must be positive")
        self.link_rate = float(link_rate)
        self._backlog_packets = 0
        self._backlog_bytes = 0.0
        self.total_enqueued = 0
        self.total_dequeued = 0
        # Packets handed back to the caller without being served (forced
        # class removal under live reconfiguration).  Packet conservation:
        # total_enqueued == total_dequeued + total_returned + backlog.
        self.total_returned = 0

    # -- interface ----------------------------------------------------------

    @abstractmethod
    def enqueue(self, packet: Packet, now: float) -> None:
        """Accept ``packet`` at time ``now``."""

    @abstractmethod
    def dequeue(self, now: float) -> Optional[Packet]:
        """Select the next packet to transmit at time ``now``."""

    def next_ready_time(self, now: float) -> Optional[float]:
        """Earliest time a packet may become transmittable.

        Only meaningful when ``dequeue`` returned ``None`` while backlogged
        (non-work-conserving schedulers).  ``None`` means "whenever the next
        packet arrives".
        """
        return None

    # -- shared bookkeeping ---------------------------------------------------

    def __len__(self) -> int:
        return self._backlog_packets

    @property
    def backlog_packets(self) -> int:
        return self._backlog_packets

    @property
    def backlog_bytes(self) -> float:
        return self._backlog_bytes

    def _note_enqueue(self, packet: Packet, now: float) -> None:
        packet.enqueued = now
        self._backlog_packets += 1
        self._backlog_bytes += packet.size
        self.total_enqueued += 1
        if _TELEM.enabled:
            _TELEM.on_enqueue(packet.class_id, packet.size, now)

    def _note_return(self, packet: Packet) -> None:
        """Account a queued packet handed back (not served) to the caller."""
        self._backlog_packets -= 1
        self._backlog_bytes -= packet.size
        self.total_returned += 1
        if self._backlog_packets < 0:
            raise RuntimeError("scheduler backlog accounting underflow")
        if _TELEM.enabled:
            _TELEM.on_return(packet.class_id, packet.size)

    def _note_dequeue(self, packet: Packet, now: float) -> None:
        packet.dequeued = now
        self._backlog_packets -= 1
        self._backlog_bytes -= packet.size
        self.total_dequeued += 1
        if self._backlog_packets < 0:
            raise RuntimeError("scheduler backlog accounting underflow")
        if _TELEM.enabled:
            _TELEM.on_dequeue(packet.class_id, packet.size, now)
