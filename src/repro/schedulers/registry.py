"""The backend registry: every scheduler, one table.

Backend selection used to be scattered string checks (``if backend ==
"hfsc": ... elif backend == "hpfq": ...``) in ``repro serve``'s
hierarchy builder, with the flat schedulers (SFQ, WF2Q+, virtual clock,
WFQ) orphaned outside it entirely.  This module is the single source of
truth: a :class:`Backend` entry per scheduler with a uniform builder
from :class:`~repro.core.hierarchy.ClassSpec` lists, plus capability
flags the callers consult instead of re-deriving them from type checks.

* **hierarchical** backends consume the class tree as given;
* **flat** backends see only the leaves (each leaf keeps its guaranteed
  rate; interior structure is dropped -- exactly the reduction the
  paper applies when comparing against single-level schedulers, and the
  reason they lose the hierarchical-fairness shoot-out);
* ``persist`` says whether the backend implements the PR-4
  snapshot/restore codec (the base class refuses with a structured
  :class:`~repro.core.errors.SnapshotError` otherwise, so serving a
  non-persistable backend works -- only ``--snapshot``/``--resume`` and
  checkpointing refuse).

``repro serve``/``repro run`` hierarchy building, the persist codec
dispatch and the fairness shoot-out all draw from this table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.hfsc import HFSC, ROOT
from repro.core.hierarchy import ClassSpec
from repro.schedulers.base import Scheduler
from repro.schedulers.cbq import CBQScheduler
from repro.schedulers.drr import DRRScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.hls import HLSScheduler
from repro.schedulers.hpfq import HPFQScheduler
from repro.schedulers.sfq import SFQScheduler
from repro.schedulers.virtual_clock import VirtualClockScheduler
from repro.schedulers.wf2q import WF2QPlusScheduler
from repro.schedulers.wfq import WFQScheduler


def guaranteed_rate(spec: ClassSpec) -> float:
    """The long-term rate a spec guarantees (for rate-based backends)."""
    if spec.rate is not None:
        return spec.rate
    for curve in (spec.sc, spec.ls_sc, spec.rt_sc):
        if curve is not None:
            return curve.m2
    raise ConfigurationError(f"class {spec.name!r}: no curve given")


def resolution_order(specs: Sequence[ClassSpec]) -> List[ClassSpec]:
    """Parents before children, declaration order otherwise."""
    known = {None, ROOT}
    pending = list(specs)
    ordered: List[ClassSpec] = []
    while pending:
        progress = [s for s in pending if s.parent in known]
        if not progress:
            names = ", ".join(repr(s.name) for s in pending)
            raise ConfigurationError(f"unresolvable parents for classes: {names}")
        for spec in progress:
            ordered.append(spec)
            known.add(spec.name)
        pending = [s for s in pending if s not in ordered]
    return ordered


def leaf_specs(specs: Sequence[ClassSpec]) -> List[ClassSpec]:
    parents = {spec.parent for spec in specs if spec.parent is not None}
    return [spec for spec in specs if spec.name not in parents]


#: Options every builder accepts (H-FSC consumes them; the rest ignore
#: what does not apply, so ``build()`` has one calling convention).
BuildOptions = Dict[str, Any]


def _build_hfsc(link_rate: float, specs: Sequence[ClassSpec],
                options: BuildOptions) -> Scheduler:
    interior = {spec.parent for spec in specs if spec.parent is not None}
    scheduler = HFSC(
        link_rate,
        admission_control=options.get("admission_control", True),
        eligible_backend=options.get("eligible_backend", "heap"),
        overload_policy=options.get("overload_policy", "raise"),
    )
    for spec in resolution_order(specs):
        curves = spec.curves()
        if spec.name in interior and curves.get("sc") is not None:
            # Interior classes participate in link-sharing only (their
            # single declared curve is the ls curve), mirroring
            # :func:`repro.core.hierarchy.build_hfsc`.
            curves = {"sc": None, "rt_sc": None, "ls_sc": curves["sc"],
                      "ul_sc": curves.get("ul_sc")}
        scheduler.add_class(
            spec.name, parent=ROOT if spec.parent is None else spec.parent,
            **curves,
        )
    return scheduler


def _hierarchical_rate_builder(
    factory: Callable[[float], Scheduler]
) -> Callable[[float, Sequence[ClassSpec], BuildOptions], Scheduler]:
    def build(link_rate: float, specs: Sequence[ClassSpec],
              options: BuildOptions) -> Scheduler:
        scheduler = factory(link_rate)
        for spec in resolution_order(specs):
            parent = ROOT if spec.parent is None else spec.parent
            scheduler.add_class(spec.name, parent=parent,
                                rate=guaranteed_rate(spec))
        return scheduler

    return build


def _flat_rate_builder(
    factory: Callable[[float], Scheduler]
) -> Callable[[float, Sequence[ClassSpec], BuildOptions], Scheduler]:
    def build(link_rate: float, specs: Sequence[ClassSpec],
              options: BuildOptions) -> Scheduler:
        scheduler = factory(link_rate)
        for spec in leaf_specs(specs):
            scheduler.add_flow(spec.name, guaranteed_rate(spec))
        return scheduler

    return build


def _build_drr(link_rate: float, specs: Sequence[ClassSpec],
               options: BuildOptions) -> Scheduler:
    # Quanta proportional to the guaranteed rates, scaled so the
    # smallest-rate leaf still gets an MTU-sized turn per round.
    leaves = leaf_specs(specs)
    if not leaves:
        raise ConfigurationError("DRR needs at least one leaf class")
    rates = {spec.name: guaranteed_rate(spec) for spec in leaves}
    floor = min(rates.values())
    scheduler = DRRScheduler(link_rate)
    for spec in leaves:
        scheduler.add_flow(spec.name, quantum=1500.0 * rates[spec.name] / floor)
    return scheduler


def _build_fifo(link_rate: float, specs: Sequence[ClassSpec],
                options: BuildOptions) -> Scheduler:
    return FIFOScheduler(link_rate)


@dataclass(frozen=True)
class Backend:
    """One scheduler backend: identity, capabilities, builder."""

    name: str
    summary: str
    hierarchical: bool  # consumes the class tree (vs leaves only)
    persist: bool  # implements the PR-4 snapshot/restore codec
    build: Callable[[float, Sequence[ClassSpec], BuildOptions], Scheduler]


#: name -> Backend; ``repro serve --scheduler`` accepts every key.
BACKENDS: Dict[str, Backend] = {
    backend.name: backend
    for backend in (
        Backend(
            "hfsc", "H-FSC service curves (the paper)", True, True,
            _build_hfsc,
        ),
        Backend(
            "hpfq", "H-WF2Q+: hierarchical packet fair queueing", True, True,
            _hierarchical_rate_builder(lambda rate: HPFQScheduler(rate)),
        ),
        Backend(
            "sfq",
            "H-SFQ: the hierarchy with start-time-fair nodes "
            "(cheaper, looser delay)",
            True, True,
            _hierarchical_rate_builder(
                lambda rate: HPFQScheduler(rate, node_policy="sfq")
            ),
        ),
        Backend(
            "cbq", "class-based queueing (estimator + WRR)", True, True,
            _hierarchical_rate_builder(lambda rate: CBQScheduler(rate)),
        ),
        Backend(
            "hls",
            "hierarchical round-robin link sharing (O(1) amortized, "
            "arXiv:2108.09864)",
            True, True,
            _hierarchical_rate_builder(lambda rate: HLSScheduler(rate)),
        ),
        Backend(
            "drr", "deficit round robin over the leaves (flat)", False, True,
            _build_drr,
        ),
        Backend(
            "wf2q", "WF2Q+ over the leaves (flat)", False, False,
            _flat_rate_builder(lambda rate: WF2QPlusScheduler(rate)),
        ),
        Backend(
            "wfq", "WFQ / PGPS over the leaves (flat)", False, False,
            _flat_rate_builder(lambda rate: WFQScheduler(rate)),
        ),
        Backend(
            "virtual_clock", "virtual clock over the leaves (flat)", False,
            False,
            _flat_rate_builder(lambda rate: VirtualClockScheduler(rate)),
        ),
        Backend(
            "fifo", "one shared queue (no classes; baselines)", False, True,
            _build_fifo,
        ),
    )
}


def get_backend(name: str) -> Backend:
    try:
        return BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler backend {name!r}; "
            f"expected one of {sorted(BACKENDS)}"
        ) from None


def build_backend(
    name: str,
    link_rate: float,
    specs: Sequence[ClassSpec],
    **options: Any,
) -> Scheduler:
    """Build the named backend from the class specs (one table, no ifs)."""
    return get_backend(name).build(link_rate, specs, options)


def backend_names(hierarchical: bool = None,
                  persist: bool = None) -> Tuple[str, ...]:
    """Registry keys, optionally filtered by capability."""
    names = []
    for name, backend in BACKENDS.items():
        if hierarchical is not None and backend.hierarchical != hierarchical:
            continue
        if persist is not None and backend.persist != persist:
            continue
        names.append(name)
    return tuple(names)
