"""Virtual Clock (Zhang, 1990).

Section III-B of the paper observes that *"in a system where all the
service curves are straight lines passing through the origin, SCED reduces
to the well-known virtual clock discipline"* -- and that virtual clock is
unfair: a session that raced ahead using idle bandwidth is punished when
others return.  This scheduler is both a baseline for the experiments and
the degenerate case the SCED property tests pin down.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.core.errors import ConfigurationError
from repro.schedulers.base import Scheduler
from repro.sim.packet import Packet
from repro.util.heap import IndexedHeap


class _Flow:
    __slots__ = ("rate", "queue", "auxvc")

    def __init__(self, rate: float):
        self.rate = rate
        self.queue: Deque[Packet] = deque()
        # auxVC: the per-flow virtual clock, advanced by L/r per packet.
        self.auxvc = 0.0


class VirtualClockScheduler(Scheduler):
    """Serve packets in increasing virtual-clock-tag order.

    Each flow ``i`` has a reserved rate ``r_i``; a packet of length ``L``
    arriving at time ``a`` is stamped ``auxVC_i = max(a, auxVC_i) + L/r_i``
    and packets are transmitted smallest stamp first.
    """

    def __init__(self, link_rate: float):
        super().__init__(link_rate)
        self._flows: Dict[Any, _Flow] = {}
        self._tags: IndexedHeap[int] = IndexedHeap()  # packet uid -> tag
        self._packets: Dict[int, Packet] = {}

    def add_flow(self, flow_id: Any, rate: float) -> None:
        if flow_id in self._flows:
            raise ConfigurationError(f"duplicate flow id: {flow_id!r}")
        if rate <= 0:
            raise ConfigurationError("flow rate must be positive")
        self._flows[flow_id] = _Flow(rate)

    def enqueue(self, packet: Packet, now: float) -> None:
        try:
            flow = self._flows[packet.class_id]
        except KeyError:
            raise ConfigurationError(
                f"packet for unknown flow {packet.class_id!r}"
            ) from None
        self._note_enqueue(packet, now)
        flow.auxvc = max(now, flow.auxvc) + packet.size / flow.rate
        self._packets[packet.uid] = packet
        self._tags.push(packet.uid, flow.auxvc)

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._tags:
            return None
        uid, tag = self._tags.pop()
        packet = self._packets.pop(uid)
        packet.deadline = tag
        self._note_dequeue(packet, now)
        return packet
