"""Static priority scheduling.

Strict priorities decouple delay from bandwidth in the crudest possible
way: a high-priority class always goes first, so it gets low delay -- and
everyone else gets starvation under load.  The paper's Section I motivates
service curves as the disciplined alternative; experiments use this
scheduler to show the starvation failure mode.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.core.errors import ConfigurationError
from repro.schedulers.base import Scheduler
from repro.sim.packet import Packet


class StaticPriorityScheduler(Scheduler):
    """One FIFO queue per class, served in strict priority order.

    Lower ``priority`` values are served first.  Ties are served in
    registration order.
    """

    def __init__(self, link_rate: float):
        super().__init__(link_rate)
        self._queues: Dict[Any, Deque[Packet]] = {}
        self._order: list = []  # class ids sorted by (priority, insertion)
        self._priorities: Dict[Any, int] = {}

    def add_class(self, class_id: Any, priority: int) -> None:
        if class_id in self._queues:
            raise ConfigurationError(f"duplicate class id: {class_id!r}")
        self._queues[class_id] = deque()
        self._priorities[class_id] = priority
        self._order.append(class_id)
        self._order.sort(key=lambda cid: self._priorities[cid])

    def enqueue(self, packet: Packet, now: float) -> None:
        try:
            queue = self._queues[packet.class_id]
        except KeyError:
            raise ConfigurationError(
                f"packet for unknown class {packet.class_id!r}"
            ) from None
        self._note_enqueue(packet, now)
        queue.append(packet)

    def dequeue(self, now: float) -> Optional[Packet]:
        for class_id in self._order:
            queue = self._queues[class_id]
            if queue:
                packet = queue.popleft()
                self._note_dequeue(packet, now)
                return packet
        return None
