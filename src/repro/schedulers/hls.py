"""HLS: hierarchical round-robin link sharing (Luangsomboon & Liebeherr).

The modern counterpoint to H-FSC's timestamp machinery: *A Round-Robin
Packet Scheduler for Hierarchical Max-Min Fairness* (arXiv:2108.09864)
shows that hierarchical max-min fair link sharing does not need virtual
times or per-packet heaps at all -- a round-robin schedule at every node
of the class tree, with per-child byte credits proportional to the
children's link-share weights, achieves the hierarchical max-min
allocation with O(1) amortized work per packet (O(depth), and the tree
depth is a configuration constant).

Mechanism (the deficit/quantum core, as in the paper's Section IV):

* every interior node keeps a **ring** of its currently backlogged
  children and serves them round-robin;
* each child holds a byte **credit**; when a child reaches the front of
  the ring it is granted its **quantum** (proportional to its weight
  within the sibling set), then transmits head packets -- selected
  recursively by its own subtree ring -- until its credit is exhausted;
* a packet is charged against every node on its root-to-leaf path, so
  service at *every* level is proportioned by the local weights;
* a child whose subtree drains leaves the ring (its credit is forfeit),
  which is exactly the redistribution step of hierarchical max-min:
  absent children simply do not take turns, and their capacity flows to
  the remaining siblings in weight proportion.

We run the credits in *surplus* style (charge after transmitting, rotate
when the balance reaches zero): a child with a positive balance forwards
at least one packet per visit with no head-fits peeking, at the cost of
letting a credit go at most one packet negative -- the same
bounded-unfairness trade Shreedhar & Varghese's DRR makes, one packet
per node per round.  A child that overdrew on a packet larger than its
quantum sits out whole turns until repeated grants bring its balance
positive again, which keeps the debt bounded by one max packet even for
sub-MTU quanta; each sat-out turn issues a quantum of credit, so the
per-packet work stays O(depth) amortized.

What HLS gives up versus H-FSC (see docs/ALGORITHM.md): no service
curves, so no decoupling of delay from bandwidth -- a leaf's worst-case
delay is a round length (the sum of sibling quanta at every level), not
a curve the operator chooses.  What it gains: per-packet cost that does
not grow with the class count, no floats-accumulate-forever virtual
times, and trivially exact snapshots.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.core.errors import (
    ConfigurationError,
    ReconfigurationError,
    SnapshotError,
)
from repro.obs.core import TELEMETRY as _TELEM
from repro.schedulers.base import Scheduler
from repro.sim.packet import Packet

ROOT = "__root__"

#: Bytes of credit a node hands out per round, split over its children in
#: weight proportion.  One MTU-ish packet per 10% of weight keeps rounds
#: short (low delay) while still letting a majority child clear a few
#: packets per visit.
DEFAULT_QUANTUM = 12_000.0


class HLSClass:
    """A node of the HLS tree: a ring member at its parent, a ring owner
    for its children."""

    __slots__ = (
        "name",
        "parent",
        "children",
        "weight",
        "quantum",
        "credit",
        "queue",
        "backlog_count",
        "ring",
        "fresh",
        "bytes_served",
    )

    def __init__(self, name: Any, parent: Optional["HLSClass"], weight: float):
        self.name = name
        self.parent = parent
        self.children: List["HLSClass"] = []
        self.weight = weight
        self.quantum = 0.0  # derived from sibling weights; see _requantize
        self.credit = 0.0
        self.queue: Deque[Packet] = deque()
        self.backlog_count = 0  # packets queued anywhere in this subtree
        self.ring: Deque["HLSClass"] = deque()  # backlogged children, RR order
        self.fresh = True  # front of ``ring`` has not been granted this visit
        self.bytes_served = 0.0

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def depth(self) -> int:
        node, depth = self, 0
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def __repr__(self) -> str:
        return f"HLSClass({self.name!r})"


class HLSScheduler(Scheduler):
    """Hierarchical round-robin over the class tree.

    ``add_class(name, parent, rate)`` mirrors the rate-based backends
    (H-PFQ, CBQ): the ``rate`` is the class's link-share weight -- only
    the *ratios* between siblings matter, so passing guaranteed rates
    (what :func:`repro.serve.hierarchy.build_scheduler` does) yields the
    same shares the curve-based backends aim for.

    ``quantum`` is the per-round byte budget each node splits over its
    children; smaller quanta mean shorter rounds (tighter delay, more
    rotations), larger quanta mean fewer ring operations per byte.
    """

    def __init__(self, link_rate: float, quantum: float = DEFAULT_QUANTUM):
        super().__init__(link_rate)
        if quantum <= 0:
            raise ConfigurationError("quantum must be positive")
        self.quantum = float(quantum)
        self.root = HLSClass(ROOT, None, link_rate)
        self._classes: Dict[Any, HLSClass] = {ROOT: self.root}
        self._max_packet = 0.0  # largest size accepted; bounds credit debt

    # -- hierarchy construction / live reconfiguration -----------------------

    def add_class(self, name: Any, parent: Any = ROOT, rate: float = 0.0) -> HLSClass:
        if name in self._classes:
            raise ConfigurationError(f"duplicate class name: {name!r}")
        if rate <= 0:
            raise ConfigurationError(f"class {name!r} needs a positive rate")
        try:
            parent_cls = self._classes[parent]
        except KeyError:
            raise ConfigurationError(f"unknown parent class: {parent!r}") from None
        if parent_cls.queue:
            raise ConfigurationError(
                f"cannot add child to {parent!r}: it has queued packets"
            )
        cls = HLSClass(name, parent_cls, float(rate))
        parent_cls.children.append(cls)
        self._classes[name] = cls
        self._requantize(parent_cls)
        return cls

    def update_class(self, name: Any, now: float = 0.0,
                     rate: Optional[float] = None) -> HLSClass:
        """Change a live class's weight; takes effect from the next grant.

        Credits already granted are kept (capped at the new quantum), so
        the new weight shows up within a round and the operation stays
        O(children) with no service discontinuity.
        """
        cls = self._lookup(name)
        if cls.is_root:
            raise ReconfigurationError("cannot update the root class")
        if rate is not None:
            if rate <= 0:
                raise ReconfigurationError(
                    f"class {name!r} needs a positive rate"
                )
            cls.weight = float(rate)
            self._requantize(cls.parent)
        if _TELEM.enabled:
            _TELEM.on_reconfig(now, "update_class", name)
        return cls

    def set_link_rate(self, rate: float) -> None:
        """Change the nominal output capacity.

        HLS distributes whatever the link offers by weight ratios, so no
        per-class state depends on the absolute rate; this only updates
        the bookkeeping the serving layer reads.
        """
        if rate <= 0:
            raise ReconfigurationError("link rate must be positive")
        self.link_rate = float(rate)
        self.root.weight = float(rate)

    def remove_class(self, name: Any, force: bool = False) -> List[Packet]:
        """Remove a class; returns drained packets (``force`` only).

        Without ``force`` the class must be a childless leaf with an
        empty queue.  With ``force`` the whole subtree is removed even
        while backlogged: queued packets are handed back to the caller
        (counted in ``total_returned``), and every ancestor's backlog and
        ring membership is fixed up.
        """
        cls = self._lookup(name)
        if cls.is_root:
            raise ReconfigurationError("cannot remove the root class")
        if not force:
            if cls.children:
                raise ReconfigurationError(
                    f"class {name!r} has children; remove them first "
                    "or pass force=True"
                )
            if cls.queue:
                raise ReconfigurationError(
                    f"class {name!r} has queued packets; drain it first "
                    "or pass force=True"
                )
        # Collect the subtree (parents first) and its queued packets.
        subtree: List[HLSClass] = []
        stack = [cls]
        while stack:
            node = stack.pop()
            subtree.append(node)
            stack.extend(node.children)
        drained: List[Packet] = []
        for node in subtree:
            while node.queue:
                packet = node.queue.popleft()
                self._note_return(packet)
                drained.append(packet)
        removed_backlog = cls.backlog_count
        removed_work = cls.bytes_served
        # Detach from the parent: ring membership, then the tree itself.
        parent = cls.parent
        if parent.ring and cls in parent.ring:
            if parent.ring[0] is cls:
                parent.ring.popleft()
                parent.fresh = True
            else:
                parent.ring.remove(cls)
        parent.children.remove(cls)
        for node in subtree:
            del self._classes[node.name]
            node.parent = None
        self._requantize(parent)
        # Ancestors lose the removed backlog and the removed subtree's
        # served-bytes history (work_of stays the sum over the *current*
        # children); a drained ancestor leaves its own parent's ring
        # (front-removal refreshes the grant).
        node = parent
        while node is not None:
            node.backlog_count -= removed_backlog
            node.bytes_served -= removed_work
            if (
                node.backlog_count == 0
                and not node.is_root
                and node.parent.ring
                and node in node.parent.ring
            ):
                node.credit = 0.0
                if node.parent.ring[0] is node:
                    node.parent.ring.popleft()
                    node.parent.fresh = True
                else:
                    node.parent.ring.remove(node)
            node = node.parent
        if _TELEM.enabled:
            _TELEM.on_reconfig(None, "remove_class", name,
                               {"drained": len(drained)})
        return drained

    def __getitem__(self, name: Any) -> HLSClass:
        return self._classes[name]

    def _lookup(self, name: Any) -> HLSClass:
        try:
            return self._classes[name]
        except KeyError:
            raise ReconfigurationError(f"unknown class: {name!r}") from None

    def _requantize(self, node: HLSClass) -> None:
        """Re-derive the children's quanta from their weights.

        Each node splits :attr:`quantum` bytes per round over its
        children in weight proportion, so rounds are the same byte length
        at every level and shares are exactly the weight ratios.
        """
        total = sum(child.weight for child in node.children)
        if total <= 0:
            return
        scale = self.quantum / total
        for child in node.children:
            child.quantum = child.weight * scale
            if child.credit > child.quantum:
                # A reweight shrank the quantum below credit already
                # granted; cap it so one stale grant cannot outlast the
                # new share by more than a round.
                child.credit = child.quantum

    # -- scheduler interface --------------------------------------------------

    def enqueue(self, packet: Packet, now: float) -> None:
        try:
            leaf = self._classes[packet.class_id]
        except KeyError:
            raise ConfigurationError(
                f"packet for unknown class {packet.class_id!r}"
            ) from None
        if not leaf.is_leaf or leaf.is_root:
            raise ConfigurationError(
                f"packets may only be queued on leaf classes, not {leaf.name!r}"
            )
        self._note_enqueue(packet, now)
        if packet.size > self._max_packet:
            self._max_packet = packet.size
        leaf.queue.append(packet)
        node = leaf
        while node is not None:
            node.backlog_count += 1
            if node.backlog_count == 1 and not node.is_root:
                # Newly backlogged: join the parent's ring at the tail
                # with an empty balance (fresh grant on reaching front).
                node.credit = 0.0
                node.parent.ring.append(node)
                if len(node.parent.ring) == 1:
                    node.parent.fresh = True
            node = node.parent

    def dequeue(self, now: float) -> Optional[Packet]:
        if self.root.backlog_count == 0:
            return None
        # Descend the rings, granting each front child its quantum the
        # first time it is visited this turn.  A child still in debt
        # after its grant (it overdrew on a packet larger than its
        # quantum) sits the turn out; every rotation grants the next
        # sibling, so the walk terminates once any balance goes positive.
        path: List[HLSClass] = []
        node = self.root
        while not node.is_leaf:
            child = node.ring[0]
            if node.fresh:
                child.credit += child.quantum
                node.fresh = False
            if child.credit <= 0.0:
                node.ring.rotate(-1)
                node.fresh = True
                continue
            path.append(node)
            node = child
        leaf = node
        packet = leaf.queue.popleft()
        self._note_dequeue(packet, now)
        size = packet.size
        leaf.backlog_count -= 1
        leaf.bytes_served += size
        # Charge the packet bottom-up; drained children leave their ring,
        # exhausted children yield the turn to the next sibling.
        for parent in reversed(path):
            parent.backlog_count -= 1
            parent.bytes_served += size
            child = parent.ring[0]
            child.credit -= size
            if child.backlog_count == 0:
                parent.ring.popleft()
                child.credit = 0.0
                parent.fresh = True
            elif child.credit <= 0.0:
                parent.ring.rotate(-1)
                parent.fresh = True
        return packet

    # -- measurement hooks ----------------------------------------------------

    def work_of(self, name: Any) -> float:
        """Total bytes transmitted from the subtree rooted at ``name``."""
        return self._classes[name].bytes_served

    # -- invariants (Watchdog / property tests) -------------------------------

    def check_invariants(self) -> None:
        """Verify internal consistency.

        Checks: ring membership equals the backlogged children at every
        node, backlog counts sum up the subtree queues, credits stay
        within ``(-max_packet, quantum]`` (the surplus-round-robin
        bound), byte accounting is hierarchical, and the scheduler-level
        counters match the tree.
        """
        total_packets = 0
        total_bytes = 0.0
        for node in self._classes.values():
            if node.queue and node.children:
                raise AssertionError(
                    f"interior class {node.name!r} holds queued packets"
                )
            derived = len(node.queue) + sum(
                child.backlog_count for child in node.children
            )
            if node.backlog_count != derived:
                raise AssertionError(
                    f"backlog_count of {node.name!r} is {node.backlog_count}, "
                    f"queues say {derived}"
                )
            ring_members = list(node.ring)
            if len(set(id(c) for c in ring_members)) != len(ring_members):
                raise AssertionError(f"duplicate ring entry under {node.name!r}")
            backlogged = {
                id(child) for child in node.children if child.backlog_count > 0
            }
            if {id(c) for c in ring_members} != backlogged:
                raise AssertionError(
                    f"ring of {node.name!r} disagrees with its backlogged "
                    "children"
                )
            for child in node.children:
                if child.parent is not node:
                    raise AssertionError(
                        f"broken parent link at {child.name!r}"
                    )
                if child.credit > child.quantum + 1e-9:
                    raise AssertionError(
                        f"credit of {child.name!r} exceeds its quantum: "
                        f"{child.credit} > {child.quantum}"
                    )
                if self._max_packet and child.credit <= -self._max_packet:
                    raise AssertionError(
                        f"credit of {child.name!r} below the debt bound: "
                        f"{child.credit} <= -{self._max_packet}"
                    )
                if child.backlog_count == 0 and child.credit != 0.0:
                    raise AssertionError(
                        f"idle class {child.name!r} holds credit "
                        f"{child.credit}"
                    )
            if node.children:
                child_work = sum(c.bytes_served for c in node.children)
                if abs(child_work - node.bytes_served) > 1e-6:
                    raise AssertionError(
                        f"bytes_served of {node.name!r} ({node.bytes_served}) "
                        f"!= sum of children ({child_work})"
                    )
            total_packets += len(node.queue)
            total_bytes += sum(p.size for p in node.queue)
        if total_packets != self._backlog_packets:
            raise AssertionError(
                f"scheduler counts {self._backlog_packets} backlogged "
                f"packets, queues hold {total_packets}"
            )
        if abs(total_bytes - self._backlog_bytes) > 1e-6:
            raise AssertionError(
                f"scheduler counts {self._backlog_bytes} backlogged bytes, "
                f"queues hold {total_bytes}"
            )
        if self.total_enqueued != (
            self.total_dequeued + self.total_returned + self._backlog_packets
        ):
            raise AssertionError("packet conservation violated")

    # -- snapshot/restore (repro.persist) -------------------------------------
    #
    # Stored: weights, credits, queues, per-node ring order and the
    # ``fresh`` grant flag -- genuine history that cannot be re-derived.
    # Re-derived and validated: quanta (from the weights), backlog counts
    # and ring membership (from the restored queues).

    def snapshot_state(self, add_packet: Callable[[Packet], int]) -> Dict[str, Any]:
        for name in self._classes:
            if name != ROOT and not isinstance(name, (str, int)):
                raise SnapshotError(
                    f"class name {name!r} is not JSON-safe",
                    reason="unsupported-name",
                )
        classes = []
        for cls in self._classes.values():
            if cls.is_root:
                continue
            classes.append({
                "name": cls.name,
                "parent": ROOT if cls.parent.is_root else cls.parent.name,
                "weight": cls.weight,
                "credit": cls.credit,
                "bytes_served": cls.bytes_served,
                "queue": [add_packet(p) for p in cls.queue],
            })
        rings = {}
        for cls in self._classes.values():
            if cls.children:
                key = ROOT if cls.is_root else cls.name
                rings[str(key)] = {
                    "ring": [child.name for child in cls.ring],
                    "fresh": cls.fresh,
                }
        return {
            "type": "HLS",
            "config": {
                "link_rate": self.link_rate,
                "quantum": self.quantum,
            },
            "counters": self._counters_doc(),
            "max_packet": self._max_packet,
            "root_bytes_served": self.root.bytes_served,
            "classes": classes,
            "rings": rings,
        }

    _CLASS_DOC_KEYS = frozenset(
        ("name", "parent", "weight", "credit", "bytes_served", "queue")
    )

    @classmethod
    def restore_state(
        cls, doc: Dict[str, Any], get_packet: Callable[[int], Packet]
    ) -> "HLSScheduler":
        def check_keys(mapping, keys, what):
            if not isinstance(mapping, dict) or set(mapping) != set(keys):
                raise SnapshotError(
                    f"{what}: malformed document",
                    reason="unknown-field",
                    context={
                        "fields": sorted(map(str, mapping))
                        if isinstance(mapping, dict) else repr(mapping)
                    },
                )

        check_keys(
            doc,
            ("type", "config", "counters", "max_packet", "root_bytes_served",
             "classes", "rings"),
            "HLS snapshot",
        )
        if doc["type"] != "HLS":
            raise SnapshotError(
                f"scheduler type mismatch: expected 'HLS', got {doc['type']!r}",
                reason="scheduler-type",
            )
        check_keys(doc["config"], ("link_rate", "quantum"), "HLS config")
        try:
            sched = cls(doc["config"]["link_rate"],
                        quantum=doc["config"]["quantum"])
        except (ConfigurationError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot carries an invalid configuration: {exc}",
                reason="bad-config",
            ) from exc
        for cdoc in doc["classes"]:
            check_keys(cdoc, cls._CLASS_DOC_KEYS, f"class {cdoc.get('name')!r}")
            try:
                node = sched.add_class(
                    cdoc["name"], parent=cdoc["parent"], rate=cdoc["weight"]
                )
            except ConfigurationError as exc:
                raise SnapshotError(
                    f"snapshot hierarchy is not constructible: {exc}",
                    reason="bad-hierarchy",
                ) from exc
            node.credit = float(cdoc["credit"])
            node.bytes_served = float(cdoc["bytes_served"])
            node.queue.extend(get_packet(uid) for uid in cdoc["queue"])
            sched._backlog_packets += len(node.queue)
            sched._backlog_bytes += sum(p.size for p in node.queue)
        for node in sched._classes.values():
            if node.queue and node.children:
                raise SnapshotError(
                    f"interior class {node.name!r} holds queued packets",
                    reason="bad-hierarchy",
                )
        # Re-derive backlog counts bottom-up, then rebuild each ring in
        # stored rotation order and validate its membership.
        for node in reversed(list(sched._classes.values())):
            node.backlog_count = len(node.queue) + sum(
                child.backlog_count for child in node.children
            )
        ring_docs = dict(doc["rings"])
        for node in sched._classes.values():
            if not node.children:
                continue
            key = str(ROOT if node.is_root else node.name)
            rdoc = ring_docs.pop(key, None)
            if rdoc is None:
                raise SnapshotError(
                    f"snapshot carries no ring for node {key!r}",
                    reason="ring-mismatch",
                )
            check_keys(rdoc, ("ring", "fresh"), f"ring of {key!r}")
            stored = list(rdoc["ring"])
            backlogged = {
                child.name for child in node.children
                if child.backlog_count > 0
            }
            if set(stored) != backlogged or len(set(stored)) != len(stored):
                raise SnapshotError(
                    f"stored ring of {key!r} disagrees with the restored "
                    "queues",
                    reason="ring-mismatch",
                    context={
                        "stored": sorted(map(str, stored)),
                        "derived": sorted(map(str, backlogged)),
                    },
                )
            node.ring = deque(sched._classes[name] for name in stored)
            node.fresh = bool(rdoc["fresh"])
        if ring_docs:
            raise SnapshotError(
                f"snapshot carries rings for unknown nodes: "
                f"{sorted(ring_docs)}",
                reason="ring-mismatch",
            )
        for node in sched._classes.values():
            if node.backlog_count == 0 and node.credit != 0.0:
                raise SnapshotError(
                    f"idle class {node.name!r} carries credit",
                    reason="counter-mismatch",
                )
        sched._max_packet = float(doc["max_packet"])
        sched.root.bytes_served = float(doc["root_bytes_served"])
        sched._restore_counters(doc["counters"])
        return sched
