"""Class-Based Queueing (Floyd & Jacobson, 1995) -- simplified.

CBQ is the link-sharing scheme the paper's related work (Section VIII) and
the H-PFQ paper position themselves against: hierarchical sharing driven
not by virtual times but by a per-class **estimator** that measures whether
a class is over- or under- its allocated rate, plus priority levels and a
weighted round-robin among sendable classes.

This implementation follows the ns-2 "top-level" variant at reduced
fidelity, which is sufficient for the link-sharing comparison (E4):

* each class has a rate, a priority level, and a borrow flag;
* the estimator tracks ``avgidle``, an EWMA of the difference between the
  actual inter-departure gap and the gap a dedicated ``rate`` link would
  produce; ``avgidle >= 0`` means the class is *underlimit*;
* a leaf may send when it is underlimit, or when it may borrow and some
  ancestor is underlimit;
* among sendable leaves, the highest priority level wins, weighted
  round-robin within a level;
* when no backlogged leaf is regulated-sendable, the scheduler stays
  work-conserving and sends from the highest-priority backlogged leaf
  (ns-2's behaviour when the root can lend).

The known weaknesses the paper attributes to CBQ-style estimators --
sluggish convergence to the configured shares and coupled delay/bandwidth
-- are visible in the E4/E5 results, which is precisely their role here.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.core.errors import ConfigurationError, SnapshotError
from repro.schedulers.base import Scheduler
from repro.sim.packet import Packet

ROOT = "__root__"


class CBQClass:
    __slots__ = (
        "name",
        "parent",
        "children",
        "rate",
        "priority",
        "borrow",
        "queue",
        "avgidle",
        "maxidle",
        "last_departure",
        "bytes_served",
        "quantum",
        "deficit",
    )

    def __init__(
        self,
        name: Any,
        parent: Optional["CBQClass"],
        rate: float,
        priority: int,
        borrow: bool,
        maxidle: float,
    ):
        self.name = name
        self.parent = parent
        self.children: List["CBQClass"] = []
        self.rate = rate
        self.priority = priority
        self.borrow = borrow
        self.queue: Deque[Packet] = deque()
        self.avgidle = maxidle
        self.maxidle = maxidle
        self.last_departure: Optional[float] = None
        self.bytes_served = 0.0
        # Weighted round robin within a priority level: quantum in bytes
        # proportional to the configured rate (set by the scheduler).
        self.quantum = 1.0
        self.deficit = 0.0

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def underlimit(self) -> bool:
        return self.avgidle >= 0.0

    def __repr__(self) -> str:
        return f"CBQClass({self.name!r})"


class CBQScheduler(Scheduler):
    """Simplified class-based queueing with ancestor borrowing.

    ``ewma_gain`` is the estimator's smoothing weight (ns-2 uses
    ``1/2**RM_FILTER_GAIN = 1/32``; we default to 1/16 for faster
    convergence at simulation time scales).  ``maxidle_seconds`` caps the
    credit a long-idle class can accumulate.
    """

    def __init__(
        self,
        link_rate: float,
        ewma_gain: float = 1.0 / 16.0,
        maxidle_seconds: float = 0.05,
        round_seconds: float = 0.02,
    ):
        super().__init__(link_rate)
        if not 0 < ewma_gain <= 1:
            raise ConfigurationError("ewma_gain must be in (0, 1]")
        if round_seconds <= 0:
            raise ConfigurationError("round_seconds must be positive")
        self._gain = ewma_gain
        self._maxidle = maxidle_seconds
        # Each WRR round hands every leaf `rate * round_seconds` bytes.
        self._round_seconds = round_seconds
        # One quantum grant per visit to the front of each priority ring.
        self._grant_pending: Dict[int, bool] = {}
        self.root = CBQClass(ROOT, None, link_rate, 0, False, maxidle_seconds)
        self._classes: Dict[Any, CBQClass] = {ROOT: self.root}
        # Round-robin lists of backlogged leaves, one per priority level.
        self._rounds: Dict[int, Deque[CBQClass]] = {}

    def add_class(
        self,
        name: Any,
        parent: Any = ROOT,
        rate: float = 0.0,
        priority: int = 1,
        borrow: bool = True,
    ) -> CBQClass:
        if name in self._classes:
            raise ConfigurationError(f"duplicate class name: {name!r}")
        if rate <= 0:
            raise ConfigurationError(f"class {name!r} needs a positive rate")
        try:
            parent_cls = self._classes[parent]
        except KeyError:
            raise ConfigurationError(f"unknown parent class: {parent!r}") from None
        if parent_cls.queue:
            raise ConfigurationError(
                f"cannot add child to {parent!r}: it has queued packets"
            )
        cls = CBQClass(name, parent_cls, rate, priority, borrow, self._maxidle)
        cls.quantum = max(1.0, rate * self._round_seconds)
        parent_cls.children.append(cls)
        self._classes[name] = cls
        return cls

    def __getitem__(self, name: Any) -> CBQClass:
        return self._classes[name]

    def work_of(self, name: Any) -> float:
        return self._classes[name].bytes_served

    # -- snapshot/restore (repro.persist) ----------------------------------------

    _CLASS_DOC_KEYS = frozenset(
        {
            "name",
            "parent",
            "rate",
            "priority",
            "borrow",
            "queue",
            "avgidle",
            "last_departure",
            "bytes_served",
            "deficit",
        }
    )

    @staticmethod
    def _estimator_doc(cls: "CBQClass") -> Dict[str, Any]:
        return {
            "avgidle": cls.avgidle,
            "last_departure": cls.last_departure,
            "bytes_served": cls.bytes_served,
        }

    def snapshot_state(self, add_packet: Callable[[Packet], int]) -> Dict[str, Any]:
        """Serialize the full CBQ runtime state.

        ``quantum`` and ``maxidle`` are pure functions of the config and
        are re-derived on restore; the estimator (``avgidle``,
        ``last_departure``), the DRR deficits, and the WRR ring
        rotations/grant flags are genuine history and are stored.
        """
        classes = []
        for cls in self._classes.values():
            if cls is self.root:
                continue
            if not isinstance(cls.name, (str, int)):
                raise SnapshotError(
                    f"class name {cls.name!r} is not JSON-safe",
                    reason="unsupported-name",
                )
            classes.append(
                {
                    "name": cls.name,
                    "parent": cls.parent.name if cls.parent is not None else None,
                    "rate": cls.rate,
                    "priority": cls.priority,
                    "borrow": cls.borrow,
                    "queue": [add_packet(p) for p in cls.queue],
                    "deficit": cls.deficit,
                    **self._estimator_doc(cls),
                }
            )
        return {
            "type": "CBQ",
            "config": {
                "link_rate": self.link_rate,
                "ewma_gain": self._gain,
                "maxidle_seconds": self._maxidle,
                "round_seconds": self._round_seconds,
            },
            "counters": self._counters_doc(),
            "root": self._estimator_doc(self.root),
            "grant_pending": [
                [priority, bool(flag)]
                for priority, flag in self._grant_pending.items()
            ],
            "rounds": [
                [priority, [leaf.name for leaf in ring]]
                for priority, ring in self._rounds.items()
            ],
            "classes": classes,
        }

    @classmethod
    def restore_state(
        cls, doc: Dict[str, Any], get_packet: Callable[[int], Packet]
    ) -> "CBQScheduler":
        def check_keys(d: Dict[str, Any], expected: frozenset, what: str) -> None:
            if set(d) != expected:
                extra = sorted(map(str, set(d) - expected))
                missing = sorted(map(str, expected - set(d)))
                raise SnapshotError(
                    f"malformed {what} document",
                    reason="unknown-field" if extra else "missing-field",
                    context={"extra": extra, "missing": missing},
                )

        check_keys(
            doc,
            frozenset(
                {"type", "config", "counters", "root", "grant_pending", "rounds", "classes"}
            ),
            "CBQ snapshot",
        )
        if doc["type"] != "CBQ":
            raise SnapshotError(
                f"scheduler type mismatch: expected CBQ, got {doc['type']!r}",
                reason="scheduler-type",
            )
        cfg = doc["config"]
        check_keys(
            cfg,
            frozenset({"link_rate", "ewma_gain", "maxidle_seconds", "round_seconds"}),
            "CBQ config",
        )
        try:
            sched = cls(
                cfg["link_rate"],
                ewma_gain=cfg["ewma_gain"],
                maxidle_seconds=cfg["maxidle_seconds"],
                round_seconds=cfg["round_seconds"],
            )
        except ConfigurationError as exc:
            raise SnapshotError(str(exc), reason="bad-config") from exc
        root_doc = doc["root"]
        check_keys(
            root_doc,
            frozenset({"avgidle", "last_departure", "bytes_served"}),
            "CBQ root",
        )
        for cdoc in doc["classes"]:
            check_keys(cdoc, cls._CLASS_DOC_KEYS, f"CBQ class {cdoc.get('name')!r}")
            try:
                node = sched.add_class(
                    cdoc["name"],
                    parent=ROOT if cdoc["parent"] is None else cdoc["parent"],
                    rate=cdoc["rate"],
                    priority=cdoc["priority"],
                    borrow=cdoc["borrow"],
                )
            except ConfigurationError as exc:
                raise SnapshotError(str(exc), reason="bad-hierarchy") from exc
            node.queue.extend(get_packet(uid) for uid in cdoc["queue"])
            node.avgidle = cdoc["avgidle"]
            node.last_departure = cdoc["last_departure"]
            node.bytes_served = cdoc["bytes_served"]
            node.deficit = cdoc["deficit"]
            sched._backlog_packets += len(node.queue)
            sched._backlog_bytes += sum(p.size for p in node.queue)
        sched.root.avgidle = root_doc["avgidle"]
        sched.root.last_departure = root_doc["last_departure"]
        sched.root.bytes_served = root_doc["bytes_served"]
        # WRR rings: membership must equal the backlogged leaves at each
        # priority; the stored rotation order itself is history we adopt.
        backlogged: Dict[int, set] = {}
        for node in sched._classes.values():
            if node is not sched.root and node.queue:
                backlogged.setdefault(node.priority, set()).add(node.name)
        seen_priorities = set()
        for priority, names in doc["rounds"]:
            if priority in seen_priorities:
                raise SnapshotError(
                    f"duplicate WRR ring for priority {priority}",
                    reason="ring-mismatch",
                )
            seen_priorities.add(priority)
            members = []
            for name in names:
                node = sched._classes.get(name)
                if node is None or node is sched.root:
                    raise SnapshotError(
                        f"WRR ring references unknown class {name!r}",
                        reason="ring-mismatch",
                    )
                members.append(node)
            if {m.name for m in members} != backlogged.get(priority, set()) or len(
                set(names)
            ) != len(names):
                raise SnapshotError(
                    f"stored WRR ring for priority {priority} disagrees with "
                    "the backlogged leaves derived from the restored queues",
                    reason="ring-mismatch",
                    context={
                        "stored": sorted(map(str, names)),
                        "derived": sorted(
                            map(str, backlogged.get(priority, set()))
                        ),
                    },
                )
            sched._rounds[priority] = deque(members)
        missing = set(backlogged) - seen_priorities
        if missing:
            raise SnapshotError(
                "backlogged priority levels missing from the stored WRR rings",
                reason="ring-mismatch",
                context={"priorities": sorted(missing)},
            )
        for priority, flag in doc["grant_pending"]:
            sched._grant_pending[priority] = bool(flag)
        sched._restore_counters(doc["counters"])
        return sched

    # -- scheduler interface -----------------------------------------------------

    def enqueue(self, packet: Packet, now: float) -> None:
        try:
            leaf = self._classes[packet.class_id]
        except KeyError:
            raise ConfigurationError(
                f"packet for unknown class {packet.class_id!r}"
            ) from None
        if not leaf.is_leaf or leaf is self.root:
            raise ConfigurationError(
                f"packets may only be queued on leaf classes, not {leaf.name!r}"
            )
        self._note_enqueue(packet, now)
        leaf.queue.append(packet)
        if len(leaf.queue) == 1:
            leaf.deficit = 0.0
            ring = self._rounds.setdefault(leaf.priority, deque())
            ring.append(leaf)
            if len(ring) == 1:
                self._grant_pending[leaf.priority] = True

    def dequeue(self, now: float) -> Optional[Packet]:
        if self._backlog_packets == 0:
            return None
        leaf = self._pick(regulated=True)
        if leaf is None:
            # Work-conserving fallback: the link never idles while
            # backlogged; borrow from the link itself.
            leaf = self._pick(regulated=False)
        assert leaf is not None
        packet = leaf.queue.popleft()
        leaf.deficit -= packet.size
        self._note_dequeue(packet, now)
        if not leaf.queue:
            leaf.deficit = 0.0
            ring = self._rounds[leaf.priority]
            at_front = ring and ring[0] is leaf
            ring.remove(leaf)
            if at_front:
                self._grant_pending[leaf.priority] = True
        self._account_departure(leaf, packet.size, now)
        return packet

    # -- internals ------------------------------------------------------------------

    def _pick(self, regulated: bool) -> Optional[CBQClass]:
        """Weighted round robin among sendable leaves, priority first.

        DRR-style byte-weighted rotation: each visit to the front of a
        ring grants the leaf one quantum; the leaf sends while its deficit
        covers the head packet, then yields its turn.
        """
        for priority in sorted(self._rounds):
            ring = self._rounds[priority]
            if not ring:
                continue
            # Bound the scan: enough rotations for the largest head packet
            # to accumulate its deficit, across all ring members.
            max_head = max(leaf.queue[0].size for leaf in ring)
            min_quantum = min(leaf.quantum for leaf in ring)
            max_visits = (len(ring) + 1) * (int(max_head / min_quantum) + 2)
            for _ in range(max_visits):
                leaf = ring[0]
                if regulated and not self._may_send(leaf):
                    ring.rotate(-1)
                    self._grant_pending[priority] = True
                    continue
                if self._grant_pending.get(priority, True):
                    leaf.deficit += leaf.quantum
                    self._grant_pending[priority] = False
                if leaf.deficit >= leaf.queue[0].size:
                    return leaf
                ring.rotate(-1)
                self._grant_pending[priority] = True
        return None

    def _may_send(self, leaf: CBQClass) -> bool:
        if leaf.underlimit():
            return True
        if not leaf.borrow:
            return False
        node = leaf.parent
        while node is not None:
            if node.underlimit():
                return True
            if not node.borrow and node is not self.root:
                return False
            node = node.parent
        return False

    def _account_departure(self, leaf: CBQClass, size: float, now: float) -> None:
        node: Optional[CBQClass] = leaf
        while node is not None:
            if node.last_departure is not None:
                gap = now - node.last_departure
                idle = gap - size / node.rate
                node.avgidle += self._gain * (idle - node.avgidle)
                node.avgidle = min(node.avgidle, node.maxidle)
            node.last_departure = now
            node.bytes_served += size
            node = node.parent
