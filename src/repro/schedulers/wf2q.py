"""WF2Q+ -- worst-case fair weighted fair queueing (Bennett & Zhang).

The smallest-eligible-finish-time-first (SEFF) PFQ algorithm the paper
cites as [2]/[17], and the server node from which the H-PFQ comparator is
built.  Compared to WFQ it never runs ahead of the fluid system by more
than one packet (small worst-case fair index), and compared to SFQ it has
the tight delay bound; its low-cost system virtual time

    V(t2) = max(V(t1) + W(t1, t2) / R,  min_{i backlogged} S_i)

(the formula quoted in Section IV-C of the paper) needs no GPS emulation.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.core.errors import ConfigurationError
from repro.schedulers.base import Scheduler
from repro.sim.packet import Packet
from repro.util.heap import IndexedHeap


class _Flow:
    __slots__ = ("rate", "queue", "last_finish", "start", "finish")

    def __init__(self, rate: float):
        self.rate = rate
        self.queue: Deque[Packet] = deque()
        self.last_finish = 0.0
        self.start = 0.0
        self.finish = 0.0


class WF2QPlusScheduler(Scheduler):
    """SEFF packet fair queueing with the WF2Q+ virtual time function.

    Weights are reserved rates (bytes/second); tags are in seconds of a
    dedicated link of that rate.  The scheduler serves, among flows whose
    head packet has started service in the fluid reference system
    (``S_i <= V``), the one with the smallest finish tag.

    Every backlogged flow lives in exactly one of two heaps: ``_waiting``
    (start tag still ahead of V, keyed by start) or ``_eligible`` (keyed by
    finish).  Advancing V migrates flows from waiting to eligible.
    """

    def __init__(self, link_rate: float):
        super().__init__(link_rate)
        self._flows: Dict[Any, _Flow] = {}
        self._waiting: IndexedHeap[Any] = IndexedHeap()
        self._eligible: IndexedHeap[Any] = IndexedHeap()
        self._vtime = 0.0

    def add_flow(self, flow_id: Any, rate: float) -> None:
        if flow_id in self._flows:
            raise ConfigurationError(f"duplicate flow id: {flow_id!r}")
        if rate <= 0:
            raise ConfigurationError("flow rate must be positive")
        self._flows[flow_id] = _Flow(rate)

    def enqueue(self, packet: Packet, now: float) -> None:
        try:
            flow = self._flows[packet.class_id]
        except KeyError:
            raise ConfigurationError(
                f"packet for unknown flow {packet.class_id!r}"
            ) from None
        self._note_enqueue(packet, now)
        flow.queue.append(packet)
        if len(flow.queue) == 1:
            self._tag_head(packet.class_id, flow, newly_backlogged=True)

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._waiting and not self._eligible:
            return None
        self._promote()
        if not self._eligible:
            # All start tags are ahead of V: apply the virtual time floor
            # V = max(V, min_i S_i) and retry.
            self._vtime = self._waiting.peek_key()
            self._promote()
        flow_id, finish = self._eligible.pop()
        flow = self._flows[flow_id]
        packet = flow.queue.popleft()
        packet.deadline = finish
        self._note_dequeue(packet, now)
        flow.last_finish = flow.finish
        self._vtime += packet.size / self.link_rate
        if flow.queue:
            self._tag_head(flow_id, flow, newly_backlogged=False)
        return packet

    def virtual_time(self) -> float:
        return self._vtime

    # -- internals --------------------------------------------------------

    def _tag_head(self, flow_id: Any, flow: _Flow, newly_backlogged: bool) -> None:
        head = flow.queue[0]
        if newly_backlogged:
            flow.start = max(self._vtime, flow.last_finish)
        else:
            # Within a backlogged period tags chain: S = previous F.
            flow.start = flow.last_finish
        flow.finish = flow.start + head.size / flow.rate
        if flow.start <= self._vtime:
            self._eligible.push(flow_id, flow.finish)
        else:
            self._waiting.push(flow_id, flow.start)

    def _promote(self) -> None:
        while self._waiting:
            flow_id, start = self._waiting.peek()
            if start > self._vtime:
                break
            self._waiting.pop()
            self._eligible.push(flow_id, self._flows[flow_id].finish)
