"""Packet schedulers: the paper's baselines and comparators.

Every scheduler implements the small interface of
:class:`~repro.schedulers.base.Scheduler` (``enqueue`` / ``dequeue``) so
that the simulator's :class:`~repro.sim.link.Link` can drive any of them
interchangeably.  The H-FSC scheduler itself lives in
:mod:`repro.core.hfsc`; this package holds the algorithms the paper
compares against or builds upon:

* FIFO and static priority (Section I framing),
* Virtual Clock (Section III-B: SCED with linear curves *is* virtual clock),
* WFQ / PGPS and SFQ (classic PFQ algorithms, Section IV-C),
* WF2Q+ (the SEFF packet fair queueing algorithm, reference [2]/[17]),
* DRR (a cheap rate-proportional baseline),
* H-PFQ -- a hierarchy of PFQ server nodes, the paper's main comparator,
* CBQ -- the class-based queueing link-sharing scheme of reference [8].
"""

from repro.schedulers.base import Scheduler
from repro.schedulers.cbq import CBQScheduler
from repro.schedulers.drr import DRRScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.hpfq import HPFQScheduler
from repro.schedulers.priority import StaticPriorityScheduler
from repro.schedulers.sfq import SFQScheduler
from repro.schedulers.virtual_clock import VirtualClockScheduler
from repro.schedulers.wf2q import WF2QPlusScheduler
from repro.schedulers.wfq import WFQScheduler

__all__ = [
    "Scheduler",
    "FIFOScheduler",
    "StaticPriorityScheduler",
    "VirtualClockScheduler",
    "WFQScheduler",
    "SFQScheduler",
    "WF2QPlusScheduler",
    "DRRScheduler",
    "HPFQScheduler",
    "CBQScheduler",
]
