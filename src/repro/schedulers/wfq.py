"""Weighted Fair Queueing (PGPS) with exact GPS virtual-time emulation.

WFQ [7] / PGPS [Parekh-Gallager] serves packets in increasing order of the
virtual finishing times they would have under the fluid GPS reference
system.  Computing those tags exactly requires tracking the GPS system's
set of backlogged sessions, because the GPS virtual time ``V(t)`` advances
at rate ``C / sum(weights of GPS-busy sessions)``.  This module implements
that emulation event-exactly: between packet arrivals the busy set can only
shrink, at the virtual finishing times already known, so ``V(t)`` is
advanced piece by piece through those departures.

In the paper's framework WFQ guarantees the linear service curve
``S_i(t) = r_i * t`` while remaining fair (unlike virtual clock); its
coupling of delay to rate is exactly what the concave curves of H-FSC are
designed to break (experiment E5).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.core.errors import ConfigurationError
from repro.schedulers.base import Scheduler
from repro.sim.packet import Packet
from repro.util.heap import IndexedHeap


class _Flow:
    __slots__ = ("rate", "queue", "last_finish", "gps_busy")

    def __init__(self, rate: float):
        self.rate = rate
        self.queue: Deque[Packet] = deque()
        self.last_finish = 0.0  # virtual finish tag of the flow's last packet
        self.gps_busy = False


class WFQScheduler(Scheduler):
    """Packet-by-packet GPS: smallest virtual finish tag first.

    Weights are the flows' reserved rates in bytes/second; virtual time is
    measured in seconds of a dedicated link, so a flow's packet of length
    ``L`` adds ``L / r_i`` of virtual time.
    """

    def __init__(self, link_rate: float):
        super().__init__(link_rate)
        self._flows: Dict[Any, _Flow] = {}
        self._packet_tags: IndexedHeap[int] = IndexedHeap()
        self._packets: Dict[int, Packet] = {}
        # GPS emulation state.
        self._vtime = 0.0
        self._vtime_stamp = 0.0  # real time at which _vtime was computed
        self._busy_weight = 0.0
        self._gps_departures: IndexedHeap[Any] = IndexedHeap()  # flow -> last finish

    def add_flow(self, flow_id: Any, rate: float) -> None:
        if flow_id in self._flows:
            raise ConfigurationError(f"duplicate flow id: {flow_id!r}")
        if rate <= 0:
            raise ConfigurationError("flow rate must be positive")
        self._flows[flow_id] = _Flow(rate)

    def enqueue(self, packet: Packet, now: float) -> None:
        try:
            flow = self._flows[packet.class_id]
        except KeyError:
            raise ConfigurationError(
                f"packet for unknown flow {packet.class_id!r}"
            ) from None
        self._note_enqueue(packet, now)
        self._advance_gps(now)
        start = max(self._vtime, flow.last_finish)
        finish = start + packet.size / flow.rate
        flow.last_finish = finish
        if not flow.gps_busy:
            flow.gps_busy = True
            self._busy_weight += flow.rate
        self._gps_departures.push_or_update(packet.class_id, finish)
        self._packets[packet.uid] = packet
        self._packet_tags.push(packet.uid, finish)

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._packet_tags:
            return None
        self._advance_gps(now)
        uid, tag = self._packet_tags.pop()
        packet = self._packets.pop(uid)
        packet.deadline = tag
        self._note_dequeue(packet, now)
        return packet

    def virtual_time(self, now: float) -> float:
        """Current GPS virtual time (exposed for tests and analysis)."""
        self._advance_gps(now)
        return self._vtime

    # -- GPS emulation --------------------------------------------------------

    def _advance_gps(self, now: float) -> None:
        """Advance ``V`` from its last computation time to ``now``.

        Between computations, GPS departures (flows emptying in the fluid
        system) happen at known virtual times; each departure reduces the
        busy weight and therefore steepens ``dV/dt = C / busy_weight``.
        """
        if now < self._vtime_stamp:
            slack = 1e-9 * max(1.0, abs(self._vtime_stamp))
            if now < self._vtime_stamp - slack:
                raise ValueError("time went backwards in WFQ GPS emulation")
            # Within float accumulation noise of the stamp: clamp.
            now = self._vtime_stamp
        while self._busy_weight > 0 and self._gps_departures:
            flow_id, finish = self._gps_departures.peek()
            dt_needed = (finish - self._vtime) * self._busy_weight / self.link_rate
            if self._vtime_stamp + dt_needed > now:
                break
            # The fluid system drains this flow before `now`.
            self._vtime = finish
            self._vtime_stamp += dt_needed
            self._gps_departures.pop()
            flow = self._flows[flow_id]
            flow.gps_busy = False
            self._busy_weight -= flow.rate
            if self._busy_weight < 1e-9 * self.link_rate:
                self._busy_weight = 0.0
        if self._busy_weight > 0:
            self._vtime += (now - self._vtime_stamp) * self.link_rate / self._busy_weight
        self._vtime_stamp = now
