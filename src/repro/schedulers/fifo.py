"""First-in first-out: the no-QoS baseline."""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Optional

from repro.core.errors import SnapshotError
from repro.schedulers.base import Scheduler
from repro.sim.packet import Packet


class FIFOScheduler(Scheduler):
    """A single shared queue; class identities are ignored.

    The simplest baseline: it provides no isolation whatsoever, which is
    what the delay experiments contrast the service-curve schedulers
    against.
    """

    def __init__(self, link_rate: float):
        super().__init__(link_rate)
        self._queue: Deque[Packet] = deque()

    def enqueue(self, packet: Packet, now: float) -> None:
        self._note_enqueue(packet, now)
        self._queue.append(packet)

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._note_dequeue(packet, now)
        return packet

    # -- snapshot/restore (repro.persist) -----------------------------------

    def snapshot_state(self, add_packet: Callable[[Packet], int]) -> Dict[str, Any]:
        return {
            "type": "FIFO",
            "config": {"link_rate": self.link_rate},
            "counters": self._counters_doc(),
            "queue": [add_packet(p) for p in self._queue],
        }

    @classmethod
    def restore_state(
        cls, doc: Dict[str, Any], get_packet: Callable[[int], Packet]
    ) -> "FIFOScheduler":
        if set(doc) != {"type", "config", "counters", "queue"}:
            raise SnapshotError(
                f"malformed FIFO snapshot: {sorted(map(str, doc))}",
                reason="unknown-field",
            )
        if doc["type"] != "FIFO":
            raise SnapshotError(
                f"scheduler type mismatch: expected FIFO, got {doc['type']!r}",
                reason="scheduler-type",
            )
        if set(doc["config"]) != {"link_rate"}:
            raise SnapshotError(
                "malformed FIFO config document", reason="unknown-field"
            )
        sched = cls(doc["config"]["link_rate"])
        sched._queue.extend(get_packet(uid) for uid in doc["queue"])
        sched._backlog_packets = len(sched._queue)
        sched._backlog_bytes = sum(p.size for p in sched._queue)
        sched._restore_counters(doc["counters"])
        return sched
