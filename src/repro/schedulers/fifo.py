"""First-in first-out: the no-QoS baseline."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.schedulers.base import Scheduler
from repro.sim.packet import Packet


class FIFOScheduler(Scheduler):
    """A single shared queue; class identities are ignored.

    The simplest baseline: it provides no isolation whatsoever, which is
    what the delay experiments contrast the service-curve schedulers
    against.
    """

    def __init__(self, link_rate: float):
        super().__init__(link_rate)
        self._queue: Deque[Packet] = deque()

    def enqueue(self, packet: Packet, now: float) -> None:
        self._note_enqueue(packet, now)
        self._queue.append(packet)

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._note_dequeue(packet, now)
        return packet
