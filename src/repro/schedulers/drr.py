"""Deficit Round Robin (Shreedhar & Varghese).

An O(1) rate-proportional baseline: flows take turns, each allowed to send
up to ``quantum_i`` bytes per round plus the deficit carried from rounds
where its head packet did not fit.  DRR approximates fair bandwidth shares
with no timestamps at all, which makes it the cheap end of the overhead
experiment (E9) and a useful contrast for delay experiments: its delay is
coupled to round length, not to reserved rate.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.core.errors import ConfigurationError
from repro.schedulers.base import Scheduler
from repro.sim.packet import Packet


class _Flow:
    __slots__ = ("quantum", "deficit", "queue")

    def __init__(self, quantum: float):
        self.quantum = quantum
        self.deficit = 0.0
        self.queue: Deque[Packet] = deque()


class DRRScheduler(Scheduler):
    """Deficit round robin over per-flow FIFOs.

    ``quantum`` is in bytes; flows' long-run shares are proportional to
    their quanta.  For rate semantics, pass quanta proportional to the
    desired rates (e.g. ``rate / min_rate * max_packet``).
    """

    def __init__(self, link_rate: float):
        super().__init__(link_rate)
        self._flows: Dict[Any, _Flow] = {}
        self._active: Deque[Any] = deque()  # round-robin list of backlogged flows
        self._grant_pending = True  # front flow has not received this visit's quantum

    def add_flow(self, flow_id: Any, quantum: float) -> None:
        if flow_id in self._flows:
            raise ConfigurationError(f"duplicate flow id: {flow_id!r}")
        if quantum <= 0:
            raise ConfigurationError("quantum must be positive")
        self._flows[flow_id] = _Flow(quantum)

    def enqueue(self, packet: Packet, now: float) -> None:
        try:
            flow = self._flows[packet.class_id]
        except KeyError:
            raise ConfigurationError(
                f"packet for unknown flow {packet.class_id!r}"
            ) from None
        self._note_enqueue(packet, now)
        flow.queue.append(packet)
        if len(flow.queue) == 1:
            flow.deficit = 0.0
            self._active.append(packet.class_id)
            if len(self._active) == 1:
                self._grant_pending = True

    def dequeue(self, now: float) -> Optional[Packet]:
        while self._active:
            flow_id = self._active[0]
            flow = self._flows[flow_id]
            if self._grant_pending:
                flow.deficit += flow.quantum
                self._grant_pending = False
            head = flow.queue[0]
            if flow.deficit >= head.size:
                packet = flow.queue.popleft()
                flow.deficit -= packet.size
                self._note_dequeue(packet, now)
                if not flow.queue:
                    flow.deficit = 0.0
                    self._active.popleft()
                    self._grant_pending = True
                return packet
            # Head does not fit: the flow keeps its deficit and yields its
            # turn; the next flow gets a fresh grant.
            self._active.rotate(-1)
            self._grant_pending = True
        return None
