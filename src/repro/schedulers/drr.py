"""Deficit Round Robin (Shreedhar & Varghese).

An O(1) rate-proportional baseline: flows take turns, each allowed to send
up to ``quantum_i`` bytes per round plus the deficit carried from rounds
where its head packet did not fit.  DRR approximates fair bandwidth shares
with no timestamps at all, which makes it the cheap end of the overhead
experiment (E9) and a useful contrast for delay experiments: its delay is
coupled to round length, not to reserved rate.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Optional

from repro.core.errors import ConfigurationError, SnapshotError
from repro.schedulers.base import Scheduler
from repro.sim.packet import Packet


class _Flow:
    __slots__ = ("quantum", "deficit", "queue")

    def __init__(self, quantum: float):
        self.quantum = quantum
        self.deficit = 0.0
        self.queue: Deque[Packet] = deque()


class DRRScheduler(Scheduler):
    """Deficit round robin over per-flow FIFOs.

    ``quantum`` is in bytes; flows' long-run shares are proportional to
    their quanta.  For rate semantics, pass quanta proportional to the
    desired rates (e.g. ``rate / min_rate * max_packet``).
    """

    def __init__(self, link_rate: float):
        super().__init__(link_rate)
        self._flows: Dict[Any, _Flow] = {}
        self._active: Deque[Any] = deque()  # round-robin list of backlogged flows
        self._grant_pending = True  # front flow has not received this visit's quantum
        self._max_packet = 0.0  # largest size accepted; bounds carried deficit

    def add_flow(self, flow_id: Any, quantum: float) -> None:
        if flow_id in self._flows:
            raise ConfigurationError(f"duplicate flow id: {flow_id!r}")
        if quantum <= 0:
            raise ConfigurationError("quantum must be positive")
        self._flows[flow_id] = _Flow(quantum)

    def enqueue(self, packet: Packet, now: float) -> None:
        try:
            flow = self._flows[packet.class_id]
        except KeyError:
            raise ConfigurationError(
                f"packet for unknown flow {packet.class_id!r}"
            ) from None
        self._note_enqueue(packet, now)
        if packet.size > self._max_packet:
            self._max_packet = packet.size
        flow.queue.append(packet)
        if len(flow.queue) == 1:
            flow.deficit = 0.0
            self._active.append(packet.class_id)
            if len(self._active) == 1:
                self._grant_pending = True

    def dequeue(self, now: float) -> Optional[Packet]:
        while self._active:
            flow_id = self._active[0]
            flow = self._flows[flow_id]
            if self._grant_pending:
                flow.deficit += flow.quantum
                self._grant_pending = False
            head = flow.queue[0]
            if flow.deficit >= head.size:
                packet = flow.queue.popleft()
                flow.deficit -= packet.size
                self._note_dequeue(packet, now)
                if not flow.queue:
                    flow.deficit = 0.0
                    self._active.popleft()
                    self._grant_pending = True
                return packet
            # Head does not fit: the flow keeps its deficit and yields its
            # turn; the next flow gets a fresh grant.
            self._active.rotate(-1)
            self._grant_pending = True
        return None

    # -- invariants (Watchdog / property tests) ------------------------------

    def check_invariants(self) -> None:
        """Verify Shreedhar & Varghese's bounds and internal consistency.

        * the active ring holds exactly the backlogged flows, once each;
        * deficits are non-negative; a flow that is not at the front (or
          is at the front but ungranted) carries strictly less than one
          max packet -- the deficit it kept when its head did not fit --
          while the granted front flow is bounded by quantum + carry;
        * idle flows hold no deficit (it is forfeited on drain);
        * the base-class packet/byte counters match the queues.
        """
        backlogged = {fid for fid, flow in self._flows.items() if flow.queue}
        ring = list(self._active)
        if len(set(ring)) != len(ring):
            raise AssertionError("duplicate flow in the DRR active ring")
        if set(ring) != backlogged:
            raise AssertionError(
                f"active ring {sorted(map(str, ring))} disagrees with "
                f"backlogged flows {sorted(map(str, backlogged))}"
            )
        granted_front = ring[0] if ring and not self._grant_pending else None
        for fid, flow in self._flows.items():
            if flow.deficit < 0:
                raise AssertionError(f"flow {fid!r} has negative deficit")
            if not flow.queue:
                if flow.deficit != 0.0:
                    raise AssertionError(
                        f"idle flow {fid!r} holds deficit {flow.deficit}"
                    )
                continue
            bound = flow.quantum if fid == granted_front else 0.0
            if self._max_packet and flow.deficit >= bound + self._max_packet:
                raise AssertionError(
                    f"deficit of {fid!r} ({flow.deficit}) exceeds "
                    f"{bound} + max packet ({self._max_packet})"
                )
        total_packets = sum(len(f.queue) for f in self._flows.values())
        total_bytes = sum(
            p.size for f in self._flows.values() for p in f.queue
        )
        if total_packets != self._backlog_packets:
            raise AssertionError(
                f"scheduler counts {self._backlog_packets} backlogged "
                f"packets, queues hold {total_packets}"
            )
        if abs(total_bytes - self._backlog_bytes) > 1e-6:
            raise AssertionError(
                f"scheduler counts {self._backlog_bytes} backlogged bytes, "
                f"queues hold {total_bytes}"
            )
        if self.total_enqueued != (
            self.total_dequeued + self.total_returned + self._backlog_packets
        ):
            raise AssertionError("packet conservation violated")

    # -- snapshot/restore (repro.persist) -----------------------------------

    def snapshot_state(self, add_packet: Callable[[Packet], int]) -> Dict[str, Any]:
        for flow_id in self._flows:
            if not isinstance(flow_id, (str, int)):
                raise SnapshotError(
                    f"flow id {flow_id!r} is not JSON-safe",
                    reason="unsupported-name",
                )
        return {
            "type": "DRR",
            "config": {"link_rate": self.link_rate},
            "counters": self._counters_doc(),
            "flows": [
                {
                    "id": flow_id,
                    "quantum": flow.quantum,
                    "deficit": flow.deficit,
                    "queue": [add_packet(p) for p in flow.queue],
                }
                for flow_id, flow in self._flows.items()
            ],
            "active": list(self._active),
            "grant_pending": self._grant_pending,
        }

    @classmethod
    def restore_state(
        cls, doc: Dict[str, Any], get_packet: Callable[[int], Packet]
    ) -> "DRRScheduler":
        expected = {"type", "config", "counters", "flows", "active", "grant_pending"}
        if set(doc) != expected:
            raise SnapshotError(
                f"malformed DRR snapshot: {sorted(map(str, doc))}",
                reason="unknown-field",
            )
        if doc["type"] != "DRR":
            raise SnapshotError(
                f"scheduler type mismatch: expected DRR, got {doc['type']!r}",
                reason="scheduler-type",
            )
        if set(doc["config"]) != {"link_rate"}:
            raise SnapshotError(
                "malformed DRR config document", reason="unknown-field"
            )
        sched = cls(doc["config"]["link_rate"])
        for fdoc in doc["flows"]:
            if set(fdoc) != {"id", "quantum", "deficit", "queue"}:
                raise SnapshotError(
                    f"malformed DRR flow document: {sorted(map(str, fdoc))}",
                    reason="unknown-field",
                )
            try:
                sched.add_flow(fdoc["id"], fdoc["quantum"])
            except ConfigurationError as exc:
                raise SnapshotError(str(exc), reason="bad-config") from exc
            flow = sched._flows[fdoc["id"]]
            flow.deficit = fdoc["deficit"]
            flow.queue.extend(get_packet(uid) for uid in fdoc["queue"])
            sched._backlog_packets += len(flow.queue)
            sched._backlog_bytes += sum(p.size for p in flow.queue)
        # The round-robin ring is rotation history we adopt, but its
        # membership must equal the backlogged flows.
        backlogged = {fid for fid, flow in sched._flows.items() if flow.queue}
        active = list(doc["active"])
        if set(active) != backlogged or len(set(active)) != len(active):
            raise SnapshotError(
                "stored DRR active ring disagrees with the restored queues",
                reason="ring-mismatch",
                context={
                    "stored": sorted(map(str, active)),
                    "derived": sorted(map(str, backlogged)),
                },
            )
        sched._active = deque(active)
        sched._grant_pending = bool(doc["grant_pending"])
        sched._restore_counters(doc["counters"])
        return sched
