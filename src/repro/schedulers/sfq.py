"""Start-time Fair Queueing (Goyal, Vin, Cheng).

SFQ is the smallest-start-time-first (SSF) member of the PFQ family the
paper cites in Section IV-C ("[12]").  Its system virtual time is simply
the start tag of the packet in service, which makes it cheap and robust
(no GPS emulation), at the cost of a looser delay bound than WF2Q+.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.core.errors import ConfigurationError
from repro.schedulers.base import Scheduler
from repro.sim.packet import Packet
from repro.util.heap import IndexedHeap


class _Flow:
    __slots__ = ("rate", "queue", "last_finish")

    def __init__(self, rate: float):
        self.rate = rate
        self.queue: Deque[Packet] = deque()
        self.last_finish = 0.0


class SFQScheduler(Scheduler):
    """Serve the flow whose head packet has the smallest start tag."""

    def __init__(self, link_rate: float):
        super().__init__(link_rate)
        self._flows: Dict[Any, _Flow] = {}
        self._starts: IndexedHeap[Any] = IndexedHeap()  # flow -> head start tag
        self._head_tags: Dict[Any, tuple] = {}  # flow -> (start, finish)
        self._vtime = 0.0

    def add_flow(self, flow_id: Any, rate: float) -> None:
        if flow_id in self._flows:
            raise ConfigurationError(f"duplicate flow id: {flow_id!r}")
        if rate <= 0:
            raise ConfigurationError("flow rate must be positive")
        self._flows[flow_id] = _Flow(rate)

    def enqueue(self, packet: Packet, now: float) -> None:
        try:
            flow = self._flows[packet.class_id]
        except KeyError:
            raise ConfigurationError(
                f"packet for unknown flow {packet.class_id!r}"
            ) from None
        self._note_enqueue(packet, now)
        flow.queue.append(packet)
        if len(flow.queue) == 1:
            self._tag_head(packet.class_id, flow)

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._starts:
            return None
        flow_id, start = self._starts.pop()
        _start, finish = self._head_tags.pop(flow_id)
        flow = self._flows[flow_id]
        packet = flow.queue.popleft()
        # SFQ's system virtual time is the start tag of the packet in
        # service.
        self._vtime = start
        flow.last_finish = finish
        packet.deadline = finish
        self._note_dequeue(packet, now)
        if flow.queue:
            self._tag_head(flow_id, flow)
        return packet

    def virtual_time(self) -> float:
        return self._vtime

    # -- internals --------------------------------------------------------

    def _tag_head(self, flow_id: Any, flow: _Flow) -> None:
        head = flow.queue[0]
        start = max(self._vtime, flow.last_finish)
        finish = start + head.size / flow.rate
        self._head_tags[flow_id] = (start, finish)
        self._starts.push(flow_id, start)
