"""Command-line interface: list and run the paper's experiments.

Usage::

    python -m repro list                 # experiment index
    python -m repro run E5               # one experiment, text report
    python -m repro run all --markdown   # everything, markdown
    python -m repro bench --compare      # tracked benches vs the baseline
    python -m repro chaos --runs 3       # seeded chaos sweep, all policies
    python -m repro stats --scenario e4  # telemetry snapshot of a live run
    python -m repro top --scenario chaos # live per-class terminal view
    python -m repro scenarios            # every canned scenario, one line each
    python -m repro verify --property all   # bounded-horizon verifier
    python -m repro serve --udp 127.0.0.1:9000 --control /tmp/repro.ctl
    python -m repro load 127.0.0.1:9000 --rate 2000
    python -m repro ctl /tmp/repro.ctl '{"op": "stats"}'
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List

from repro.experiments import run_all as runner
from repro.experiments.base import ExperimentResult


def _registry() -> Dict[str, object]:
    registry = {}
    for module in runner.ALL_EXPERIMENTS:
        short = module.__name__.rsplit(".", 1)[-1].split("_")[0].upper()
        registry[short] = module
    return registry


def _load_bench_harness():
    """Import ``benchmarks/baseline.py`` (not an installed package)."""
    import importlib.util

    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
        "benchmarks",
        "baseline.py",
    )
    if not os.path.exists(path):
        return None
    spec = importlib.util.spec_from_file_location("repro_bench_baseline", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _run_stats_command(args) -> int:
    from repro.obs import Sampler, build_scenario, to_csv, to_json, to_prometheus
    from repro.obs.core import telemetry_session

    with telemetry_session(record_packets=not args.no_packets,
                           capacity=args.ring):
        scenario = build_scenario(
            args.scenario, seed=args.seed,
            duration=args.duration, policy=args.policy,
        )
        sampler = Sampler(
            scenario.loop,
            scheduler=scenario.scheduler,
            link=scenario.link,
            period=args.sample_period,
            until=scenario.duration,
        )
        scenario.loop.run(until=scenario.duration)
        if scenario.finish is not None:
            scenario.finish()
        if args.format == "prometheus":
            text = to_prometheus(scheduler=scenario.scheduler,
                                 link=scenario.link)
        elif args.format == "csv":
            text = to_csv(sampler)
        else:
            text = to_json(
                sampler=sampler,
                scheduler=scenario.scheduler,
                link=scenario.link,
                recorder_tail=args.tail,
                include_series=args.series,
            )
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
        print(f"{args.format} stats written to {args.output}")
    else:
        print(text)
    return 0


def _run_top_command(args) -> int:
    from repro.obs import build_scenario, run_top
    from repro.obs.core import telemetry_session

    with telemetry_session():
        scenario = build_scenario(
            args.scenario, seed=args.seed,
            duration=args.duration, policy=args.policy,
        )
        run_top(
            scenario,
            refresh=args.refresh,
            wall_interval=args.interval,
        )
        if scenario.finish is not None:
            scenario.finish()
    return 0


def _add_scenario_arguments(parser, duration_help: str) -> None:
    from repro.obs.scenarios import SCENARIOS

    parser.add_argument(
        "--scenario", choices=SCENARIOS, default="chaos",
        help="which live scenario to observe (default: chaos)",
    )
    parser.add_argument("--seed", type=int, default=1, help="scenario seed")
    parser.add_argument(
        "--duration", type=float, default=None, help=duration_help
    )
    parser.add_argument(
        "--policy", default="raise",
        help="overload policy for the chaos scenario (default: raise)",
    )


def _run_chaos_command(args) -> int:
    from repro.core.hfsc import OVERLOAD_POLICIES
    from repro.sim.faults import run_chaos

    if args.policy == "all":
        policies = list(OVERLOAD_POLICIES)
    elif args.policy in OVERLOAD_POLICIES:
        policies = [args.policy]
    else:
        print(f"unknown policy {args.policy!r}; "
              f"expected one of {OVERLOAD_POLICIES} or 'all'", file=sys.stderr)
        return 2

    import contextlib

    from repro.obs.core import telemetry_session

    reports = []
    failed = 0
    for policy in policies:
        for offset in range(args.runs):
            seed = args.seed + offset
            # With --telemetry each run gets a fresh session so its
            # report's "telemetry" section (counters + flight-recorder
            # tail) covers exactly that run.
            session = (
                telemetry_session(record_packets=False)
                if args.telemetry
                else contextlib.nullcontext()
            )
            with session:
                result = run_chaos(seed, duration=args.duration, policy=policy)
                report = result.to_report()
            reports.append(report)
            violations = report["violations"]
            books = report["conservation"]
            status = "ok" if not violations and books["ok"] else "FAIL"
            if status == "FAIL":
                failed += 1
            print(
                f"chaos seed={seed} policy={policy:15} {status}  "
                f"served={len(result.served)} rejected={books['rejected']} "
                f"faults={len(report['faults_applied'])} "
                f"violations={len(violations)}"
            )
            for violation in violations:
                print(f"  - [{violation['kind']}] t={violation['time']:g} "
                      f"{violation['detail']}", file=sys.stderr)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump({"runs": reports, "failed": failed}, fh, indent=2)
        print(f"report written to {args.report}")
    return 1 if failed else 0


def main(argv: List[str] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # ``bench`` owns its own argparse (benchmarks/baseline.py); hand the
    # remaining argv straight through so --compare/--quick/etc. work.
    if argv and argv[0] == "bench":
        harness = _load_bench_harness()
        if harness is None:
            print("benchmarks/baseline.py not found (source checkout only)",
                  file=sys.stderr)
            return 2
        return harness.main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="H-FSC reproduction: run the paper's experiments",
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list all experiments")
    run_parser = subparsers.add_parser(
        "run", help="run experiment(s) or a checkpointable scenario"
    )
    run_parser.add_argument(
        "experiment",
        help="experiment id (e.g. E5), 'all', or a checkpointable "
             "scenario name (e.g. e4_phases; see 'list')",
    )
    run_parser.add_argument(
        "--markdown", action="store_true", help="emit markdown tables"
    )
    run_parser.add_argument(
        "--backend", choices=("tree", "calendar"), default="tree",
        help="H-FSC eligible-set backend for checkpointable scenarios",
    )
    run_parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="write crash-safe snapshots here (atomic tmp+rename)",
    )
    run_parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="checkpoint every N events (drive scenarios: every N packets)",
    )
    run_parser.add_argument(
        "--resume", metavar="FILE", default=None,
        help="restore from a snapshot file and continue the run",
    )
    run_parser.add_argument(
        "--crash-at", metavar="SPEC", default=None,
        help="kill the run at a crash point: event:K, packet:K or time:T "
             "(writes the checkpoint, exits 3)",
    )
    run_parser.add_argument(
        "--digest-out", metavar="PATH", default=None,
        help="write the finished run's departure-schedule digest here",
    )
    subparsers.add_parser(
        "bench", help="run the tracked benchmark set (see --help of 'bench')"
    )
    chaos_parser = subparsers.add_parser(
        "chaos", help="seeded chaos-injection sweep over the overload policies"
    )
    chaos_parser.add_argument("--seed", type=int, default=1, help="first seed")
    chaos_parser.add_argument(
        "--runs", type=int, default=1, help="number of seeds per policy"
    )
    chaos_parser.add_argument(
        "--duration", type=float, default=2.0, help="simulated seconds per run"
    )
    chaos_parser.add_argument(
        "--policy",
        default="all",
        help="overload policy to exercise, or 'all' (default)",
    )
    chaos_parser.add_argument(
        "--report", metavar="PATH", default=None,
        help="write the full JSON report (violations, fault logs) here",
    )
    chaos_parser.add_argument(
        "--telemetry", action="store_true",
        help="run with telemetry enabled; reports gain a 'telemetry' "
             "section (counters + flight-recorder tail)",
    )
    chaos_parser.add_argument(
        "--replay", metavar="REPORT.json", default=None,
        help="re-run the failing runs from a prior --report file and "
             "compare departure-schedule digests",
    )

    stats_parser = subparsers.add_parser(
        "stats", help="run a live scenario with telemetry and export metrics"
    )
    _add_scenario_arguments(
        stats_parser, "simulated seconds (default: scenario-specific)"
    )
    stats_parser.add_argument(
        "--format", choices=("json", "prometheus", "csv"), default="json",
        help="export format (default: json)",
    )
    stats_parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the export here instead of stdout ('-' = stdout)",
    )
    stats_parser.add_argument(
        "--sample-period", type=float, default=0.1,
        help="sampler period in simulated seconds (default: 0.1)",
    )
    stats_parser.add_argument(
        "--ring", type=int, default=4096,
        help="flight-recorder capacity in events (default: 4096)",
    )
    stats_parser.add_argument(
        "--tail", type=int, default=64,
        help="flight-recorder events in the JSON export (default: 64)",
    )
    stats_parser.add_argument(
        "--series", action="store_true",
        help="include the full per-class sampler timeseries in the JSON",
    )
    stats_parser.add_argument(
        "--no-packets", action="store_true",
        help="keep per-packet events out of the flight recorder",
    )

    top_parser = subparsers.add_parser(
        "top", help="live per-class terminal view of a running scenario"
    )
    _add_scenario_arguments(
        top_parser, "simulated seconds to run (default: scenario-specific)"
    )
    top_parser.add_argument(
        "--refresh", type=float, default=0.1,
        help="simulated seconds per frame (default: 0.1)",
    )
    top_parser.add_argument(
        "--interval", type=float, default=0.25,
        help="wall-clock seconds between frames (default: 0.25; 0 = as "
             "fast as the simulation runs)",
    )
    from repro.serve import cli as serve_cli

    serve_parser = subparsers.add_parser(
        "serve", help="run a scheduler backend as a wall-clock service"
    )
    serve_cli.add_serve_arguments(serve_parser)
    load_parser = subparsers.add_parser(
        "load", help="open-loop load generator against a running service"
    )
    serve_cli.add_load_arguments(load_parser)
    ctl_parser = subparsers.add_parser(
        "ctl", help="send JSON control requests to a running service"
    )
    serve_cli.add_ctl_arguments(ctl_parser)
    subparsers.add_parser(
        "scenarios", help="list every canned scenario with a description"
    )
    from repro.verify import cli as verify_cli

    verify_parser = subparsers.add_parser(
        "verify", help="bounded-horizon verifier: hunt for guarantee "
                       "violations and replay witnesses"
    )
    verify_cli.add_verify_arguments(verify_parser)

    args = parser.parse_args(argv)

    if args.command == "verify":
        return verify_cli.verify_command(args)

    if args.command == "serve":
        return serve_cli.serve_command(args)
    if args.command == "load":
        return serve_cli.load_command(args)
    if args.command == "ctl":
        return serve_cli.ctl_command(args)
    if args.command == "scenarios":
        return serve_cli.scenarios_command(args)
    if args.command == "chaos":
        if args.replay:
            from repro.persist.cli import replay_chaos_command

            return replay_chaos_command(args)
        return _run_chaos_command(args)
    if args.command == "stats":
        return _run_stats_command(args)
    if args.command == "top":
        return _run_top_command(args)

    registry = _registry()

    if args.command == "list":
        for short, module in registry.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{short:5} {doc}")
        from repro.persist.cli import scenario_names

        print("checkpointable scenarios (run with --checkpoint-every/"
              "--resume/--crash-at):")
        for name in scenario_names():
            print(f"      {name}")
        return 0

    # Checkpointable scenarios route to the persistence runner, either by
    # name or because a checkpoint flag was given.
    persist_flags = (args.checkpoint, args.checkpoint_every, args.resume,
                     args.crash_at, args.digest_out)
    from repro.persist.cli import run_scenario_command, scenario_names

    if args.experiment in scenario_names() or any(
        flag is not None for flag in persist_flags
    ):
        return run_scenario_command(args)

    if args.experiment.lower() == "all":
        return runner.main(["--markdown"] if args.markdown else [])
    key = args.experiment.upper()
    if key not in registry:
        print(f"unknown experiment {args.experiment!r}; try 'list'",
              file=sys.stderr)
        return 2
    result: ExperimentResult = registry[key].run()
    print(runner.to_markdown(result) if args.markdown else result.summary())
    return 0 if result.passed else 1


if __name__ == "__main__":
    sys.exit(main())
