"""Command-line interface: list and run the paper's experiments.

Usage::

    python -m repro list                 # experiment index
    python -m repro run E5               # one experiment, text report
    python -m repro run all --markdown   # everything, markdown
    python -m repro bench --compare      # tracked benches vs the baseline
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List

from repro.experiments import run_all as runner
from repro.experiments.base import ExperimentResult


def _registry() -> Dict[str, object]:
    registry = {}
    for module in runner.ALL_EXPERIMENTS:
        short = module.__name__.rsplit(".", 1)[-1].split("_")[0].upper()
        registry[short] = module
    return registry


def _load_bench_harness():
    """Import ``benchmarks/baseline.py`` (not an installed package)."""
    import importlib.util

    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
        "benchmarks",
        "baseline.py",
    )
    if not os.path.exists(path):
        return None
    spec = importlib.util.spec_from_file_location("repro_bench_baseline", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def main(argv: List[str] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # ``bench`` owns its own argparse (benchmarks/baseline.py); hand the
    # remaining argv straight through so --compare/--quick/etc. work.
    if argv and argv[0] == "bench":
        harness = _load_bench_harness()
        if harness is None:
            print("benchmarks/baseline.py not found (source checkout only)",
                  file=sys.stderr)
            return 2
        return harness.main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="H-FSC reproduction: run the paper's experiments",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list all experiments")
    run_parser = subparsers.add_parser("run", help="run experiment(s)")
    run_parser.add_argument("experiment", help="experiment id (e.g. E5) or 'all'")
    run_parser.add_argument(
        "--markdown", action="store_true", help="emit markdown tables"
    )
    subparsers.add_parser(
        "bench", help="run the tracked benchmark set (see --help of 'bench')"
    )
    args = parser.parse_args(argv)
    registry = _registry()

    if args.command == "list":
        for short, module in registry.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{short:5} {doc}")
        return 0

    if args.experiment.lower() == "all":
        return runner.main(["--markdown"] if args.markdown else [])
    key = args.experiment.upper()
    if key not in registry:
        print(f"unknown experiment {args.experiment!r}; try 'list'",
              file=sys.stderr)
        return 2
    result: ExperimentResult = registry[key].run()
    print(runner.to_markdown(result) if args.markdown else result.summary())
    return 0 if result.passed else 1


if __name__ == "__main__":
    sys.exit(main())
