"""Link-sharing accuracy: packet schedulers vs the fluid FSC ideal (E10).

The paper's stated goal for interior classes is to "minimize the
discrepancy between the actual services provided ... and the services
defined by the FSC link-sharing model".  Given the cumulative-service
series of a class under a packet scheduler and under the fluid ideal
(:class:`repro.core.fluid.FluidFSC`), these helpers quantify that
discrepancy as a sup-norm (bytes) and a time-integral (byte-seconds).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

Series = Sequence[Tuple[float, float]]


def _interpolate(series: Series, time: float) -> float:
    if not series:
        return 0.0
    if time <= series[0][0]:
        return series[0][1]
    if time >= series[-1][0]:
        return series[-1][1]
    lo, hi = 0, len(series) - 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if series[mid][0] <= time:
            lo = mid
        else:
            hi = mid
    t1, s1 = series[lo]
    t2, s2 = series[hi]
    if t2 == t1:
        return s2
    return s1 + (s2 - s1) * (time - t1) / (t2 - t1)


def series_difference(actual: Series, ideal: Series, times: Sequence[float]) -> List[float]:
    """actual(t) - ideal(t) sampled at the given times."""
    return [
        _interpolate(actual, t) - _interpolate(ideal, t) for t in times
    ]


def discrepancy_sup(actual: Series, ideal: Series, times: Sequence[float]) -> float:
    """sup_t |actual(t) - ideal(t)| over the sample times (bytes)."""
    return max(abs(d) for d in series_difference(actual, ideal, times))


def discrepancy_integral(
    actual: Series, ideal: Series, start: float, stop: float, dt: float
) -> float:
    """Integral of |actual - ideal| over [start, stop] (byte-seconds)."""
    if stop <= start or dt <= 0:
        raise ValueError("need stop > start and dt > 0")
    total = 0.0
    t = start
    while t < stop:
        total += abs(_interpolate(actual, t) - _interpolate(ideal, t)) * dt
        t += dt
    return total


def cumulative_series(served, class_id) -> List[Tuple[float, float]]:
    """Build a (time, cumulative bytes) series from served packets."""
    points: List[Tuple[float, float]] = [(0.0, 0.0)]
    total = 0.0
    for packet in sorted(
        (p for p in served if p.class_id == class_id and p.departed is not None),
        key=lambda p: p.departed,
    ):
        total += packet.size
        points.append((packet.departed, total))
    return points
