"""Analytical delay bounds from service curves (Sections II and VI).

For a session constrained by a token-bucket arrival envelope
``A(t) = min(peak * t, sigma + rho * t)`` and guaranteed a service curve
``S``, the worst-case delay is the maximum *horizontal* distance between
the arrival envelope and the service curve:

    d_max = sup_t ( S^{-1}(A(t)) - t )

Theorem 2 adds one maximum-size-packet transmission time for H-FSC.
These functions let the experiments print analytic bounds next to the
measured maxima, and the tests assert measurement <= bound.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.curves import INFINITY, ServiceCurve
from repro.core.errors import ConfigurationError


def token_bucket_envelope(sigma: float, rho: float, peak: float = math.inf):
    """Arrival envelope A(t) for a (sigma, rho, peak) token bucket."""
    if sigma < 0 or rho < 0:
        raise ConfigurationError("sigma and rho must be non-negative")

    def envelope(t: float) -> float:
        if t <= 0:
            return 0.0
        return min(peak * t, sigma + rho * t)

    return envelope


def service_curve_delay_bound(
    spec: ServiceCurve,
    sigma: float,
    rho: float,
    peak: float = math.inf,
) -> float:
    """Worst-case queueing delay for a (sigma, rho, peak) session on ``S``.

    Requires ``rho <= spec.rate`` for a finite bound (otherwise the queue
    grows without bound and the result is ``inf``).
    """
    if rho > spec.rate:
        return INFINITY
    envelope = token_bucket_envelope(sigma, rho, peak)
    # The supremum is attained at a breakpoint of either curve: candidates
    # are t = 0+, the envelope's peak/bucket intersection, and the service
    # curve's knee (mapped through the envelope).
    candidates = [1e-12]
    if peak != math.inf and peak > rho:
        candidates.append(sigma / (peak - rho))
    candidates.append(spec.d)
    # Also probe a geometric sweep for robustness against unusual shapes.
    probe = 1e-6
    while probe < 1e4:
        candidates.append(probe)
        probe *= 4.0
    worst = 0.0
    for t in candidates:
        demand = envelope(t)
        finish = spec.inverse(demand)
        if finish == INFINITY:
            return INFINITY
        worst = max(worst, finish - t)
    return max(worst, 0.0)


def hfsc_delay_bound(
    spec: ServiceCurve,
    sigma: float,
    rho: float,
    max_packet: float,
    link_rate: float,
    peak: float = math.inf,
) -> float:
    """Theorem 2: the service-curve bound plus one max-packet time."""
    if max_packet <= 0 or link_rate <= 0:
        raise ConfigurationError("max_packet and link_rate must be positive")
    base = service_curve_delay_bound(spec, sigma, rho, peak)
    if base == INFINITY:
        return INFINITY
    return base + max_packet / link_rate


def coupled_delay_bound(rate: float, sigma: float) -> float:
    """Delay bound of a *linear* curve: burst over rate.

    This is the coupling the paper criticizes: with only a rate parameter,
    the only way to cut delay is to reserve more bandwidth.
    """
    if rate <= 0:
        raise ConfigurationError("rate must be positive")
    return sigma / rate
