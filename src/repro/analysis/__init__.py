"""Analysis: delay bounds, audits, fairness metrics, link-sharing accuracy."""

from repro.analysis.audit import (
    backlogged_period_starts,
    service_curve_violation,
)
from repro.analysis.delay import (
    coupled_delay_bound,
    hfsc_delay_bound,
    service_curve_delay_bound,
)
from repro.analysis.fairness import (
    hierarchical_max_min,
    jain_index,
    normalized_service_spread,
    starvation_period,
    weighted_max_min,
)
from repro.analysis.linkshare import (
    discrepancy_integral,
    discrepancy_sup,
    series_difference,
)
from repro.analysis.predicates import (
    delay_bound_excess,
    eq1_shortfall,
    eq1_violations,
    linkshare_gap,
    max_packet_delay,
    window_service,
)

__all__ = [
    "service_curve_violation",
    "backlogged_period_starts",
    "eq1_shortfall",
    "eq1_violations",
    "max_packet_delay",
    "delay_bound_excess",
    "window_service",
    "linkshare_gap",
    "service_curve_delay_bound",
    "hfsc_delay_bound",
    "coupled_delay_bound",
    "jain_index",
    "starvation_period",
    "normalized_service_spread",
    "weighted_max_min",
    "hierarchical_max_min",
    "series_difference",
    "discrepancy_sup",
    "discrepancy_integral",
]
