"""Cross-scheduler fairness shoot-out (``repro bench --fairness``).

A fixed scenario matrix -- the Fig. 1 campus hierarchy with an idle
subtree, a skewed-weight tree, and leaf churn -- is replayed through
every hierarchical backend plus flat DRR.  For each (scenario, backend)
pair the per-leaf goodput over the steady windows is compared against
the **hierarchical weighted max-min allocation**
(:func:`repro.analysis.fairness.hierarchical_max_min`), the fluid
reference both HLS (by construction, arXiv:2108.09864) and H-FSC's
link-sharing curves (by configuration) target:

* ``worst_dev`` -- the largest per-leaf relative deviation of goodput
  from the max-min reference over any steady window;
* ``jain`` -- the minimum, over tree levels and windows, of Jain's
  fairness index across that level's normalized subtree goodputs
  (goodput / reference; exactly fair == 1.0);
* a departure-schedule digest, pinned by
  ``tests/golden/backend_schedules.json`` so the shoot-out doubles as
  golden-schedule coverage for every backend in the matrix.

The flat backends are expected to *fail* the hierarchical scenarios --
an idle child's surplus leaks to the whole link instead of staying in
its subtree -- which is the point of the comparison; the table records
by how much.  Workloads are strictly greedy (offered load is 1.15x each
leaf's reference allocation), so demands are finite, queues stay
bounded, and the reference allocation equals the infinite-demand one.

Run directly for the markdown table::

    PYTHONPATH=src python -m repro.analysis.shootout [--json]
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.fairness import hierarchical_max_min, jain_index
from repro.core.hierarchy import ClassSpec
from repro.persist.harness import schedule_digest
from repro.schedulers.registry import build_backend
from repro.sim.drive import Arrival, drive
from repro.sim.packet import Packet

#: Backends in the shoot-out, in table order.
SHOOTOUT_BACKENDS = ("hfsc", "hpfq", "cbq", "hls", "drr")

#: Offered load per greedy leaf, as a multiple of its reference
#: allocation.  Strictly > 1 keeps every measured leaf backlogged in its
#: window; close to 1 keeps queues short enough to drain between phases.
GREED = 1.15

LINK_RATE = 450_000.0


@dataclass(frozen=True)
class Phase:
    """One activity phase: which leaves are greedy, and when to measure."""

    start: float
    stop: float  # arrivals end here; leave a drain gap before the next phase
    greedy: Tuple[str, ...]
    window: Tuple[float, float]


@dataclass(frozen=True)
class Scenario:
    """A fixed workload of the matrix: a weighted tree plus phases."""

    name: str
    summary: str
    tree: Tuple[Tuple[str, Optional[str], float], ...]  # (name, parent, rate)
    sizes: Mapping[str, float]  # leaf -> packet size (bytes)
    phases: Tuple[Phase, ...]
    until: float
    link_rate: float = LINK_RATE

    @property
    def leaves(self) -> List[str]:
        parents = {parent for _, parent, _ in self.tree if parent is not None}
        return [name for name, _, _ in self.tree if name not in parents]

    def specs(self) -> List[ClassSpec]:
        return [
            ClassSpec(name, parent=parent, rate=rate)
            for name, parent, rate in self.tree
        ]

    def reference(self, phase: Phase) -> Dict[str, float]:
        """The hierarchical max-min allocation for a phase's demands."""
        return hierarchical_max_min(
            self.link_rate, self.tree, self.demands(phase)
        )

    def demands(self, phase: Phase) -> Dict[str, float]:
        offered = self.offered(phase)
        return {leaf: offered.get(leaf, 0.0) for leaf in self.leaves}

    def offered(self, phase: Phase) -> Dict[str, float]:
        """Offered rate per greedy leaf: GREED x its reference share.

        Computed from the infinite-demand allocation; since every greedy
        leaf then offers more than that share, the finite-demand
        reference coincides with it.
        """
        saturated = {
            leaf: (self.link_rate if leaf in phase.greedy else 0.0)
            for leaf in self.leaves
        }
        ideal = hierarchical_max_min(self.link_rate, self.tree, saturated)
        return {leaf: GREED * ideal[leaf] for leaf in phase.greedy}

    def arrivals(self) -> List[Arrival]:
        rows: List[Arrival] = []
        for phase in self.phases:
            for leaf, rate in sorted(self.offered(phase).items()):
                size = self.sizes[leaf]
                interval = size / rate
                t = phase.start
                while t < phase.stop:
                    rows.append((t, leaf, size))
                    t += interval
        return rows


_CAMPUS_TREE = (
    ("cmu", None, 25.0 / 45.0 * LINK_RATE),
    ("pitt", None, 20.0 / 45.0 * LINK_RATE),
    ("cmu.av", "cmu", 12.0 / 45.0 * LINK_RATE),
    ("cmu.data", "cmu", 13.0 / 45.0 * LINK_RATE),
    ("pitt.av", "pitt", 12.0 / 45.0 * LINK_RATE),
    ("pitt.data", "pitt", 8.0 / 45.0 * LINK_RATE),
    ("cmu.av.audio", "cmu.av", 3.0 / 45.0 * LINK_RATE),
    ("cmu.av.video", "cmu.av", 9.0 / 45.0 * LINK_RATE),
)

SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="campus",
            summary="Fig. 1 campus tree, video subtree idle: surplus must "
                    "stay inside cmu.av (flat schedulers leak it link-wide)",
            tree=_CAMPUS_TREE,
            sizes={"cmu.av.audio": 300.0, "cmu.av.video": 1000.0,
                   "cmu.data": 1500.0, "pitt.av": 1000.0, "pitt.data": 640.0},
            phases=(
                Phase(0.0, 5.5,
                      ("cmu.av.audio", "cmu.data", "pitt.av", "pitt.data"),
                      window=(0.5, 5.4)),
            ),
            until=6.5,
        ),
        Scenario(
            name="skewed",
            summary="8:2 agencies, 7:1 leaves, one idle leaf: heavily "
                    "skewed weights stress quantum granularity",
            tree=(
                ("heavy", None, 0.8 * LINK_RATE),
                ("light", None, 0.2 * LINK_RATE),
                ("heavy.big", "heavy", 0.7 * LINK_RATE),
                ("heavy.small", "heavy", 0.1 * LINK_RATE),
                ("light.idle", "light", 0.1 * LINK_RATE),
                ("light.lone", "light", 0.1 * LINK_RATE),
            ),
            sizes={"heavy.big": 1500.0, "heavy.small": 300.0,
                   "light.idle": 1000.0, "light.lone": 640.0},
            phases=(
                Phase(0.0, 5.5, ("heavy.big", "heavy.small", "light.lone"),
                      window=(0.5, 5.4)),
            ),
            until=6.5,
        ),
        Scenario(
            name="churn",
            summary="leaves activate and drain across three phases: ring "
                    "membership and redistribution under churn",
            tree=(
                ("left", None, 0.5 * LINK_RATE),
                ("z", None, 0.5 * LINK_RATE),
                ("left.x", "left", 0.25 * LINK_RATE),
                ("left.y", "left", 0.25 * LINK_RATE),
            ),
            sizes={"left.x": 1000.0, "left.y": 640.0, "z": 1500.0},
            phases=(
                Phase(0.0, 2.5, ("left.x", "z"), window=(0.5, 2.4)),
                Phase(3.0, 5.5, ("left.x", "left.y", "z"), window=(3.5, 5.4)),
                Phase(6.0, 8.5, ("left.y", "z"), window=(6.5, 8.4)),
            ),
            until=9.5,
        ),
    )
}


def _window_goodput(
    served: Sequence[Packet], window: Tuple[float, float]
) -> Dict[str, float]:
    t0, t1 = window
    bytes_by_class: Dict[str, float] = {}
    for packet in served:
        if packet.departed is not None and t0 < packet.departed <= t1:
            bytes_by_class[packet.class_id] = (
                bytes_by_class.get(packet.class_id, 0.0) + packet.size
            )
    return {cid: total / (t1 - t0) for cid, total in bytes_by_class.items()}


def _levels(
    tree: Sequence[Tuple[str, Optional[str], float]]
) -> Dict[int, List[str]]:
    depth: Dict[Optional[str], int] = {None: 0}
    levels: Dict[int, List[str]] = {}
    for name, parent, _ in tree:
        depth[name] = depth[parent] + 1
        levels.setdefault(depth[name], []).append(name)
    return levels


def _subtree_sum(
    tree: Sequence[Tuple[str, Optional[str], float]],
    leaf_values: Mapping[str, float],
) -> Dict[str, float]:
    """Roll leaf values up: every node gets the sum over its subtree."""
    children: Dict[str, List[str]] = {}
    for name, parent, _ in tree:
        children.setdefault(name, [])
        if parent is not None:
            children.setdefault(parent, []).append(name)
    totals: Dict[str, float] = {}
    for name, _, _ in reversed(tree):  # parents listed first -> reverse
        kids = children[name]
        if kids:
            totals[name] = sum(totals[kid] for kid in kids)
        else:
            totals[name] = leaf_values.get(name, 0.0)
    return totals


@dataclass
class PhaseResult:
    window: Tuple[float, float]
    worst_dev: float
    jain_by_level: Dict[int, float]
    goodput: Dict[str, float] = field(default_factory=dict)
    reference: Dict[str, float] = field(default_factory=dict)


def evaluate_phase(
    scenario: Scenario, phase: Phase, served: Sequence[Packet]
) -> PhaseResult:
    reference = scenario.reference(phase)
    goodput = _window_goodput(served, phase.window)
    worst = 0.0
    for leaf, ref in reference.items():
        if ref <= 0.0:
            continue
        worst = max(worst, abs(goodput.get(leaf, 0.0) - ref) / ref)
    ref_subtree = _subtree_sum(scenario.tree, reference)
    got_subtree = _subtree_sum(scenario.tree, goodput)
    jain_by_level: Dict[int, float] = {}
    for level, names in _levels(scenario.tree).items():
        shares = [
            got_subtree[name] / ref_subtree[name]
            for name in names if ref_subtree[name] > 0.0
        ]
        if shares:
            jain_by_level[level] = jain_index(shares)
    return PhaseResult(
        window=phase.window,
        worst_dev=worst,
        jain_by_level=jain_by_level,
        goodput=goodput,
        reference=reference,
    )


def run_backend(scenario: Scenario, backend: str) -> Dict[str, Any]:
    """One (scenario, backend) cell: drive, measure, digest."""
    scheduler = build_backend(backend, scenario.link_rate, scenario.specs())
    arrivals = scenario.arrivals()
    start = time.perf_counter()
    served = drive(scheduler, arrivals, until=scenario.until)
    elapsed = time.perf_counter() - start
    phases = [
        evaluate_phase(scenario, phase, served) for phase in scenario.phases
    ]
    return {
        "backend": backend,
        "scenario": scenario.name,
        "worst_dev": max(p.worst_dev for p in phases),
        "jain": min(
            min(p.jain_by_level.values()) for p in phases if p.jain_by_level
        ),
        "jain_by_level": {
            level: min(p.jain_by_level[level] for p in phases
                       if level in p.jain_by_level)
            for p in phases for level in p.jain_by_level
        },
        "phases": phases,
        "packets": len(served),
        "pkts_per_sec": len(served) / elapsed if elapsed > 0 else 0.0,
        "digest": schedule_digest(
            [(p.class_id, p.size, p.departed, p.via_realtime) for p in served]
        ),
    }


def run_shootout(
    backends: Sequence[str] = SHOOTOUT_BACKENDS,
    scenarios: Sequence[str] = tuple(SCENARIOS),
) -> Dict[str, Any]:
    """The full matrix: ``results[scenario][backend]`` cells."""
    return {
        name: {
            backend: run_backend(SCENARIOS[name], backend)
            for backend in backends
        }
        for name in scenarios
    }


def to_markdown(results: Dict[str, Any]) -> str:
    """The fairness-vs-overhead table (docs/PERFORMANCE.md, CI artifact)."""
    lines = [
        "| scenario | backend | worst dev vs max-min | Jain (min/level) "
        "| kpkt/s |",
        "|---|---|---|---|---|",
    ]
    for scenario, cells in results.items():
        for backend, cell in cells.items():
            jain = " ".join(
                f"L{level}:{value:.4f}"
                for level, value in sorted(cell["jain_by_level"].items())
            )
            lines.append(
                f"| {scenario} | {backend} | {cell['worst_dev'] * 100:.2f}% "
                f"| {jain} | {cell['pkts_per_sec'] / 1e3:.0f} |"
            )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true",
                        help="emit the raw results as JSON")
    parser.add_argument("--backends", default=",".join(SHOOTOUT_BACKENDS),
                        help="comma-separated backend list")
    parser.add_argument("--output", metavar="PATH", default=None,
                        help="also write the table/JSON here")
    args = parser.parse_args(argv)
    results = run_shootout(backends=tuple(args.backends.split(",")))
    if args.json:
        doc = {
            scenario: {
                backend: {
                    key: value for key, value in cell.items()
                    if key != "phases"
                }
                for backend, cell in cells.items()
            }
            for scenario, cells in results.items()
        }
        text = json.dumps(doc, indent=2, sort_keys=True)
    else:
        text = to_markdown(results)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
