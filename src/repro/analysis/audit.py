"""Formal audits of scheduler output against the paper's definitions.

:func:`service_curve_violation` implements eq. (1) of the paper exactly:
a session is guaranteed curve ``S`` iff at every packet departure time
``t2`` there exists a backlogged-period start ``t1 <= t2`` with

    w(t2) - w(t1) >= S(t2 - t1).

The function reconstructs the backlogged periods from the arrival and
departure records and returns the worst shortfall (in service units; 0
means the guarantee held exactly, packetized schedulers are entitled to
one max-packet of slack per Theorem 2).

This is the ground-truth check behind the experiments' simpler per-packet
deadline audits: deadlines are an implementation artifact, eq. (1) is the
contract.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.curves import ServiceCurve
from repro.sim.packet import Packet

Arrival = Tuple[float, object, float]


def backlogged_period_starts(
    arrivals: Sequence[Arrival], served: Sequence[Packet], class_id
) -> List[float]:
    """Start times of the class's backlogged periods, from the records."""
    events: List[Tuple[float, int, float]] = []
    for time, cid, size in arrivals:
        if cid == class_id:
            events.append((time, 0, size))  # arrivals first on ties
    for packet in served:
        if packet.class_id == class_id and packet.departed is not None:
            events.append((packet.departed, 1, -packet.size))
    events.sort()
    starts: List[float] = []
    backlog = 0.0
    for time, _kind, delta in events:
        if backlog <= 1e-9 and delta > 0:
            starts.append(time)
        backlog += delta
    return starts


def service_curve_violation(
    arrivals: Sequence[Arrival],
    served: Sequence[Packet],
    class_id,
    spec: ServiceCurve,
) -> float:
    """Worst eq. (1) shortfall for ``class_id`` (0.0 = never violated).

    For every departure time ``t2`` of the class, computes
    ``min over t1 in backlog starts <= t2 of  S(t2 - t1) - (w(t2) - w(t1))``
    clipped at 0, and returns the maximum over departures.  ``w`` counts
    the class's departed bytes.
    """
    starts = backlogged_period_starts(arrivals, served, class_id)
    if not starts:
        return 0.0
    # Cumulative service at each departure.
    departures: List[Tuple[float, float]] = []
    total = 0.0
    for packet in sorted(
        (p for p in served if p.class_id == class_id and p.departed is not None),
        key=lambda p: p.departed,
    ):
        total += packet.size
        departures.append((packet.departed, total))

    def w(time: float) -> float:
        value = 0.0
        for departed, cumulative in departures:
            if departed <= time + 1e-12:
                value = cumulative
            else:
                break
        return value

    worst = 0.0
    start_w = [(t1, w(t1)) for t1 in starts]
    for t2, w2 in departures:
        best = None
        for t1, w1 in start_w:
            if t1 > t2 + 1e-12:
                break
            shortfall = spec.value(t2 - t1) - (w2 - w1)
            if best is None or shortfall < best:
                best = shortfall
        if best is not None:
            worst = max(worst, best)
    return max(0.0, worst)


def audit_guarantees(
    arrivals: Sequence[Arrival],
    served: Sequence[Packet],
    guarantees: Mapping[object, ServiceCurve],
    slack: float = 0.0,
) -> Dict[object, float]:
    """Eq. (1) shortfalls beyond ``slack`` for a set of classes at once.

    Returns ``{class_id: excess}`` only for classes whose worst shortfall
    exceeds ``slack`` (Theorem 2 entitles a packetized scheduler to one
    max-packet of slack); an empty dict means every guarantee held.  This
    is the watchdog's bulk entry point.
    """
    violations: Dict[object, float] = {}
    for class_id, spec in guarantees.items():
        worst = service_curve_violation(arrivals, served, class_id, spec)
        if worst > slack:
            violations[class_id] = worst - slack
    return violations
