"""Formal audits of scheduler output against the paper's definitions.

The actual predicates live in :mod:`repro.analysis.predicates` -- pure
functions of the packet record shared by the chaos Watchdog, the
adversarial verifier's replay bridge and the tests, so every consumer
agrees on what counts as a violation.  This module keeps the historical
audit-facing names:

* :func:`service_curve_violation` implements eq. (1) of the paper
  exactly: a session is guaranteed curve ``S`` iff at every packet
  departure time ``t2`` there exists a backlogged-period start
  ``t1 <= t2`` with ``w(t2) - w(t1) >= S(t2 - t1)``.  It returns the
  worst shortfall (in service units; 0 means the guarantee held
  exactly, packetized schedulers are entitled to one max-packet of
  slack per Theorem 2).
* :func:`audit_guarantees` is the watchdog's bulk entry point.

Deadlines are an implementation artifact, eq. (1) is the contract.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.analysis.predicates import (
    Arrival,
    backlogged_period_starts,
    eq1_shortfall,
    eq1_violations,
)
from repro.core.curves import ServiceCurve
from repro.sim.packet import Packet

__all__ = [
    "Arrival",
    "backlogged_period_starts",
    "service_curve_violation",
    "audit_guarantees",
]


def service_curve_violation(
    arrivals: Sequence[Arrival],
    served: Sequence[Packet],
    class_id,
    spec: ServiceCurve,
) -> float:
    """Worst eq. (1) shortfall for ``class_id`` (0.0 = never violated)."""
    return eq1_shortfall(arrivals, served, class_id, spec)


def audit_guarantees(
    arrivals: Sequence[Arrival],
    served: Sequence[Packet],
    guarantees: Mapping[object, ServiceCurve],
    slack: float = 0.0,
) -> Dict[object, float]:
    """Eq. (1) shortfalls beyond ``slack`` for a set of classes at once.

    Returns ``{class_id: excess}`` only for classes whose worst shortfall
    exceeds ``slack``; an empty dict means every guarantee held.
    """
    return eq1_violations(arrivals, served, guarantees, slack)
