"""Pure violation predicates: the single source of truth for "violated".

The eq. (1) service-curve audit, the Theorem-2 delay check and the
link-sharing gap measurement used to live scattered across
``analysis/audit.py``, ``analysis/delay.py`` and ad-hoc test helpers.
They are consolidated here as *pure functions of the packet record* --
no scheduler handles, no event loop -- so that every consumer agrees on
what counts as a violation:

* the chaos :class:`~repro.sim.faults.Watchdog` (via
  :func:`repro.analysis.audit.audit_guarantees`, which delegates here);
* the adversarial verifier's replay bridge
  (:mod:`repro.verify.bridge`), which re-checks solver counterexamples
  against the real scheduler with these exact predicates;
* the test suite.

Every predicate takes the same record shape the simulator produces:
``arrivals`` as ``(time, class_id, size)`` tuples and ``served`` as
:class:`~repro.sim.packet.Packet` objects with ``departed`` stamped.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.curves import ServiceCurve
from repro.sim.packet import Packet

Arrival = Tuple[float, object, float]


def backlogged_period_starts(
    arrivals: Sequence[Arrival], served: Sequence[Packet], class_id
) -> List[float]:
    """Start times of the class's backlogged periods, from the records."""
    events: List[Tuple[float, int, float]] = []
    for time, cid, size in arrivals:
        if cid == class_id:
            events.append((time, 0, size))  # arrivals first on ties
    for packet in served:
        if packet.class_id == class_id and packet.departed is not None:
            events.append((packet.departed, 1, -packet.size))
    events.sort()
    starts: List[float] = []
    backlog = 0.0
    for time, _kind, delta in events:
        if backlog <= 1e-9 and delta > 0:
            starts.append(time)
        backlog += delta
    return starts


def eq1_shortfall(
    arrivals: Sequence[Arrival],
    served: Sequence[Packet],
    class_id,
    spec: ServiceCurve,
) -> float:
    """Worst eq. (1) shortfall for ``class_id`` (0.0 = never violated).

    Implements eq. (1) of the paper exactly: a session is guaranteed
    curve ``S`` iff at every packet departure time ``t2`` there exists a
    backlogged-period start ``t1 <= t2`` with
    ``w(t2) - w(t1) >= S(t2 - t1)``.  For every departure time ``t2`` of
    the class, computes
    ``min over t1 in backlog starts <= t2 of  S(t2 - t1) - (w(t2) - w(t1))``
    clipped at 0, and returns the maximum over departures.  ``w`` counts
    the class's departed bytes.
    """
    starts = backlogged_period_starts(arrivals, served, class_id)
    if not starts:
        return 0.0
    # Cumulative service at each departure.
    departures: List[Tuple[float, float]] = []
    total = 0.0
    for packet in sorted(
        (p for p in served if p.class_id == class_id and p.departed is not None),
        key=lambda p: p.departed,
    ):
        total += packet.size
        departures.append((packet.departed, total))

    def w(time: float) -> float:
        value = 0.0
        for departed, cumulative in departures:
            if departed <= time + 1e-12:
                value = cumulative
            else:
                break
        return value

    worst = 0.0
    start_w = [(t1, w(t1)) for t1 in starts]
    for t2, w2 in departures:
        best = None
        for t1, w1 in start_w:
            if t1 > t2 + 1e-12:
                break
            shortfall = spec.value(t2 - t1) - (w2 - w1)
            if best is None or shortfall < best:
                best = shortfall
        if best is not None:
            worst = max(worst, best)
    return max(0.0, worst)


def eq1_violations(
    arrivals: Sequence[Arrival],
    served: Sequence[Packet],
    guarantees: Mapping[object, ServiceCurve],
    slack: float = 0.0,
) -> Dict[object, float]:
    """Eq. (1) shortfalls beyond ``slack`` for a set of classes at once.

    Returns ``{class_id: excess}`` only for classes whose worst shortfall
    exceeds ``slack`` (Theorem 2 entitles a packetized scheduler to one
    max-packet of slack); an empty dict means every guarantee held.
    """
    violations: Dict[object, float] = {}
    for class_id, spec in guarantees.items():
        worst = eq1_shortfall(arrivals, served, class_id, spec)
        if worst > slack:
            violations[class_id] = worst - slack
    return violations


def max_packet_delay(served: Sequence[Packet], class_id) -> float:
    """Largest departure-minus-creation delay of the class's packets."""
    worst = 0.0
    for packet in served:
        if packet.class_id == class_id and packet.departed is not None:
            worst = max(worst, packet.departed - packet.created)
    return worst


def delay_bound_excess(
    served: Sequence[Packet], class_id, bound: float
) -> float:
    """How far the class's worst packet delay exceeds ``bound`` (0 = held).

    ``bound`` is typically :func:`repro.analysis.delay.hfsc_delay_bound`
    (Theorem 2: the service-curve bound plus one max-packet time).
    """
    return max(0.0, max_packet_delay(served, class_id) - bound)


def window_service(
    served: Sequence[Packet], class_id, start: float, stop: float
) -> float:
    """Bytes of ``class_id`` fully transmitted within ``(start, stop]``."""
    return sum(
        p.size for p in served
        if p.class_id == class_id and p.departed is not None
        and start < p.departed <= stop + 1e-9
    )


def linkshare_gap(
    served: Sequence[Packet],
    class_id,
    fair_rate: float,
    start: float,
    stop: float,
) -> float:
    """Shortfall of a class against its ideal link share over a window.

    ``fair_rate`` is the class's ideal link-sharing rate (its share of
    the link, in bytes/second) assuming it stays backlogged throughout
    ``[start, stop]``.  Positive values measure the Section III-C
    real-time/link-sharing conflict: service the class's fair share
    promised but real-time guarantees elsewhere consumed.
    """
    ideal = fair_rate * (stop - start)
    return max(0.0, ideal - window_service(served, class_id, start, stop))
