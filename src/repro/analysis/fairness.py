"""Fairness metrics (Section III-B, Section VI) and the hierarchical
max-min reference allocation.

Measurements used by the fairness experiments and the cross-scheduler
shoot-out (:mod:`repro.analysis.shootout`):

* :func:`starvation_period` -- the longest interval in which a backlogged
  class received no service after a given time; the punishment signature
  of SCED/virtual clock (large) versus H-FSC (bounded by packet times).
* :func:`normalized_service_spread` -- the worst spread of normalized
  service (service divided by configured rate) across continuously
  backlogged classes over a window: the packetized analogue of virtual
  time discrepancy.
* :func:`jain_index` -- Jain's fairness index over a share vector.
* :func:`weighted_max_min` / :func:`hierarchical_max_min` -- the fluid
  reference allocations every scheduler in the shoot-out is judged
  against.  The hierarchical variant is the allocation HLS provably
  converges to (arXiv:2108.09864) and the one H-FSC's link-sharing
  curves aim for; the per-flow GPS bounds of arXiv:1804.08034 are its
  single-level special case.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.packet import Packet


def jain_index(shares: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 is perfectly fair, 1/n worst."""
    if not shares:
        raise ValueError("shares must be non-empty")
    total = sum(shares)
    squares = sum(s * s for s in shares)
    if squares == 0:
        return 1.0
    return total * total / (len(shares) * squares)


def weighted_max_min(
    capacity: float,
    weights: Mapping[object, float],
    demands: Mapping[object, float],
) -> Dict[object, float]:
    """Weighted max-min (water-filling) over one set of competitors.

    Each competitor receives ``min(demand, fair share)``; capacity left
    by competitors whose demand is below their weighted share is
    redistributed over the rest in weight proportion, iterated to the
    fixed point.  Runs in O(n^2) worst case, which is fine for class
    trees of configuration size.
    """
    if set(weights) != set(demands):
        raise ValueError("weights and demands must cover the same keys")
    allocation: Dict[object, float] = {}
    active = {k for k in weights if demands[k] > 0}
    for key in weights:
        if key not in active:
            allocation[key] = 0.0
    remaining = capacity
    while active:
        total_weight = sum(weights[k] for k in active)
        saturated = [
            k for k in active
            if demands[k] <= remaining * weights[k] / total_weight + 1e-12
        ]
        if not saturated:
            for k in active:
                allocation[k] = remaining * weights[k] / total_weight
            break
        for k in saturated:
            allocation[k] = demands[k]
            remaining -= demands[k]
            active.discard(k)
    return allocation


def hierarchical_max_min(
    capacity: float,
    tree: Sequence[Tuple[object, Optional[object], float]],
    demands: Mapping[object, float],
) -> Dict[object, float]:
    """The hierarchical weighted max-min allocation (leaf -> rate).

    ``tree`` lists ``(name, parent, weight)`` rows, parents before
    children (``parent is None`` for top-level classes); ``demands``
    gives each *leaf*'s offered load.  Top-down water-filling: the link
    capacity is split over the top-level classes by weighted max-min
    against their subtree demands, then each class's grant is split over
    its children the same way, recursively.  This is the allocation a
    fluid server honouring the hierarchy would produce -- the reference
    both HLS (by construction) and H-FSC's link-sharing curves (by
    configuration) target, and what the flat schedulers miss whenever an
    interior class's surplus should stay inside its subtree.
    """
    children: Dict[object, List[Tuple[object, float]]] = {None: []}
    for name, parent, weight in tree:
        if name in children:
            raise ValueError(f"duplicate class {name!r}")
        if parent not in children:
            raise ValueError(f"parent {parent!r} of {name!r} not seen yet")
        children[name] = []
        children[parent].append((name, weight))

    def subtree_demand(name: object) -> float:
        kids = children[name]
        if not kids:
            return demands.get(name, 0.0)
        return sum(subtree_demand(child) for child, _ in kids)

    allocation: Dict[object, float] = {}

    def descend(name: Optional[object], grant: float) -> None:
        kids = children[name]
        if not kids:
            allocation[name] = grant
            return
        shares = weighted_max_min(
            grant,
            {child: weight for child, weight in kids},
            {child: subtree_demand(child) for child, _ in kids},
        )
        for child, _ in kids:
            descend(child, shares[child])

    descend(None, capacity)
    return allocation


def starvation_period(
    served: Sequence[Packet],
    class_id,
    start: float,
    stop: float,
) -> float:
    """Longest gap without a departure of ``class_id`` within [start, stop].

    The caller is responsible for choosing a window in which the class is
    known to be continuously backlogged, so every gap is genuine denial of
    service rather than lack of demand.
    """
    if stop <= start:
        raise ValueError("stop must be after start")
    times = sorted(
        p.departed for p in served
        if p.class_id == class_id and p.departed is not None
        and start <= p.departed <= stop
    )
    edges = [start] + times + [stop]
    return max(b - a for a, b in zip(edges, edges[1:]))


def normalized_service_spread(
    served: Sequence[Packet],
    rates: Dict[object, float],
    window: Tuple[float, float],
) -> float:
    """Worst spread of service/rate across classes over prefixes of a window.

    For each departure instant t in the window, computes
    ``max_i w_i(t)/r_i - min_i w_i(t)/r_i`` where ``w_i`` counts bytes of
    class i delivered inside the window; returns the maximum over t.  For
    continuously backlogged classes under a perfectly fair (fluid) server
    this is 0; packet servers bound it by a few packet times.
    """
    start, stop = window
    events: List[Tuple[float, object, float]] = sorted(
        (p.departed, p.class_id, p.size)
        for p in served
        if p.class_id in rates and p.departed is not None
        and start < p.departed <= stop
    )
    service = {cid: 0.0 for cid in rates}
    worst = 0.0
    for time, cid, size in events:
        service[cid] += size
        normalized = [service[c] / rates[c] for c in rates]
        worst = max(worst, max(normalized) - min(normalized))
    return worst
