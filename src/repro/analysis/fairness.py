"""Fairness metrics (Section III-B, Section VI).

Three measurements used by the fairness experiments:

* :func:`starvation_period` -- the longest interval in which a backlogged
  class received no service after a given time; the punishment signature
  of SCED/virtual clock (large) versus H-FSC (bounded by packet times).
* :func:`normalized_service_spread` -- the worst spread of normalized
  service (service divided by configured rate) across continuously
  backlogged classes over a window: the packetized analogue of virtual
  time discrepancy.
* :func:`jain_index` -- Jain's fairness index over a share vector.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.sim.packet import Packet


def jain_index(shares: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 is perfectly fair, 1/n worst."""
    if not shares:
        raise ValueError("shares must be non-empty")
    total = sum(shares)
    squares = sum(s * s for s in shares)
    if squares == 0:
        return 1.0
    return total * total / (len(shares) * squares)


def starvation_period(
    served: Sequence[Packet],
    class_id,
    start: float,
    stop: float,
) -> float:
    """Longest gap without a departure of ``class_id`` within [start, stop].

    The caller is responsible for choosing a window in which the class is
    known to be continuously backlogged, so every gap is genuine denial of
    service rather than lack of demand.
    """
    if stop <= start:
        raise ValueError("stop must be after start")
    times = sorted(
        p.departed for p in served
        if p.class_id == class_id and p.departed is not None
        and start <= p.departed <= stop
    )
    edges = [start] + times + [stop]
    return max(b - a for a, b in zip(edges, edges[1:]))


def normalized_service_spread(
    served: Sequence[Packet],
    rates: Dict[object, float],
    window: Tuple[float, float],
) -> float:
    """Worst spread of service/rate across classes over prefixes of a window.

    For each departure instant t in the window, computes
    ``max_i w_i(t)/r_i - min_i w_i(t)/r_i`` where ``w_i`` counts bytes of
    class i delivered inside the window; returns the maximum over t.  For
    continuously backlogged classes under a perfectly fair (fluid) server
    this is 0; packet servers bound it by a few packet times.
    """
    start, stop = window
    events: List[Tuple[float, object, float]] = sorted(
        (p.departed, p.class_id, p.size)
        for p in served
        if p.class_id in rates and p.departed is not None
        and start < p.departed <= stop
    )
    service = {cid: 0.0 for cid in rates}
    worst = 0.0
    for time, cid, size in events:
        service[cid] += size
        normalized = [service[c] / rates[c] for c in rates]
        worst = max(worst, max(normalized) - min(normalized))
    return worst
