"""Legacy setup shim: enables `pip install -e . --no-use-pep517` on
environments without the `wheel` package (this repo is otherwise fully
configured by pyproject.toml)."""

from setuptools import setup

setup()
